"""Compare framework instantiations and related-work detectors.

For each benchmark, scores a representative set of detectors against
the oracle at one MPL:

- the Dhodapkar & Smith fixed-interval working-set detector,
- a Constant-TW skip-1 detector (this paper),
- an Adaptive-TW skip-1 detector (this paper),
- the Lu et al. average-PC interval detector,
- the Das et al. Pearson-correlation detector.

This reproduces, in miniature, the paper's central claim: skipFactor = 1
and an adaptive trailing window beat the extant fixed-interval designs.

Usage::

    python examples/compare_detectors.py [mpl]
"""

import sys

from repro import DetectorConfig, TrailingPolicy, run_detector
from repro.baseline import solve_baseline
from repro.comparators import run_das_pearson, run_dhodapkar_smith, run_lu_dynamo
from repro.experiments.report import render_table
from repro.scoring import score_states
from repro.workloads import load_suite


def main() -> None:
    mpl = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    cw = max(2, mpl // 2)
    window = max(16, mpl // 2)

    suite = load_suite()
    rows = []
    for name, (branch_trace, call_loop) in suite.items():
        oracle_states = solve_baseline(call_loop, mpl=mpl).states()

        def score_of(states):
            return round(score_states(states, oracle_states).score, 3)

        constant = run_detector(
            branch_trace, DetectorConfig(cw_size=cw, threshold=0.6)
        )
        adaptive = run_detector(
            branch_trace,
            DetectorConfig(cw_size=cw, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6),
        )
        rows.append(
            (
                name,
                score_of(run_dhodapkar_smith(branch_trace, window_size=window).states),
                score_of(constant.states),
                score_of(adaptive.states),
                score_of(run_lu_dynamo(branch_trace, window_size=window).states),
                score_of(run_das_pearson(branch_trace, window_size=window).states),
            )
        )

    averages = ("average",) + tuple(
        round(sum(row[i] for row in rows) / len(rows), 3) for i in range(1, 6)
    )
    rows.append(averages)
    print(
        render_table(
            ["Benchmark", "Dhodapkar-Smith", "Constant TW", "Adaptive TW",
             "Lu et al.", "Das et al."],
            rows,
            title=f"Detector comparison at MPL={mpl} (CW={cw}, window={window})",
        )
    )


if __name__ == "__main__":
    main()
