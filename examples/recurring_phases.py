"""Recurring-phase detection: recognize a phase you've seen before.

The paper's Section 7 proposes extending the framework so "a dynamic
optimization system [can] record the efficacy of a phase-based
optimization at the end of the phase and determine whether to employ
the same optimization when the phase reoccurs."  `repro` implements
that extension (`repro.core.recurrence`); this example drives it on the
`jack` workload — a parser generator that runs its pipeline 16 times,
so almost every phase is a recurrence of an earlier one.

Usage::

    python examples/recurring_phases.py [benchmark]
"""

import sys
from collections import Counter

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.recurrence import RecurringPhaseDetector
from repro.experiments.report import render_table
from repro.workloads import load_traces


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "jack"
    branch_trace, _ = load_traces(benchmark)

    config = DetectorConfig(
        cw_size=120, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    )
    detector = RecurringPhaseDetector(config, match_threshold=0.5)
    result = detector.run(branch_trace)

    rows = [
        (
            index,
            phase.phase_id,
            "yes" if phase.is_recurrence else "NEW",
            round(phase.match_similarity, 2),
            phase.phase.detected_start,
            phase.phase.end,
        )
        for index, phase in enumerate(result.phases)
    ]
    print(
        render_table(
            ["#", "Phase id", "Recurrence?", "Similarity", "Start", "End"],
            rows,
            title=f"Recurring phases in {benchmark} ({len(branch_trace):,} elements)",
        )
    )

    counts = Counter(p.phase_id for p in result.phases)
    print(
        f"\n{len(result.phases)} phase occurrences, "
        f"{result.num_distinct_phases()} distinct identities, "
        f"{len(result.recurrences())} recurrences"
    )
    for phase_id, count in counts.most_common(3):
        print(
            f"  phase {phase_id}: seen {count}x, signature of "
            f"{len(result.registry.signature(phase_id))} branch sites"
        )
    print(
        "\nA phase-aware JIT keyed on these ids could reuse optimization"
        "\ndecisions every time a known phase returns."
    )


if __name__ == "__main__":
    main()
