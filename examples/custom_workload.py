"""Author a MiniLang program, trace it, and visualize its phases.

Shows the full substrate in one file: write a program in MiniLang,
compile it with the MiniLang compiler, run it on the instrumented
MiniVM, solve the oracle baseline, run an online detector, and print an
ASCII timeline of oracle vs detected states.

Usage::

    python examples/custom_workload.py
"""

from repro import DetectorConfig, TrailingPolicy, run_detector
from repro.baseline import solve_baseline
from repro.experiments.timeline import comparison, phase_ruler
from repro.scoring import score_states
from repro.vm import CollectingSink, Interpreter, compile_source

SOURCE = """
// Three behavioral regimes: a sieve, a recursive tree walk, a hash mix.
fn sieve(n) {
    var count = 0;
    var i = 2;
    while (i < n) {
        var composite = 0;
        var j = 2;
        while (j * j <= i) {
            if (i % j == 0) { composite = 1; }
            j = j + 1;
        }
        if (composite == 0) { count = count + 1; }
        i = i + 1;
    }
    return count;
}

fn walk(depth, value) {
    if (depth <= 0) { return value % 7; }
    var left = walk(depth - 1, value * 2 + 1);
    var right = walk(depth - 1, value * 3 + 2);
    return left + right;
}

fn mix(rounds) {
    var h = 2166136261;
    var i = 0;
    while (i < rounds) {
        h = (h * 16777619 + i) % 4294967296;
        if (h % 2 == 0) { h = h + 13; }
        i = i + 1;
    }
    return h % 1000;
}

fn glue(v) {
    var g = v;
    if (g % 2 == 0) { g = g + 1; }
    if (g % 3 == 0) { g = g + 2; }
    if (g % 5 == 0) { g = g + 3; }
    return g;
}

fn main() {
    var acc = sieve(160);
    acc = acc + glue(acc);
    acc = acc + walk(9, acc);
    acc = acc + glue(acc);
    acc = acc + mix(1500);
    return acc;
}
"""


def main() -> None:
    program = compile_source(SOURCE, name="custom")
    sink = CollectingSink()
    result = Interpreter().run(program, sink=sink)
    branch_trace = sink.branch_trace("custom")
    call_loop = sink.call_loop_trace("custom")
    print(f"program returned {result}; {len(branch_trace):,} dynamic branches")

    mpl = 300
    oracle = solve_baseline(call_loop, mpl=mpl)
    config = DetectorConfig(
        cw_size=mpl // 2, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    )
    detection = run_detector(branch_trace, config)
    score = score_states(detection.states, oracle.states())

    print(f"\noracle phases (MPL={mpl}):")
    for phase in oracle.phases:
        print(f"  [{phase.start:>6}, {phase.end:>6})  {phase.kind.value}")
    print(f"\ndetector: {config.describe()}")
    print(f"accuracy: {score}")
    print("\ntimeline ('#' = in phase, '.' = transition, 'x' = disagreement):")
    print(
        comparison(
            {"oracle": oracle.states(), "detected": detection.states},
            width=96,
            diff_against="oracle",
        )
    )
    boundaries = phase_ruler(
        len(branch_trace), [(p.start, p.end) for p in oracle.phases], width=96
    )
    print(f"{'bounds'.ljust(14)}  {boundaries}")


if __name__ == "__main__":
    main()
