"""Simulate a phase-guided dynamic optimizer — the paper's motivating client.

A dynamic optimization system applies a specializing optimization when
the detector reports a stable phase and pays a recompilation cost at
every phase start (Section 3.1 motivates the MPL with exactly this
cost/benefit argument).  We model it directly:

- at every detected phase *start* the client pays ``RECOMPILE_COST``
  profile elements;
- for every element the detector spends in P that the oracle also
  considers in phase, the client gains ``SPEEDUP`` (specialized code
  actually helps);
- elements the detector claims are in phase but are not (false
  phases) *cost* ``MIS_PENALTY`` each — the specialization was built on
  unstable behavior and mis-speculates.

The net benefit, in element-equivalents, makes detector accuracy and
the MPL trade-off tangible: an eager detector recompiles constantly,
an inaccurate one specializes noise.

Usage::

    python examples/phase_guided_optimizer.py [benchmark]
"""

import sys

import numpy as np

from repro import DetectorConfig, TrailingPolicy, run_detector
from repro.baseline import solve_baseline
from repro.experiments.report import render_table
from repro.workloads import load_traces

RECOMPILE_COST = 50    # elements of overhead per phase start
SPEEDUP = 0.15         # fractional gain per correctly-specialized element
MIS_PENALTY = 0.10     # fractional loss per wrongly-specialized element


def client_benefit(detected_states, detected_phases, oracle_states) -> float:
    """Net benefit of phase-guided specialization, in element-equivalents."""
    correct = float(np.logical_and(detected_states, oracle_states).sum())
    wrong = float(np.logical_and(detected_states, ~oracle_states).sum())
    return (
        SPEEDUP * correct
        - MIS_PENALTY * wrong
        - RECOMPILE_COST * len(detected_phases)
    )


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "jack"
    branch_trace, call_loop = load_traces(benchmark)

    detectors = {
        "fixed-interval (extant)": DetectorConfig.fixed_interval(256),
        "constant TW, skip 1": DetectorConfig(cw_size=256, threshold=0.6),
        "adaptive TW, skip 1": DetectorConfig(
            cw_size=256, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        ),
        "hair-trigger (cw 16)": DetectorConfig(cw_size=16, threshold=0.5),
    }

    rows = []
    for mpl in (100, 500, 2_500):
        oracle_states = solve_baseline(call_loop, mpl=mpl).states()
        for label, config in detectors.items():
            result = run_detector(branch_trace, config)
            benefit = client_benefit(result.states, result.detected_phases, oracle_states)
            rows.append(
                (
                    mpl,
                    label,
                    len(result.detected_phases),
                    round(benefit, 0),
                    round(100 * benefit / (SPEEDUP * len(branch_trace)), 1),
                )
            )

    print(
        render_table(
            ["MPL", "Detector", "Phase starts", "Net benefit (elems)", "% of ideal"],
            rows,
            title=(
                f"Phase-guided optimization on {benchmark} (recompile="
                f"{RECOMPILE_COST}, speedup={SPEEDUP}, penalty={MIS_PENALTY})"
            ),
        )
    )
    print(
        "\nReading: '% of ideal' compares against specializing every element"
        "\nwith zero recompiles. Accurate phase boundaries keep recompilation"
        "\nrare while capturing most of the stable execution."
    )


if __name__ == "__main__":
    main()
