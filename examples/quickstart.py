"""Quickstart: detect phases in one benchmark and score against the oracle.

Runs the ``compress`` workload through the instrumented MiniVM (cached
after the first run), builds the Section 3.1 baseline solution, runs one
online detector, and prints the Section 3.2 accuracy score.

Usage::

    python examples/quickstart.py [benchmark] [mpl]
"""

import sys

from repro import DetectorConfig, TrailingPolicy, run_detector
from repro.baseline import solve_baseline
from repro.scoring import score_states
from repro.workloads import load_traces, workload_names


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "compress"
    mpl = int(sys.argv[2]) if len(sys.argv) > 2 else 500
    if benchmark not in workload_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}; pick from {workload_names()}")

    print(f"== loading traces for {benchmark} (first run interprets the program) ==")
    branch_trace, call_loop = load_traces(benchmark)
    print(f"branch trace: {len(branch_trace):,} profile elements")
    print(f"call-loop trace: {len(call_loop):,} events "
          f"({call_loop.loop_executions():,} loop executions, "
          f"{call_loop.method_invocations():,} invocations)")

    print(f"\n== oracle: baseline solution at MPL={mpl} ==")
    oracle = solve_baseline(call_loop, mpl=mpl)
    print(f"{oracle.num_phases} phases covering {oracle.percent_in_phase:.1f}% of execution")
    for phase in oracle.phases[:8]:
        print(f"  [{phase.start:>7}, {phase.end:>7})  {phase.kind.value}")
    if oracle.num_phases > 8:
        print(f"  ... and {oracle.num_phases - 8} more")

    print("\n== online detection ==")
    config = DetectorConfig(
        cw_size=mpl // 2,              # the paper's CW = 1/2 MPL guidance
        trailing=TrailingPolicy.ADAPTIVE,
        threshold=0.6,
    )
    print(f"detector: {config.describe()}")
    result = run_detector(branch_trace, config)
    print(f"{len(result.detected_phases)} phases detected online")

    score = score_states(result.states, oracle.states())
    print(f"\naccuracy vs oracle: {score}")
    corrected = score_states(
        result.corrected_states(),
        oracle.states(),
        detected_phases=result.corrected_phases(),
    )
    print(f"with anchor-corrected phase starts: {corrected}")


if __name__ == "__main__":
    main()
