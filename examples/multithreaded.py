"""Multi-threaded phase detection: why per-thread demultiplexing matters.

The paper handles single-threaded programs and notes the framework "can
be extended to handle multi-threaded applications."  This example shows
the extension (`repro.profiles.multithread`) and the failure mode it
fixes: two threads with *misaligned* phases are interleaved by a
fine-grained scheduler; a single global detector sees each thread's
stable working set diluted by the other's transition noise and misses
the phases, while one detector per thread finds them exactly.

Usage::

    python examples/multithreaded.py [quantum]
"""

import sys

import numpy as np

from repro.core import DetectorConfig, TrailingPolicy
from repro.core.engine import run_detector
from repro.experiments.timeline import comparison
from repro.profiles.multithread import detect_per_thread, interleave
from repro.profiles.synthetic import SyntheticTraceBuilder
from repro.scoring import score_states


def build_threads():
    """Two threads whose phases do not overlap in time."""
    builder_a = SyntheticTraceBuilder(seed=71)
    builder_a.add_transition(400)
    builder_a.add_phase(4_000, body_size=12)
    builder_a.add_transition(4_400)
    thread_a, _ = builder_a.build()

    builder_b = SyntheticTraceBuilder(seed=72)
    builder_b.add_transition(4_400)
    builder_b.add_phase(4_000, body_size=12)
    builder_b.add_transition(400)
    thread_b, _ = builder_b.build()
    return thread_a, thread_b


def main() -> None:
    quantum = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    thread_a, thread_b = build_threads()
    merged, owners = interleave({0: thread_a, 1: thread_b}, quantum=quantum)
    print(
        f"two threads of {len(thread_a):,} elements each, interleaved "
        f"with quantum {quantum} -> {len(merged):,} merged elements"
    )

    config = DetectorConfig(
        cw_size=150, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    )
    global_states = run_detector(merged, config).states
    per_thread_states = detect_per_thread(merged, owners, config)

    # Score in each thread's own timeline (boundaries are meaningless
    # at merged granularity when only one thread is in phase).
    starts = {0: 400, 1: 4_400}
    for tid in (0, 1):
        positions = np.flatnonzero(owners == tid)
        thread_truth = np.zeros(positions.size, dtype=bool)
        thread_truth[starts[tid] : starts[tid] + 4_000] = True
        global_view = global_states[positions]
        demux_view = per_thread_states[positions]
        print(f"\nthread {tid}:")
        print(f"  global detector:  {score_states(global_view, thread_truth)}")
        print(f"  per-thread demux: {score_states(demux_view, thread_truth)}")
        print(
            comparison(
                {
                    "truth": thread_truth,
                    "global": global_view,
                    "demux": demux_view,
                },
                width=92,
            )
        )
    print(
        "\nTry a coarse scheduler (e.g. `python examples/multithreaded.py 2000`):"
        "\nwith long scheduling quanta the merged stream is nearly sequential"
        "\nand the global detector recovers."
    )


if __name__ == "__main__":
    main()
