"""Regenerate Table 1: benchmark characteristics and baseline phases."""

from conftest import publish

from repro.experiments import tables


def test_table_1a(benchmark, sweep, results_dir):
    """Table 1(a): dynamic branches / loops / invocations / recursion roots."""
    table = benchmark(tables.table_1a, sweep)
    publish(results_dir, "table_1a", table.render())
    assert len(table.rows) == len(sweep.benchmarks)
    for row in table.rows:
        assert row.dynamic_branches > 0
        assert row.loop_executions > 0


def test_table_1b(benchmark, sweep, results_dir):
    """Table 1(b): oracle phase counts and coverage per MPL."""
    sweep.baselines(sweep.benchmarks[0])  # force one lazy solve outside timing
    table = benchmark(tables.table_1b, sweep)
    publish(results_dir, "table_1b", table.render())
    # Paper shape: #phases non-increasing in MPL for every benchmark.
    for name, per_mpl in table.coverage.items():
        counts = [per_mpl[m].num_phases for m in table.mpl_nominals]
        assert counts == sorted(counts, reverse=True), name
