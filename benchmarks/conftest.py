"""Benchmark-suite fixtures.

The profile is selected by the ``REPRO_PROFILE`` environment variable
(``default`` if unset; ``quick`` for a fast pass).  The session-scoped
``sweep``/``records`` fixtures warm the sweep cache once (expensive on a
cold cache: the full detector grid runs; minutes), so the timed bodies
measure table/figure *regeneration*, which is what a user iterating on
the analysis pays.

Rendered artifacts are written to ``results/<profile>/`` as a side
effect, so one benchmark run leaves the full set of reproduced tables
and figures on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config_space import PROFILES, paper_grid
from repro.experiments.sweep import Sweep

PROFILE_NAME = os.environ.get("REPRO_PROFILE", "default")
RESULTS_DIR = Path(__file__).resolve().parents[1] / "results" / PROFILE_NAME


@pytest.fixture(scope="session")
def profile():
    return PROFILES[PROFILE_NAME]


@pytest.fixture(scope="session")
def sweep(profile):
    return Sweep(profile)


@pytest.fixture(scope="session")
def records(sweep, profile):
    return sweep.ensure(paper_grid(profile), progress=True)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Write one rendered artifact and echo it to stdout."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
