"""Benchmark-suite fixtures.

The profile is selected by the ``REPRO_PROFILE`` environment variable
(``default`` if unset; ``quick`` for a fast pass).  The session-scoped
``sweep``/``records`` fixtures warm the sweep cache once (expensive on a
cold cache: the full detector grid runs; minutes), so the timed bodies
measure table/figure *regeneration*, which is what a user iterating on
the analysis pays.  Set ``REPRO_JOBS`` to fan the cache warm-up out
over worker processes (see ``docs/sweep.md``).

Rendered artifacts are written to ``results/<profile>/`` as a side
effect, so one benchmark run leaves the full set of reproduced tables
and figures on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config_space import PROFILES, paper_grid
from repro.experiments.sweep import Sweep
from repro.obs.logsetup import setup_logging

# Route the sweep's progress lines (repro.sweep logger) to stderr.
setup_logging()

PROFILE_NAME = os.environ.get("REPRO_PROFILE", "default")
RESULTS_DIR = Path(__file__).resolve().parents[1] / "results" / PROFILE_NAME


@pytest.fixture(scope="session")
def profile():
    return PROFILES[PROFILE_NAME]


@pytest.fixture(scope="session")
def jobs():
    """Sweep worker count: REPRO_JOBS if set, else serial."""
    from repro.experiments.parallel import resolve_jobs

    return resolve_jobs(None) if os.environ.get("REPRO_JOBS") else 1


@pytest.fixture(scope="session")
def sweep(profile, jobs):
    return Sweep(profile, jobs=jobs)


@pytest.fixture(scope="session")
def records(sweep, profile):
    return sweep.ensure(paper_grid(profile), progress=True)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Write one rendered artifact and echo it to stdout."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
