"""Related-work comparison (Section 6, quantified).

Scores the three extant detectors against the framework's best
skip-1 instantiations on every benchmark at one mid-range MPL,
reproducing the paper's qualitative related-work claims as a table.
"""

from conftest import publish

from repro.baseline.oracle import solve_baseline
from repro.comparators import run_das_pearson, run_dhodapkar_smith, run_lu_dynamo
from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.engine import run_detector
from repro.experiments.aggregate import mean
from repro.experiments.report import nominal_label, render_table
from repro.scoring.metric import score_states


def test_related_work_comparison(benchmark, sweep, profile, results_dir):
    mpl_nominal = 10_000
    mpl = profile.actual(mpl_nominal)
    cw = max(2, mpl // 2)
    window = max(16, mpl // 2)

    columns = {}
    rows = []
    for name in sweep.benchmarks:
        branch_trace, call_loop = sweep.traces[name]
        oracle_states = solve_baseline(call_loop, mpl).states()

        def scored(states):
            return score_states(states, oracle_states).score

        scores = {
            "Dhodapkar-Smith": scored(
                run_dhodapkar_smith(branch_trace, window_size=window).states
            ),
            "Lu et al.": scored(run_lu_dynamo(branch_trace, window_size=window).states),
            "Das et al.": scored(
                run_das_pearson(branch_trace, window_size=window).states
            ),
            "Constant TW": scored(
                run_detector(
                    branch_trace, DetectorConfig(cw_size=cw, threshold=0.6)
                ).states
            ),
            "Adaptive TW": scored(
                run_detector(
                    branch_trace,
                    DetectorConfig(
                        cw_size=cw, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
                    ),
                ).states
            ),
        }
        for label, value in scores.items():
            columns.setdefault(label, []).append(value)
        rows.append((name, *(round(scores[k], 3) for k in scores)))

    labels = list(columns)
    rows.append(("average", *(round(mean(columns[k]), 3) for k in labels)))
    table = render_table(
        ["Benchmark"] + labels,
        rows,
        title=(
            f"Related-work comparison at MPL={nominal_label(mpl_nominal)} "
            f"(CW={cw}, comparator window={window})"
        ),
    )
    publish(results_dir, "comparators", table)

    # The paper's Section 6 claims, on average over the suite:
    # skip-1 framework detectors beat the fixed-window related work.
    framework_best = max(mean(columns["Constant TW"]), mean(columns["Adaptive TW"]))
    for extant in ("Dhodapkar-Smith", "Lu et al.", "Das et al."):
        assert framework_best > mean(columns[extant]), extant

    name = sweep.benchmarks[0]
    branch_trace, _ = sweep.traces[name]
    benchmark(run_dhodapkar_smith, branch_trace, window)
