"""Regenerate Figure 8: anchor-corrected phase boundaries."""

import math

from conftest import publish

from repro.experiments import figures


def test_figure_8(benchmark, records, results_dir):
    figure = benchmark(figures.figure_8, records)
    publish(results_dir, "figure_8", figure.render())

    adaptive = figure.series["Adaptive TW"]
    constant = figure.series["Constant TW"]
    pairs = [
        (a, c) for a, c in zip(adaptive, constant)
        if not (math.isnan(a) or math.isnan(c))
    ]
    assert pairs
    # Paper conclusion: with boundary correction the Adaptive TW is more
    # accurate than the Constant TW on average (the anchored TW knows
    # where the phase began).
    mean_adaptive = sum(a for a, _ in pairs) / len(pairs)
    mean_constant = sum(c for _, c in pairs) / len(pairs)
    assert mean_adaptive >= mean_constant - 0.01
