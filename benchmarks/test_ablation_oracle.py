"""Oracle ablation: MPL-driven nest selection vs outermost-loops-only.

Section 3.1 validates the MPL-based selection by branch-coverage data:
using only outer loops yields "a very small number of large,
coarse-grained phases that cannot be readily subdivided", while the MPL
knob gives the client control over phase size.  This bench regenerates
that comparison and times the oracle itself.
"""

from conftest import publish

from repro.baseline import solve_baseline, solve_outermost_loops
from repro.experiments.report import render_table


def test_oracle_solve_speed(benchmark, sweep):
    """Time one oracle solve on the largest benchmark trace."""
    largest = max(sweep.benchmarks, key=lambda n: len(sweep.traces[n][0]))
    _, call_loop = sweep.traces[largest]
    mpl = sweep.profile.actual(10_000)
    solution = benchmark(solve_baseline, call_loop, mpl)
    assert solution.num_elements == call_loop.num_branches


def test_nest_selection_vs_outermost(benchmark, sweep, profile, results_dir):
    """MPL-driven selection subdivides where outermost-only cannot."""
    def median_length(solution):
        lengths = sorted(p.length for p in solution.phases)
        return lengths[len(lengths) // 2] if lengths else 0

    rows = []
    small_mpl = profile.actual(1_000)
    large_mpl = profile.actual(25_000)
    for name in sweep.benchmarks:
        _, call_loop = sweep.traces[name]
        outer = solve_outermost_loops(call_loop)
        fine = solve_baseline(call_loop, small_mpl)
        coarse = solve_baseline(call_loop, large_mpl)
        rows.append(
            (
                name,
                outer.num_phases,
                median_length(outer),
                fine.num_phases,
                median_length(fine),
                coarse.num_phases,
                median_length(coarse),
            )
        )
    table = render_table(
        ["Benchmark", "Outer #", "Outer med-len", "MPL=1K #", "MPL=1K med-len",
         "MPL=25K #", "MPL=25K med-len"],
        rows,
        title="Oracle ablation: outermost-loop selection vs MPL-driven selection",
    )
    publish(results_dir, "ablation_oracle", table)

    # The paper's validation claim: the MPL knob gives control over
    # phase size, which outermost-only selection lacks.  Concretely:
    # raising the MPL must coarsen the phase set (counts shrink), and
    # at the large MPL the phases are at least as coarse as what the
    # benchmark's outermost loops provide for most benchmarks.
    coarser = 0
    for _, outer_count, _, fine_count, _, coarse_count, _ in rows:
        assert coarse_count <= fine_count
        if coarse_count <= outer_count:
            coarser += 1
    assert coarser >= len(rows) // 2

    largest = max(sweep.benchmarks, key=lambda n: len(sweep.traces[n][0]))
    _, call_loop = sweep.traces[largest]
    benchmark(solve_outermost_loops, call_loop)
