"""Detector throughput benchmarks and the incremental-maintenance ablation.

Compares the optimized engine against the readable reference
implementation across models and TW policies — quantifying the payoff
of the incremental similarity maintenance DESIGN.md calls out.
"""

import pytest

from repro.core import DetectorConfig, ModelKind, PhaseDetector, TrailingPolicy
from repro.core.engine import run_detector
from repro.profiles.synthetic import SyntheticTraceBuilder


def _trace():
    builder = SyntheticTraceBuilder(seed=17, name="bench")
    for _ in range(5):
        builder.add_transition(400)
        builder.add_phase(6_000, body_size=14, noise_rate=0.01)
    builder.add_transition(400)
    return builder.build()[0]


TRACE = _trace()

CONFIGS = {
    "unweighted-constant": DetectorConfig(cw_size=250, threshold=0.6),
    "unweighted-adaptive": DetectorConfig(
        cw_size=250, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    ),
    "weighted-constant": DetectorConfig(
        cw_size=250, model=ModelKind.WEIGHTED, threshold=0.6
    ),
    "weighted-adaptive": DetectorConfig(
        cw_size=250,
        model=ModelKind.WEIGHTED,
        trailing=TrailingPolicy.ADAPTIVE,
        threshold=0.6,
    ),
}


@pytest.mark.parametrize("label", list(CONFIGS))
def test_engine_throughput(benchmark, label):
    """Optimized engine: elements/second per model x policy."""
    config = CONFIGS[label]
    result = benchmark(run_detector, TRACE, config)
    assert result.states.shape == (len(TRACE),)
    benchmark.extra_info["elements_per_second"] = round(
        len(TRACE) / benchmark.stats["mean"]
    )


@pytest.mark.parametrize("label", ["unweighted-constant", "weighted-adaptive"])
def test_reference_throughput(benchmark, label):
    """Reference implementation baseline (the ablation's 'naive' side)."""
    config = CONFIGS[label]
    result = benchmark(PhaseDetector(config).run, TRACE)
    assert result.states.shape == (len(TRACE),)


def test_skip_equals_window_is_cheap(benchmark):
    """Fixed-Interval detectors do ~1/CW as many similarity evaluations;
    the accuracy cost of that design is Figure 4's subject."""
    config = DetectorConfig.fixed_interval(250)
    benchmark(run_detector, TRACE, config)
