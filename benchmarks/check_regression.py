#!/usr/bin/env python
"""Null-path detector benchmark guard.

Measures the optimized engine with observability *disabled*
(``observer=None`` — the default every caller gets) and compares a
calibration-normalized score against a committed baseline, so the check
is meaningful across machines: raw seconds divide by the time the same
interpreter takes for a fixed pure-Python workload, cancelling
host-speed differences.

Two modes::

    # record a new baseline (committed as benchmarks/BENCH_*.json)
    PYTHONPATH=src python benchmarks/check_regression.py --record

    # CI guard: fail (exit 1) if the aggregate normalized score
    # regressed more than --tolerance vs the newest committed baseline
    PYTHONPATH=src python benchmarks/check_regression.py

The guarded quantity is the *aggregate* normalized score (sum over the
config matrix of per-config best-of-``--repeats`` times); per-config
scores are recorded and printed but not individually gated — they are
noisier than the aggregate on shared CI hardware.

The kernel rows time each matrix config twice in the same run — the
default path (array-native kernels, :mod:`repro.core.kernels`) and the
legacy fused loop (``kernels=False``) — and gate their ratio.  Like the
bank gate, the ratio is self-normalizing: both sides see the same host,
so the check is immune to machine-speed drift entirely.  Every config
named in ``KERNEL_MIN_SPEEDUPS`` runs a vectorized fast path and must
stay at least that many times faster than the legacy loop —
``unweighted-constant`` through the constant walk, and the Adaptive-TW
rows through the episode-vectorized adaptive walk.

The bank rows interleave best-of-``BANK_INTERLEAVE`` sequential vs bank
timings (the side order flips each round so drift and cache-warming
bias cancel instead of landing on one side).  Two ratios are gated:
the legacy lockstep row (both sides ``kernels=False``, shared-decode
machinery, ``BANK_MIN_SPEEDUP``) and the batched-advancer row (both
sides ``kernels=True``, per-signature series sharing via
:func:`repro.core.kernels.run_bank_batched`,
``BANK_BATCHED_MIN_SPEEDUP``).

The family rows time the decision-layer detectors (``focus``,
``newma``) on the same trace, giving them a calibration-normalized
perf trajectory; their sum is checked against the baseline with the
same tolerance as the windowed aggregate (when the baseline has it).

The zero-copy rows gate the evaluation scaffolding the same way (both
sides in the same run, no baseline needed): **warm-start** compares a
worker's pre-sidecar startup cost (heap trace read + the ``np.unique``
dense-code pass) against the zero-copy path (mmap read + ``.bcodes``
sidecar adoption) and must show a reduction; **batch-scoring** compares
per-(lane, MPL) ``score_states`` calls against one
``score_states_batch`` pass and must stay at least
``BATCH_MIN_SPEEDUP`` times faster.

The serve row replays ``SERVE_SESSIONS`` concurrent suite-workload
sessions through :mod:`repro.serve` (plus a forced-eviction run that
parks and rehydrates sessions mid-trace).  Gates: the session count,
byte-identity of every served phase stream against the offline
detector, at least one park in the eviction run, and a
calibration-normalized throughput floor
(``SERVE_MIN_NORMALIZED_THROUGHPUT``).

The telemetry row gates the cost of *enabled* live telemetry the
same-run-ratio way: serve-bench with the flight recorder spooling at a
tight interval (latency histograms are always on) must stay within
``TELEMETRY_MAX_OVERHEAD`` of the run without it, best-of-N with the
on/off repeats interleaved so drift hits both sides.  The row also
re-checks flight-record completeness: summed per-interval
``serve.events_in`` deltas in the spool must equal the elements fed.
"""

import argparse
import json
import sys
import tempfile
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core import DetectorConfig, ModelKind, TrailingPolicy
from repro.core.bank import DetectorBank
from repro.core.engine import run_detector
from repro.obs.manifest import environment_info
from repro.profiles.io import (
    codes_path_for,
    ensure_codes_sidecar,
    read_trace_binary,
    write_codes_sidecar,
    write_trace_binary,
)
from repro.profiles.synthetic import SyntheticTraceBuilder
from repro.profiles.trace import BranchTrace
from repro.scoring.metric import score_states, score_states_batch

BASELINE_VERSION = 1
BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_TOLERANCE = 0.10

#: Same model x policy matrix as test_perf_detector.py.
CONFIGS = {
    "unweighted-constant": DetectorConfig(cw_size=250, threshold=0.6),
    "unweighted-adaptive": DetectorConfig(
        cw_size=250, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    ),
    "weighted-constant": DetectorConfig(
        cw_size=250, model=ModelKind.WEIGHTED, threshold=0.6
    ),
    "weighted-adaptive": DetectorConfig(
        cw_size=250,
        model=ModelKind.WEIGHTED,
        trailing=TrailingPolicy.ADAPTIVE,
        threshold=0.6,
    ),
}


#: Decision-layer detector families timed alongside the windowed matrix
#: so regressions in the scan loops show up in the baseline trajectory.
FAMILY_CONFIGS = {
    "focus": DetectorConfig(cw_size=250, family="focus"),
    "newma": DetectorConfig(cw_size=250, family="newma"),
}

#: Members of the multi-config bank measurement (one sweep-like batch).
BANK_SIZE = 16

#: The lockstep bank must beat the same configs run sequentially by at
#: least this factor (same-run ratio).  Set from the flat skip-1 lane
#: path (measured ~1.31x on the reference host); the previous effective
#: floor was the ~1.07x a plain ratio > 1.0 check tolerated.
BANK_MIN_SPEEDUP = 1.12

#: The batched bank advancer (kernels on both sides, per-signature
#: series sharing) must beat sequential kernel runs by at least this
#: factor (measured ~3.3x on the reference host).
BANK_BATCHED_MIN_SPEEDUP = 1.5

#: Interleaved rounds for the bank ratios: each round times both sides
#: back to back and the side order flips per round, so slow host drift
#: and page-cache warming cancel out of the best-of ratio instead of
#: inflating whichever side happened to run second.
BANK_INTERLEAVE = 3

#: Per-config floors for the vectorized fast paths vs the legacy fused
#: loop (same-run ratios).  The constant walk clears 3x with wide
#: margin; the episode-vectorized adaptive walks pay a per-episode
#: Python orchestration cost, so their floors are lower.
KERNEL_MIN_SPEEDUPS = {
    "unweighted-constant": 3.0,
    "unweighted-adaptive": 2.0,
    "weighted-adaptive": 1.5,
}

#: One score_states_batch pass must beat the per-(lane, MPL)
#: score_states loop by at least this factor (same-run ratio).
BATCH_MIN_SPEEDUP = 3.0

#: The mmap + sidecar warm start must beat the heap read + unique pass
#: (same-run ratio; any reliable reduction passes).
WARM_START_MIN_SPEEDUP = 1.0

#: The serving row: this many concurrent sessions replaying suite
#: workloads through the serve layer, every served phase stream
#: byte-verified against the offline path (plus a small forced-eviction
#: run proving park/rehydrate mid-trace is invisible).
SERVE_SESSIONS = 1_000
SERVE_ELEMENTS_PER_SESSION = 600
SERVE_CHUNK = 150
SERVE_PARK_SESSIONS = 64
SERVE_PARK_MAX_RESIDENT = 8
#: Calibration-normalized serving throughput floor:
#: events_per_sec x calibration_seconds (elements served per
#: calibration unit).  Generous margin below measured (~30k local).
SERVE_MIN_NORMALIZED_THROUGHPUT = 6_000.0

#: The telemetry-overhead row: a smaller synthetic serve-bench run,
#: once with the flight recorder spooling and once without, interleaved
#: best-of-``TELEMETRY_REPEATS``.  Throughput with telemetry on must
#: stay within ``TELEMETRY_MAX_OVERHEAD`` of telemetry off.
TELEMETRY_SESSIONS = 300
TELEMETRY_ELEMENTS_PER_SESSION = 800
TELEMETRY_CHUNK = 160
TELEMETRY_FLIGHT_INTERVAL = 0.1
TELEMETRY_REPEATS = 3
TELEMETRY_MAX_OVERHEAD = 0.05


def _bank_configs():
    """``BANK_SIZE`` configs cycling the matrix across thresholds, the
    way a sweep grid mixes bank members."""
    thresholds = (0.4, 0.5, 0.6, 0.7)
    base = list(CONFIGS.values())
    return [
        replace(
            base[i % len(base)],
            threshold=thresholds[(i // len(base)) % len(thresholds)],
        )
        for i in range(BANK_SIZE)
    ]


def _measure_bank(trace, bank_configs):
    """Both bank ratios, interleaved best-of-``BANK_INTERLEAVE``.

    Each round times sequential-vs-bank back to back and flips which
    side goes first on alternate rounds, for both the legacy lockstep
    ratio (``kernels=False`` both sides) and the batched-advancer ratio
    (``kernels=True`` both sides).  Interleaving is the de-flake: the
    old scheme timed all sequential samples under different cache/drift
    conditions than the bank samples, and the recorded speedup swung
    1.07x-1.36x run to run.
    """
    seq_samples, bank_samples = [], []
    seq_kernel_samples, batched_samples = [], []
    sides = {
        "seq": lambda: [run_detector(trace, c, kernels=False)
                        for c in bank_configs],
        "bank": lambda: DetectorBank(bank_configs).run(trace, kernels=False),
        "seq-kernel": lambda: [run_detector(trace, c, kernels=True)
                               for c in bank_configs],
        "batched": lambda: DetectorBank(bank_configs).run(
            trace, kernels=True, batched=True
        ),
    }
    samples = {
        "seq": seq_samples,
        "bank": bank_samples,
        "seq-kernel": seq_kernel_samples,
        "batched": batched_samples,
    }
    for round_index in range(BANK_INTERLEAVE):
        pairs = [("seq", "bank"), ("seq-kernel", "batched")]
        for first, second in pairs:
            if round_index % 2:
                first, second = second, first
            samples[first].append(_timed(sides[first]))
            samples[second].append(_timed(sides[second]))
    return (
        min(seq_samples),
        min(bank_samples),
        min(seq_kernel_samples),
        min(batched_samples),
    )


def bench_trace():
    builder = SyntheticTraceBuilder(seed=17, name="bench")
    for _ in range(5):
        builder.add_transition(400)
        builder.add_phase(6_000, body_size=14, noise_rate=0.01)
    builder.add_transition(400)
    return builder.build()[0]


def _warm_start_fixture(tmp_dir, trace):
    """Cache a large trace + sidecar the way the suite cache would."""
    big = BranchTrace(np.tile(trace.array, 8), name="warm")
    path = Path(tmp_dir) / "warm.btrace"
    write_trace_binary(big, path)
    write_codes_sidecar(big, codes_path_for(path))
    return path


def _warm_start_cold(path):
    # Pre-sidecar worker startup: private heap copy + np.unique pass.
    trace = read_trace_binary(path, mmap=False)
    trace.dense_codes()


def _warm_start_zero_copy(path):
    # Zero-copy startup: mmap the payload, adopt the persisted remap.
    trace = read_trace_binary(path, mmap=True)
    ensure_codes_sidecar(trace, path, mmap=True)


def _batch_scoring_fixture(trace):
    """A bank-sized state matrix and MPL-like baselines to score.

    Random states produce many short phases, which is exactly the
    boundary-matching load a dense sweep grid generates.
    """
    rng = np.random.default_rng(23)
    num_elements = min(len(trace), 8_000)
    matrix = rng.random((BANK_SIZE, num_elements)) < 0.5
    baselines = [rng.random(num_elements) < 0.5 for _ in range(4)]
    return matrix, baselines


def _score_scalar(matrix, baselines):
    return [
        [score_states(matrix[lane], base) for base in baselines]
        for lane in range(matrix.shape[0])
    ]


def _measure_serve(calibration):
    """The sessions x events/sec serving row (measured once, not per
    repeat — the run is seconds long and internally averaged over
    thousands of chunk latencies)."""
    from repro.serve.loadgen import serve_bench

    row = serve_bench(
        sessions=SERVE_SESSIONS,
        elements_per_session=SERVE_ELEMENTS_PER_SESSION,
        chunk=SERVE_CHUNK,
        source="suite",
        scale=0.3,
        verify=True,
        park_sessions=SERVE_PARK_SESSIONS,
        park_max_resident=SERVE_PARK_MAX_RESIDENT,
    )
    main, parked = row["main"], row["parked"]
    return {
        "sessions": main["sessions"],
        "elements": main["elements"],
        "events_per_sec": main["events_per_sec"],
        "elapsed_seconds": main["elapsed_seconds"],
        "normalized_throughput": round(
            main["events_per_sec"] * calibration, 2
        ),
        "latency_p50_ms": main["latency_p50_ms"],
        "latency_p99_ms": main["latency_p99_ms"],
        "verified": main["verified"],
        "parked_sessions": parked["sessions"],
        "parked_parks": parked["parks"],
        "parked_rehydrations": parked["rehydrations"],
        "parked_verified": parked["verified"],
        "min_sessions": SERVE_SESSIONS,
        "min_normalized_throughput": SERVE_MIN_NORMALIZED_THROUGHPUT,
    }


def _measure_telemetry(calibration):
    """The telemetry-overhead row: flight recorder on vs off, same run
    parameters, repeats interleaved so host drift hits both sides.

    Latency histograms are part of the server's registry in both runs;
    the delta being gated is the flight-recorder sampling loop plus the
    JSONL spool — i.e. everything ``repro serve --flight-record`` adds.
    """
    from repro.obs.timeseries import read_flight_record
    from repro.serve.loadgen import serve_bench

    common = dict(
        sessions=TELEMETRY_SESSIONS,
        elements_per_session=TELEMETRY_ELEMENTS_PER_SESSION,
        chunk=TELEMETRY_CHUNK,
        source="synthetic",
        verify=False,
        park_sessions=0,
    )
    off_samples, on_samples = [], []
    flight_total = None
    flight_samples = None
    with tempfile.TemporaryDirectory(prefix="repro-telemetry-") as tmp_dir:
        for repeat in range(TELEMETRY_REPEATS):
            off_row = serve_bench(**common)
            off_samples.append(off_row["main"]["events_per_sec"])
            spool = Path(tmp_dir) / f"flight-{repeat}.jsonl"
            on_row = serve_bench(
                **common,
                flight_record=spool,
                flight_interval=TELEMETRY_FLIGHT_INTERVAL,
            )
            on_samples.append(on_row["main"]["events_per_sec"])
            _, samples = read_flight_record(spool)
            flight_total = sum(
                s["deltas"].get("serve.events_in", 0) for s in samples
            )
            flight_samples = len(samples)
    off_best = max(off_samples)
    on_best = max(on_samples)
    return {
        "sessions": TELEMETRY_SESSIONS,
        "elements": TELEMETRY_SESSIONS * TELEMETRY_ELEMENTS_PER_SESSION,
        "flight_interval": TELEMETRY_FLIGHT_INTERVAL,
        "repeats": TELEMETRY_REPEATS,
        "off_events_per_sec": round(off_best, 2),
        "on_events_per_sec": round(on_best, 2),
        "off_normalized_throughput": round(off_best * calibration, 2),
        "on_normalized_throughput": round(on_best * calibration, 2),
        "overhead": round(1.0 - on_best / off_best, 4),
        "max_overhead": TELEMETRY_MAX_OVERHEAD,
        "flight_samples": flight_samples,
        "flight_events_in": flight_total,
    }


#: The store rows: persistence throughput compares the legacy
#: ordered-delivery parent loop (rows over the pipe -> from_row ->
#: per-row cache_line append) against chunk-store compaction (bulk fold
#: of pre-written chunk files + the SQLite ingest) over the same record
#: set, interleaved best-of-``STORE_INTERLEAVE`` like the bank rows.
#: The chunk files are written outside the timed region — in a real
#: sweep the workers write them concurrently with evaluation, so the
#: parent-side persistence cost is exactly what the two sides compare.
STORE_BENCHMARKS = 4
STORE_CHUNK_SIZE = 15
STORE_MPLS = (1_000, 10_000)
STORE_INTERLEAVE = 3
#: The compaction fold must beat the legacy per-row parent loop by this
#: factor (measured ~2.5x on the reference host: bulk byte append of
#: worker-serialized lines vs from_row + cache_line per record).  The
#: SQLite ingest is timed and reported separately — the legacy path has
#: no equivalent to ratio against.
STORE_MIN_SPEEDUP = 1.2

#: The resume row: of ``RESUME_TOTAL_CHUNKS`` planned chunks,
#: ``RESUME_PRESENT_CHUNKS`` already have files; ``missing()`` must
#: return exactly the absent ones (that exactness *is* the resume
#: efficiency claim — an interrupted run re-evaluates only its missing
#: chunk set) and the scan itself is timed.
RESUME_TOTAL_CHUNKS = 64
RESUME_PRESENT_CHUNKS = 48

#: The query row: best-score-per-(family, benchmark) over the synthetic
#: record set through the SQLite indexes, calibration-normalized.
#: Loose ceiling — queries are milliseconds; the gate only catches a
#: pathological regression (a dropped index, an accidental table scan
#: of a huge join).
QUERY_MAX_NORMALIZED = 0.5


def _store_fixture():
    """Specs, planned chunks and deterministic synthetic records.

    Synthetic scores (no detector runs): the rows being pushed through
    the persistence paths are shape-identical to real sweep records,
    which is all byte serialization and SQLite care about.
    """
    from repro.experiments.config_space import QUICK, paper_grid
    from repro.experiments.runner import SweepRecord
    from repro.experiments.store import plan_chunks

    specs = paper_grid(QUICK)
    benchmarks = [f"bench{i}" for i in range(STORE_BENCHMARKS)]
    fingerprints = {name: f"fp-{name}" for name in benchmarks}
    work = [(name, specs) for name in benchmarks]

    def chunker(items):
        return [
            list(items[i : i + STORE_CHUNK_SIZE])
            for i in range(0, len(items), STORE_CHUNK_SIZE)
        ]

    planned = plan_chunks(work, fingerprints, "bench", STORE_MPLS, chunker)
    records = {}
    for chunk in planned:
        chunk_records = []
        for position, spec in enumerate(chunk.specs):
            for mpl in STORE_MPLS:
                salt = (chunk.index * 1_009 + position * 17 + mpl) % 97
                chunk_records.append(
                    SweepRecord(
                        benchmark=chunk.benchmark,
                        family=spec.family,
                        cw_nominal=spec.cw_nominal,
                        model=spec.model.value,
                        analyzer=spec.analyzer_label(),
                        anchor=spec.anchor.value,
                        resize=spec.resize.value,
                        mpl_nominal=mpl,
                        score=round(salt / 97.0, 6),
                        correlation=round(salt / 194.0, 6),
                        sensitivity=round(salt / 97.0, 6),
                        false_positives=float(salt % 7),
                        corrected_score=round(salt / 130.0, 6),
                        num_detected_phases=salt % 11,
                        num_baseline_phases=7,
                    )
                )
        records[chunk.key] = chunk_records
    return planned, records, fingerprints


def _store_legacy_side(tmp_dir, planned, records, fingerprints):
    """The ordered-delivery parent loop: from_row + per-row append."""
    from repro.experiments.runner import SweepRecord
    from repro.experiments.store import cache_line

    Path(tmp_dir).mkdir(parents=True, exist_ok=True)
    cache = Path(tmp_dir) / "legacy.jsonl"
    rows_by_chunk = {
        chunk.key: [record.to_row() for record in records[chunk.key]]
        for chunk in planned
    }  # pre-serialized: the pipe delivers dicts, not SweepRecords

    def run():
        with cache.open("a", encoding="utf-8") as handle:
            for chunk in planned:
                delivered = [
                    SweepRecord.from_row(row) for row in rows_by_chunk[chunk.key]
                ]
                fingerprint = fingerprints[chunk.benchmark]
                for record in delivered:
                    handle.write(cache_line(record, fingerprint))

    return run, cache


def _store_compact_side(tmp_dir, planned, records, fingerprints):
    """Chunk-store compaction: the bulk fold is the timed region; the
    workers' chunk files are pre-written here, outside it (in a real
    sweep they are written concurrently with evaluation)."""
    from repro.experiments.store import ChunkStore, cache_line, compact_chunks

    store = ChunkStore(Path(tmp_dir), "bench")
    for chunk in planned:
        lines = [
            cache_line(record, fingerprints[chunk.benchmark])
            for record in records[chunk.key]
        ]
        store.write(
            chunk.key, benchmark=chunk.benchmark,
            fingerprint=fingerprints[chunk.benchmark],
            configs=len(chunk.specs), lines=lines,
        )
    cache = Path(tmp_dir) / "store.jsonl"

    def run():
        compact_chunks(store, planned, cache)

    return run, cache


def _measure_store(calibration):
    """The store section: persistence ratio, resume exactness, query
    latency.  Returns the result dict (see the constants above)."""
    from repro.experiments.store import ChunkStore, ResultDB, cache_line

    planned, records, fingerprints = _store_fixture()
    total_rows = sum(len(chunk_records) for chunk_records in records.values())

    legacy_samples, compact_samples, ingest_samples = [], [], []
    for round_index in range(STORE_INTERLEAVE):
        with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp_dir:
            legacy_run, legacy_cache = _store_legacy_side(
                Path(tmp_dir) / "legacy", planned, records, fingerprints
            )
            compact_run, compact_cache = _store_compact_side(
                Path(tmp_dir) / "store", planned, records, fingerprints
            )
            sides = [(legacy_run, legacy_samples), (compact_run, compact_samples)]
            if round_index % 2:
                sides.reverse()
            for run, samples in sides:
                samples.append(_timed(run))
            with ResultDB(Path(tmp_dir) / "store.sqlite") as db:
                ingest_samples.append(_timed(
                    lambda: db.sync_from_cache(compact_cache, "bench")
                ))
            byte_identical = (
                legacy_cache.read_bytes() == compact_cache.read_bytes()
            )
            if not byte_identical:
                break
    legacy_seconds = min(legacy_samples)
    compact_seconds = min(compact_samples)
    ingest_seconds = min(ingest_samples)

    # Resume: 48 of 64 chunks present; missing() must be the exact
    # 16-chunk complement.
    resume_planned = planned[:RESUME_TOTAL_CHUNKS]
    absent = {
        chunk.key
        for chunk in resume_planned[RESUME_PRESENT_CHUNKS:RESUME_TOTAL_CHUNKS]
    }
    with tempfile.TemporaryDirectory(prefix="repro-resume-") as tmp_dir:
        store = ChunkStore(Path(tmp_dir), "bench")
        for chunk in resume_planned[:RESUME_PRESENT_CHUNKS]:
            lines = [
                cache_line(record, fingerprints[chunk.benchmark])
                for record in records[chunk.key]
            ]
            store.write(
                chunk.key, benchmark=chunk.benchmark,
                fingerprint=fingerprints[chunk.benchmark],
                configs=len(chunk.specs), lines=lines,
            )
        scan_start = time.perf_counter()
        missing = store.missing(resume_planned)
        scan_seconds = time.perf_counter() - scan_start
        resume_exact = {chunk.key for chunk in missing} == absent

    # Query latency through the SQLite indexes.
    query_samples = []
    with tempfile.TemporaryDirectory(prefix="repro-query-") as tmp_dir:
        cache = Path(tmp_dir) / "query.jsonl"
        with cache.open("w", encoding="utf-8") as handle:
            for chunk in planned:
                for record in records[chunk.key]:
                    handle.write(
                        cache_line(record, fingerprints[chunk.benchmark])
                    )
        with ResultDB(Path(tmp_dir) / "query.sqlite") as db:
            db.sync_from_cache(cache, "bench")
            for _ in range(STORE_INTERLEAVE):
                query_samples.append(_timed(
                    lambda: db.best_scores(
                        "bench", by=("family", "benchmark"),
                        where={"mpl_nominal": STORE_MPLS[0]},
                    )
                ))
    query_seconds = min(query_samples)

    return {
        "rows": total_rows,
        "chunks": len(planned),
        "interleave": STORE_INTERLEAVE,
        "legacy_seconds": round(legacy_seconds, 6),
        "compact_seconds": round(compact_seconds, 6),
        "speedup": round(legacy_seconds / compact_seconds, 4),
        "min_speedup": STORE_MIN_SPEEDUP,
        "byte_identical": byte_identical,
        "ingest_seconds": round(ingest_seconds, 6),
        "ingest_rows_per_sec": round(total_rows / ingest_seconds, 1),
        "resume": {
            "planned": len(resume_planned),
            "present": RESUME_PRESENT_CHUNKS,
            "missing": len(missing),
            "exact": resume_exact,
            "scan_seconds": round(scan_seconds, 6),
        },
        "query": {
            "rows": total_rows,
            "seconds": round(query_seconds, 6),
            "normalized": round(query_seconds / calibration, 4),
            "max_normalized": QUERY_MAX_NORMALIZED,
        },
    }


def _calibration_workload():
    # Fixed pure-Python work; its wall time is the unit every detector
    # time divides by.  Must never change once baselines are recorded.
    total = 0
    for i in range(1_500_000):
        total += i & 1023
    return total


def _timed(func):
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def measure(repeats):
    trace = bench_trace()
    # Interleave calibration samples with the detector samples so slow
    # drift (frequency scaling, co-tenant load) hits both sides of the
    # ratio; best-of-N on each side then discards transient spikes.
    cal_samples = []
    det_samples = {label: [] for label in CONFIGS}
    legacy_samples = {label: [] for label in CONFIGS}
    family_samples = {label: [] for label in FAMILY_CONFIGS}
    bank_configs = _bank_configs()
    cold_samples = []
    zero_copy_samples = []
    scalar_score_samples = []
    batch_score_samples = []
    matrix, score_baselines = _batch_scoring_fixture(trace)
    _calibration_workload()  # warm up the interpreter before timing
    run_detector(trace, next(iter(CONFIGS.values())))
    with tempfile.TemporaryDirectory(prefix="repro-warmstart-") as tmp_dir:
        warm_path = _warm_start_fixture(tmp_dir, trace)
        _warm_start_cold(warm_path)  # prime the OS page cache for both sides
        for _ in range(repeats):
            cal_samples.append(_timed(_calibration_workload))
            for label, config in CONFIGS.items():
                # Default path: array-native kernels (kernels default on).
                det_samples[label].append(
                    _timed(lambda c=config: run_detector(trace, c, kernels=True))
                )
                legacy_samples[label].append(
                    _timed(lambda c=config: run_detector(trace, c, kernels=False))
                )
            for label, config in FAMILY_CONFIGS.items():
                family_samples[label].append(
                    _timed(lambda c=config: run_detector(trace, c))
                )
            cold_samples.append(_timed(lambda: _warm_start_cold(warm_path)))
            zero_copy_samples.append(
                _timed(lambda: _warm_start_zero_copy(warm_path))
            )
            scalar_score_samples.append(
                _timed(lambda: _score_scalar(matrix, score_baselines))
            )
            batch_score_samples.append(
                _timed(lambda: score_states_batch(matrix, score_baselines))
            )
        warm_elements = len(read_trace_binary(warm_path, mmap=True))
    calibration = min(cal_samples)
    seq_seconds, bank_seconds, seq_kernel_seconds, batched_seconds = (
        _measure_bank(trace, bank_configs)
    )
    serve_row = _measure_serve(calibration)
    telemetry_row = _measure_telemetry(calibration)
    store_row = _measure_store(calibration)
    cold_seconds = min(cold_samples)
    zero_copy_seconds = min(zero_copy_samples)
    scalar_score_seconds = min(scalar_score_samples)
    batch_score_seconds = min(batch_score_samples)
    configs = {}
    kernel_rows = {}
    for label in CONFIGS:
        seconds = min(det_samples[label])
        configs[label] = {
            "seconds": round(seconds, 6),
            "normalized": round(seconds / calibration, 4),
        }
        legacy_seconds = min(legacy_samples[label])
        kernel_rows[label] = {
            "kernel_seconds": round(seconds, 6),
            "legacy_seconds": round(legacy_seconds, 6),
            "speedup": round(legacy_seconds / seconds, 4),
        }
    families = {}
    for label in FAMILY_CONFIGS:
        seconds = min(family_samples[label])
        families[label] = {
            "seconds": round(seconds, 6),
            "normalized": round(seconds / calibration, 4),
        }
    return {
        "version": BASELINE_VERSION,
        "kind": "bench-baseline",
        "benchmark": "perf_detector_null_path",
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "repeats": repeats,
        "elements": len(trace),
        "calibration_seconds": round(calibration, 6),
        "configs": configs,
        "families": families,
        "bank": {
            "size": BANK_SIZE,
            "interleave": BANK_INTERLEAVE,
            "sequential_seconds": round(seq_seconds, 6),
            "sequential_normalized": round(seq_seconds / calibration, 4),
            "bank_seconds": round(bank_seconds, 6),
            "bank_normalized": round(bank_seconds / calibration, 4),
            "speedup": round(seq_seconds / bank_seconds, 4),
            "min_speedup": BANK_MIN_SPEEDUP,
            "batched": {
                "sequential_kernel_seconds": round(seq_kernel_seconds, 6),
                "batched_seconds": round(batched_seconds, 6),
                "speedup": round(seq_kernel_seconds / batched_seconds, 4),
                "min_speedup": BANK_BATCHED_MIN_SPEEDUP,
            },
        },
        "kernels": {
            "min_speedups": KERNEL_MIN_SPEEDUPS,
            "configs": kernel_rows,
        },
        "zero_copy": {
            "warm_start": {
                "elements": warm_elements,
                "cold_seconds": round(cold_seconds, 6),
                "zero_copy_seconds": round(zero_copy_seconds, 6),
                "speedup": round(cold_seconds / zero_copy_seconds, 4),
                "min_speedup": WARM_START_MIN_SPEEDUP,
            },
            "batch_scoring": {
                "lanes": int(matrix.shape[0]),
                "elements": int(matrix.shape[1]),
                "baselines": len(score_baselines),
                "scalar_seconds": round(scalar_score_seconds, 6),
                "batch_seconds": round(batch_score_seconds, 6),
                "speedup": round(scalar_score_seconds / batch_score_seconds, 4),
                "min_speedup": BATCH_MIN_SPEEDUP,
            },
        },
        "serve": serve_row,
        "telemetry": telemetry_row,
        "store": store_row,
        "aggregate_normalized": round(
            sum(entry["normalized"] for entry in configs.values()), 4
        ),
        "aggregate_families_normalized": round(
            sum(entry["normalized"] for entry in families.values()), 4
        ),
        "environment": environment_info(),
    }


def latest_baseline():
    """The most recently *recorded* baseline, by its ``created_at``
    stamp — filename order is not recording order (several baselines
    share a date prefix and sort alphabetically by suffix)."""
    candidates = sorted(
        BENCH_DIR.glob("BENCH_*.json"),
        key=lambda path: (
            json.loads(path.read_text(encoding="utf-8")).get("created_at", ""),
            path.name,
        ),
    )
    return candidates[-1] if candidates else None


def _print_report(result):
    print(f"calibration: {result['calibration_seconds']:.4f}s "
          f"(repeats={result['repeats']})")
    for label, entry in result["configs"].items():
        print(f"  {label:22s} {entry['seconds']:.4f}s "
              f"normalized={entry['normalized']:.4f}")
    for label, entry in result["families"].items():
        print(f"  family {label:15s} {entry['seconds']:.4f}s "
              f"normalized={entry['normalized']:.4f}")
    for label, row in result["kernels"]["configs"].items():
        print(f"  kernel {label:15s} {row['kernel_seconds']:.4f}s vs "
              f"legacy {row['legacy_seconds']:.4f}s "
              f"(speedup {row['speedup']:.2f}x)")
    bank = result["bank"]
    print(f"  bank[{bank['size']}] sequential   {bank['sequential_seconds']:.4f}s "
          f"normalized={bank['sequential_normalized']:.4f}")
    print(f"  bank[{bank['size']}] single-pass  {bank['bank_seconds']:.4f}s "
          f"normalized={bank['bank_normalized']:.4f} "
          f"(speedup {bank['speedup']:.2f}x)")
    batched = bank["batched"]
    print(f"  bank[{bank['size']}] batched      {batched['batched_seconds']:.4f}s "
          f"vs sequential kernels {batched['sequential_kernel_seconds']:.4f}s "
          f"(speedup {batched['speedup']:.2f}x)")
    warm = result["zero_copy"]["warm_start"]
    print(f"  warm-start[{warm['elements']} elems] cold {warm['cold_seconds']:.4f}s "
          f"vs zero-copy {warm['zero_copy_seconds']:.4f}s "
          f"(speedup {warm['speedup']:.2f}x)")
    batch = result["zero_copy"]["batch_scoring"]
    print(f"  batch-score[{batch['lanes']}x{batch['baselines']}] "
          f"scalar {batch['scalar_seconds']:.4f}s vs "
          f"batch {batch['batch_seconds']:.4f}s "
          f"(speedup {batch['speedup']:.2f}x)")
    serve = result["serve"]
    print(f"  serve[{serve['sessions']} sessions] "
          f"{serve['events_per_sec']:.0f} events/s "
          f"normalized={serve['normalized_throughput']:.0f} "
          f"p50={serve['latency_p50_ms']:.2f}ms "
          f"p99={serve['latency_p99_ms']:.2f}ms "
          f"verified={serve['verified']}")
    print(f"  serve parked[{serve['parked_sessions']} sessions] "
          f"parks={serve['parked_parks']} "
          f"rehydrations={serve['parked_rehydrations']} "
          f"verified={serve['parked_verified']}")
    telemetry = result["telemetry"]
    print(f"  telemetry[{telemetry['sessions']} sessions] "
          f"off {telemetry['off_events_per_sec']:.0f} events/s vs "
          f"on {telemetry['on_events_per_sec']:.0f} events/s "
          f"(overhead {telemetry['overhead']:+.1%}, "
          f"flight {telemetry['flight_samples']} samples)")
    store = result["store"]
    print(f"  store[{store['rows']} rows/{store['chunks']} chunks] "
          f"legacy {store['legacy_seconds']:.4f}s vs "
          f"compact {store['compact_seconds']:.4f}s "
          f"(speedup {store['speedup']:.2f}x, "
          f"byte-identical={store['byte_identical']})")
    print(f"  store ingest {store['ingest_seconds']:.4f}s "
          f"({store['ingest_rows_per_sec']:.0f} rows/s into SQLite)")
    resume = store["resume"]
    print(f"  resume[{resume['planned']} planned] "
          f"{resume['present']} present -> {resume['missing']} missing "
          f"(exact={resume['exact']}, scan {resume['scan_seconds']:.4f}s)")
    query = store["query"]
    print(f"  query[{query['rows']} rows] best-scores "
          f"{query['seconds']:.4f}s normalized={query['normalized']:.4f}")
    print(f"aggregate normalized score: {result['aggregate_normalized']:.4f}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write a new baseline instead of checking")
    parser.add_argument("--out", type=Path, default=None,
                        help="baseline path for --record "
                             "(default: benchmarks/BENCH_<date>_perf_detector.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline to check against "
                             "(default: newest benchmarks/BENCH_*.json)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression (default 0.10)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N repetitions per measurement")
    args = parser.parse_args(argv)

    result = measure(args.repeats)
    _print_report(result)

    if args.record:
        out = args.out
        if out is None:
            stamp = result["created_at"][:10]
            out = BENCH_DIR / f"BENCH_{stamp}_perf_detector.json"
        out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        print(f"baseline recorded: {out}")
        return 0

    baseline_path = args.baseline or latest_baseline()
    if baseline_path is None or not baseline_path.exists():
        print("error: no baseline found (record one with --record)",
              file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("version", 0) != BASELINE_VERSION:
        print(f"error: {baseline_path} has unsupported version "
              f"{baseline.get('version')}", file=sys.stderr)
        return 2
    reference = float(baseline["aggregate_normalized"])
    current = float(result["aggregate_normalized"])
    change = (current - reference) / reference
    print(f"baseline {baseline_path.name}: aggregate {reference:.4f} "
          f"(recorded {baseline.get('created_at')})")
    print(f"change: {change:+.1%} (tolerance {args.tolerance:+.0%})")
    if change > args.tolerance:
        print(f"FAIL: null-path detector benchmark regressed {change:+.1%} "
              f"(> {args.tolerance:.0%}) vs {baseline_path.name}",
              file=sys.stderr)
        return 1
    families_ref = baseline.get("aggregate_families_normalized")
    if families_ref is not None:
        families_current = float(result["aggregate_families_normalized"])
        families_change = (
            (families_current - float(families_ref)) / float(families_ref)
        )
        print(f"families aggregate: {families_current:.4f} "
              f"(baseline {float(families_ref):.4f}, "
              f"change {families_change:+.1%})")
        if families_change > args.tolerance:
            print(f"FAIL: decision-family benchmark regressed "
                  f"{families_change:+.1%} (> {args.tolerance:.0%}) vs "
                  f"{baseline_path.name}", file=sys.stderr)
            return 1
    bank_ref = baseline.get("bank")
    if bank_ref is not None:
        # The bank gate is the sequential/bank ratio, not wall time: both
        # sides are measured in the same run, so the check is immune to
        # host-speed drift that the calibration cannot fully cancel.
        speedup = float(result["bank"]["speedup"])
        print(f"bank speedup: {speedup:.2f}x "
              f"(baseline {float(bank_ref['speedup']):.2f}x, "
              f"gate >= {BANK_MIN_SPEEDUP:.2f}x)")
        if speedup < BANK_MIN_SPEEDUP:
            print(f"FAIL: {BANK_SIZE}-config bank was only {speedup:.2f}x "
                  f"{BANK_SIZE} sequential run_detector calls "
                  f"(gate {BANK_MIN_SPEEDUP:.2f}x)", file=sys.stderr)
            return 1
    # Batched-advancer gate: kernels on both sides, so the ratio
    # isolates the per-signature series sharing, not vectorization.
    batched_speedup = float(result["bank"]["batched"]["speedup"])
    print(f"bank batched speedup: {batched_speedup:.2f}x "
          f"(gate >= {BANK_BATCHED_MIN_SPEEDUP:.2f}x)")
    if batched_speedup < BANK_BATCHED_MIN_SPEEDUP:
        print(f"FAIL: batched bank advancer was only {batched_speedup:.2f}x "
              f"{BANK_SIZE} sequential kernel runs "
              f"(gate {BANK_BATCHED_MIN_SPEEDUP:.2f}x)", file=sys.stderr)
        return 1
    # Kernel gates: same-run kernel/legacy ratios, so they need no
    # baseline and no calibration — both sides ran on this host seconds
    # apart.  One floor per vectorized config.
    for gate_config, min_speedup in KERNEL_MIN_SPEEDUPS.items():
        kernel_speedup = float(
            result["kernels"]["configs"][gate_config]["speedup"]
        )
        print(f"kernel speedup ({gate_config}): {kernel_speedup:.2f}x "
              f"(gate >= {min_speedup:.1f}x)")
        if kernel_speedup < min_speedup:
            print(f"FAIL: array-native kernel path was only "
                  f"{kernel_speedup:.2f}x the legacy fused loop on "
                  f"{gate_config} (gate {min_speedup:.1f}x)",
                  file=sys.stderr)
            return 1
    # Zero-copy gates: same-run ratios, baseline-independent like the
    # kernel gate.
    warm_speedup = float(result["zero_copy"]["warm_start"]["speedup"])
    print(f"warm-start speedup: {warm_speedup:.2f}x "
          f"(gate > {WARM_START_MIN_SPEEDUP:.1f}x)")
    if warm_speedup <= WARM_START_MIN_SPEEDUP:
        print(f"FAIL: mmap + sidecar warm start was not faster than the "
              f"heap read + unique pass ({warm_speedup:.2f}x)",
              file=sys.stderr)
        return 1
    batch_speedup = float(result["zero_copy"]["batch_scoring"]["speedup"])
    print(f"batch-scoring speedup: {batch_speedup:.2f}x "
          f"(gate >= {BATCH_MIN_SPEEDUP:.1f}x)")
    if batch_speedup < BATCH_MIN_SPEEDUP:
        print(f"FAIL: score_states_batch was only {batch_speedup:.2f}x the "
              f"per-pair score_states loop (gate {BATCH_MIN_SPEEDUP:.1f}x)",
              file=sys.stderr)
        return 1
    # Serving gates: correctness flags are absolute (a mismatch anywhere
    # is a real bug); throughput uses the calibration-normalized floor so
    # the check survives host-speed differences.
    serve = result["serve"]
    print(f"serve: {serve['sessions']} sessions, "
          f"normalized throughput {serve['normalized_throughput']:.0f} "
          f"(gate >= {SERVE_MIN_NORMALIZED_THROUGHPUT:.0f})")
    if serve["sessions"] < SERVE_SESSIONS:
        print(f"FAIL: serve-bench ran only {serve['sessions']} concurrent "
              f"sessions (gate {SERVE_SESSIONS})", file=sys.stderr)
        return 1
    if serve["verified"] is not True or serve["parked_verified"] is not True:
        print("FAIL: served phase streams were not byte-identical to the "
              "offline detector (main verified="
              f"{serve['verified']}, parked verified="
              f"{serve['parked_verified']})", file=sys.stderr)
        return 1
    if serve["parked_parks"] < 1:
        print("FAIL: forced-eviction serve run never parked a session — "
              "the park/rehydrate path went unexercised", file=sys.stderr)
        return 1
    if serve["normalized_throughput"] < SERVE_MIN_NORMALIZED_THROUGHPUT:
        print(f"FAIL: serving throughput {serve['normalized_throughput']:.0f} "
              f"normalized events/s fell below the floor "
              f"{SERVE_MIN_NORMALIZED_THROUGHPUT:.0f}", file=sys.stderr)
        return 1
    # Telemetry gates: a same-run on/off ratio (drift-immune like the
    # kernel gate) plus an absolute flight-record completeness check.
    telemetry = result["telemetry"]
    print(f"telemetry overhead: {telemetry['overhead']:+.1%} "
          f"(gate <= {TELEMETRY_MAX_OVERHEAD:+.0%})")
    if telemetry["overhead"] > TELEMETRY_MAX_OVERHEAD:
        print(f"FAIL: serving with the flight recorder enabled was "
              f"{telemetry['overhead']:+.1%} slower than telemetry off "
              f"(gate {TELEMETRY_MAX_OVERHEAD:.0%})", file=sys.stderr)
        return 1
    if telemetry["flight_events_in"] != telemetry["elements"]:
        print(f"FAIL: flight-record deltas summed to "
              f"{telemetry['flight_events_in']} events but the run fed "
              f"{telemetry['elements']} — the spool lost samples",
              file=sys.stderr)
        return 1
    # Store gates: the persistence ratio is same-run (drift-immune);
    # byte-identity and resume exactness are absolute correctness
    # claims; query latency uses the calibration-normalized ceiling.
    store = result["store"]
    print(f"store persistence speedup: {store['speedup']:.2f}x "
          f"(gate >= {STORE_MIN_SPEEDUP:.1f}x)")
    if not store["byte_identical"]:
        print("FAIL: chunk-store compaction produced a cache that is not "
              "byte-identical to the ordered-delivery append path",
              file=sys.stderr)
        return 1
    if store["speedup"] < STORE_MIN_SPEEDUP:
        print(f"FAIL: chunk compaction (incl. SQLite ingest) was only "
              f"{store['speedup']:.2f}x the legacy per-row parent loop "
              f"(gate {STORE_MIN_SPEEDUP:.1f}x)", file=sys.stderr)
        return 1
    resume = store["resume"]
    print(f"store resume: {resume['missing']}/{resume['planned']} missing "
          f"(exact={resume['exact']})")
    if not resume["exact"]:
        print(f"FAIL: resume scan over {resume['planned']} planned chunks "
              f"with {resume['present']} present did not return exactly "
              f"the absent set ({resume['missing']} returned)",
              file=sys.stderr)
        return 1
    query = store["query"]
    print(f"store query normalized: {query['normalized']:.4f} "
          f"(gate <= {QUERY_MAX_NORMALIZED:.2f})")
    if query["normalized"] > QUERY_MAX_NORMALIZED:
        print(f"FAIL: best-scores query took {query['normalized']:.4f} "
              f"calibration units over {query['rows']} rows "
              f"(ceiling {QUERY_MAX_NORMALIZED:.2f}) — check the indexes",
              file=sys.stderr)
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
