"""Detection-overhead table (future-work extension, Section 7).

Regenerates a machine-independent overhead comparison across the three
TW-policy families on the largest benchmark trace.
"""

from conftest import publish

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.experiments.overhead import measure_overhead, overhead_comparison
from repro.experiments.report import render_table


def test_overhead_table(benchmark, sweep, profile, results_dir):
    largest = max(sweep.benchmarks, key=lambda n: len(sweep.traces[n][0]))
    trace, _ = sweep.traces[largest]
    cw = profile.actual(10_000)
    configs = {
        "fixed-interval": DetectorConfig.fixed_interval(cw),
        "constant, skip 1": DetectorConfig(cw_size=cw, threshold=0.6),
        "adaptive, skip 1": DetectorConfig(
            cw_size=cw, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        ),
    }
    reports = overhead_comparison(trace, list(configs.values()))
    rows = [
        (
            label,
            report.similarity_evaluations,
            round(report.evaluations_per_element, 3),
            report.window_updates,
            report.peak_tw_length,
            report.peak_tracked_elements,
            report.window_flushes,
        )
        for label, report in zip(configs, reports)
    ]
    table = render_table(
        ["Detector", "Sim evals", "Evals/elem", "Window updates",
         "Peak TW len", "Peak tracked", "Flushes"],
        rows,
        title=f"Detection overhead on {largest} ({len(trace):,} elements, CW={cw})",
    )
    publish(results_dir, "overhead", table)

    fixed, constant, adaptive = reports
    # skipFactor = CW trades accuracy (Figure 4) for ~CW-fold fewer
    # similarity evaluations.
    assert fixed.similarity_evaluations * 10 < constant.similarity_evaluations
    # The unweighted model's tracked state stays manageable even though
    # the Adaptive TW grows to hold whole phases.
    assert adaptive.peak_tracked_elements < len(trace) // 10

    benchmark(measure_overhead, trace, configs["adaptive, skip 1"])
