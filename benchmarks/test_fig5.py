"""Regenerate Figure 5: weighted vs unweighted similarity models."""

import math

from conftest import publish

from repro.experiments import figures


def test_figure_5(benchmark, sweep, records, results_dir):
    figure = benchmark(figures.figure_5, records, sweep.benchmarks)
    publish(results_dir, "figure_5", figure.render())

    # Paper conclusion: excluding compress, the unweighted model is at
    # least as accurate as the weighted model on average (both TW
    # policies, averaged over the reported MPLs).
    for family in ("Constant", "Adaptive"):
        unweighted = figure.series[f"{family} unweighted w/o compress"]
        weighted = figure.series[f"{family} weighted w/o compress"]
        pairs = [
            (u, w) for u, w in zip(unweighted, weighted)
            if not (math.isnan(u) or math.isnan(w))
        ]
        assert pairs
        mean_unweighted = sum(u for u, _ in pairs) / len(pairs)
        mean_weighted = sum(w for _, w in pairs) / len(pairs)
        assert mean_unweighted >= mean_weighted - 0.02, family
