"""MPL-selection experiment (future-work extension, Section 7).

Validates the analytic MPL suggestion against an empirical MPL sweep
for a concrete client on every benchmark: the suggested MPL's realized
benefit should be close to the best the sweep finds.
"""

from conftest import publish

from repro.experiments.client_model import ClientModel, best_mpl, sweep_mpl
from repro.experiments.report import render_table


def test_mpl_suggestion_vs_empirical(benchmark, sweep, profile, results_dir):
    client = ClientModel(action_cost=60, speedup=0.15, mis_penalty=0.05)
    candidates = [profile.actual(n) for n in (1_000, 5_000, 10_000, 25_000, 50_000)]
    suggestion = client.suggested_mpl()

    rows = []
    close_calls = 0
    for name in sweep.benchmarks:
        branch_trace, call_loop = sweep.traces[name]
        outcomes = sweep_mpl(branch_trace, call_loop, client, candidates)
        empirical = best_mpl(outcomes)
        suggested_outcome = min(
            outcomes, key=lambda o: abs(o.mpl - suggestion)
        )
        rows.append(
            (
                name,
                suggestion,
                empirical.mpl,
                round(empirical.benefit, 0),
                round(suggested_outcome.benefit, 0),
                round(suggested_outcome.percent_of_ideal, 1),
            )
        )
        if empirical.benefit <= 0 or suggested_outcome.benefit >= 0.5 * empirical.benefit:
            close_calls += 1

    table = render_table(
        ["Benchmark", "Suggested MPL", "Best MPL", "Best benefit",
         "Benefit @ suggestion", "% of ideal"],
        rows,
        title=(
            f"MPL selection (action={client.action_cost}, speedup={client.speedup}, "
            f"penalty={client.mis_penalty}; break-even={client.break_even_length:.0f})"
        ),
    )
    publish(results_dir, "client_model", table)

    # The analytic suggestion captures at least half the empirically
    # best benefit on most benchmarks.
    assert close_calls >= len(rows) // 2

    name = sweep.benchmarks[0]
    branch_trace, call_loop = sweep.traces[name]
    benchmark(sweep_mpl, branch_trace, call_loop, client, candidates[:2])
