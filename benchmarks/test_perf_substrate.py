"""Substrate performance: MiniVM interpretation, trace I/O, scoring."""

import numpy as np
import pytest

from repro.profiles.io import read_trace_binary, write_trace_binary
from repro.profiles.synthetic import make_phased_trace
from repro.scoring import score_states
from repro.vm.compiler import compile_source
from repro.vm.interpreter import Interpreter
from repro.vm.tracing import CollectingSink, NullSink
from repro.workloads import workload

HOT_LOOP = """
fn main() {
    var acc = 0;
    var i = 0;
    while (i < 20000) {
        if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }
        i = i + 1;
    }
    return acc;
}
"""


def test_interpreter_throughput_null_sink(benchmark):
    """Raw interpretation speed without trace materialization."""
    program = compile_source(HOT_LOOP)
    benchmark(Interpreter().run, program, NullSink())


def test_interpreter_throughput_collecting(benchmark):
    """Full instrumentation: branch + call-loop trace collection."""
    program = compile_source(HOT_LOOP)

    def run():
        sink = CollectingSink()
        Interpreter().run(program, sink)
        return sink

    sink = benchmark(run)
    assert len(sink.elements) == 40_001


def test_workload_compile_time(benchmark):
    """MiniLang front end + codegen on the largest workload source."""
    source = workload("jlex").program_source(1.0)
    program = benchmark(compile_source, source)
    assert program.num_instructions() > 100


def test_trace_binary_round_trip(benchmark, tmp_path):
    """Binary trace write+read for a 100K-element trace."""
    trace, _ = make_phased_trace(num_phases=5, phase_length=19_000, transition_length=1_000)
    path = tmp_path / "t.btrace"

    def round_trip():
        write_trace_binary(trace, path)
        return read_trace_binary(path)

    loaded = benchmark(round_trip)
    assert loaded == trace


def test_scoring_throughput(benchmark):
    """Metric cost on 100K-element state arrays with many boundaries."""
    rng = np.random.default_rng(5)
    baseline = rng.random(100_000) < 0.6
    detected = baseline ^ (rng.random(100_000) < 0.05)
    result = benchmark(score_states, detected, baseline)
    assert 0.0 <= result.score <= 1.0
