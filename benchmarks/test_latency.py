"""Detection-latency study (extension experiment).

Section 3.2 notes that online detectors are necessarily late and that
the window size governs the delay.  This bench makes the relationship
explicit: mean phase-start lateness per CW size, with and without the
Adaptive TW's anchor correction, measured against each benchmark's
oracle.
"""

from conftest import publish

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.engine import run_detector
from repro.experiments.report import nominal_label, render_table
from repro.scoring.latency import measure_latency


def test_lateness_vs_window_size(benchmark, sweep, profile, results_dir):
    mpl_nominal = 10_000
    mpl = profile.actual(mpl_nominal)
    cw_nominals = (500, 1_000, 5_000)

    rows = []
    for name in sweep.benchmarks:
        branch_trace, _ = sweep.traces[name]
        baselines = sweep.baselines(name)
        oracle = baselines.solutions[mpl_nominal]
        truth = [(p.start, p.end) for p in oracle.phases]
        if len(truth) < 3:
            continue
        cells = [name]
        for cw_nominal in cw_nominals:
            config = DetectorConfig(
                cw_size=profile.actual(cw_nominal),
                trailing=TrailingPolicy.ADAPTIVE,
                threshold=0.6,
            )
            result = run_detector(branch_trace, config)
            plain = measure_latency(result.phases(), truth, len(branch_trace))
            corrected = measure_latency(
                result.corrected_phases(), truth, len(branch_trace)
            )
            cells.append(
                f"{plain.mean_start_lateness:.0f}/{corrected.mean_start_lateness:.0f}"
                if plain.num_matched
                else "-"
            )
        rows.append(tuple(cells))

    table = render_table(
        ["Benchmark"] + [f"CW={nominal_label(c)} raw/corrected" for c in cw_nominals],
        rows,
        title=(
            f"Mean phase-start lateness in elements (MPL={nominal_label(mpl_nominal)}, "
            "Adaptive TW; raw detection vs anchor-corrected)"
        ),
    )
    publish(results_dir, "latency", table)
    assert rows, "no benchmark had enough phases at this MPL"

    # Timed body: one latency measurement on the largest trace.
    largest = max(sweep.benchmarks, key=lambda n: len(sweep.traces[n][0]))
    branch_trace, _ = sweep.traces[largest]
    oracle = sweep.baselines(largest).solutions[mpl_nominal]
    truth = [(p.start, p.end) for p in oracle.phases]
    config = DetectorConfig(
        cw_size=profile.actual(1_000), trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    )
    result = run_detector(branch_trace, config)
    benchmark(measure_latency, result.phases(), truth, len(branch_trace))
