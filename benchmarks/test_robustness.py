"""Robustness-under-noise study (extension experiment)."""

from conftest import publish

from repro.experiments.report import render_table
from repro.experiments.robustness import noise_robustness


def test_noise_robustness(benchmark, sweep, profile, results_dir):
    name = "jlex"
    branch_trace, call_loop = sweep.traces[name]
    mpl = profile.actual(10_000)
    rates = (0.0, 0.02, 0.05, 0.1, 0.2)
    points = noise_robustness(branch_trace, call_loop, mpl, noise_rates=rates)

    detectors = sorted({p.detector for p in points})
    by_key = {(p.detector, p.noise_rate): p for p in points}
    rows = [
        (f"{rate:.2f}", *(round(by_key[(d, rate)].score, 3) for d in detectors))
        for rate in rates
    ]
    table = render_table(
        ["Noise rate"] + detectors,
        rows,
        title=f"Accuracy vs profile noise on {name} (MPL={mpl})",
    )
    publish(results_dir, "robustness", table)

    # The study's finding: distinct-set (unweighted) similarity dilutes
    # fast under unique-element noise, while the weighted model only
    # loses the noise's mass and keeps most of its clean-trace score.
    for detector in ("constant-weighted", "adaptive-weighted"):
        clean = by_key[(detector, 0.0)].score
        dirty = by_key[(detector, 0.05)].score
        assert dirty >= clean - 0.25, detector
    unweighted_dirty = by_key[("constant-unweighted", 0.05)].score
    weighted_dirty = by_key[("constant-weighted", 0.05)].score
    assert weighted_dirty > unweighted_dirty

    benchmark(
        noise_robustness, branch_trace, call_loop, mpl, (0.0, 0.1)
    )
