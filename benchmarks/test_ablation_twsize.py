"""Trailing-window size ablation.

The paper's window policy includes the TW size as a parameter but its
reported grids tie TW = CW.  This ablation varies the ratio: does a
trailing window larger than the current window help?  (Intuition: a
2x TW remembers more of the recent past — like a cheap, bounded
version of the Adaptive TW's growth.)
"""

from conftest import publish

from repro.baseline.oracle import solve_baseline
from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.engine import run_detector
from repro.experiments.report import nominal_label, render_table
from repro.scoring.metric import score_states

TW_RATIOS = (0.5, 1, 2, 4)
THRESHOLDS = (0.5, 0.6, 0.7, 0.8)


def test_tw_size_ablation(benchmark, sweep, profile, results_dir):
    mpl_nominal = 10_000
    cw = profile.actual(5_000)  # CW = MPL/2

    rows = []
    per_ratio_means = {ratio: [] for ratio in TW_RATIOS}
    for name in sweep.benchmarks:
        branch_trace, call_loop = sweep.traces[name]
        oracle = solve_baseline(call_loop, profile.actual(mpl_nominal))
        if oracle.num_phases < 3:
            continue
        oracle_states = oracle.states()
        cells = [name]
        for ratio in TW_RATIOS:
            tw = max(2, int(cw * ratio))
            best = 0.0
            for threshold in THRESHOLDS:
                config = DetectorConfig(
                    cw_size=cw,
                    tw_size=tw,
                    trailing=TrailingPolicy.CONSTANT,
                    threshold=threshold,
                )
                result = run_detector(branch_trace, config)
                best = max(best, score_states(result.states, oracle_states).score)
            cells.append(round(best, 3))
            per_ratio_means[ratio].append(best)
        rows.append(tuple(cells))

    table = render_table(
        ["Benchmark"] + [f"TW={r}xCW" for r in TW_RATIOS],
        rows,
        title=(
            f"TW-size ablation (Constant TW, CW={cw}, best over thresholds, "
            f"MPL={nominal_label(mpl_nominal)})"
        ),
    )
    publish(results_dir, "ablation_twsize", table)
    assert rows

    # The tied setting (TW = CW) the paper uses should be competitive:
    # within a small margin of the best ratio on average.
    means = {r: sum(v) / len(v) for r, v in per_ratio_means.items() if v}
    assert means[1] >= max(means.values()) - 0.05

    name = rows[0][0]
    branch_trace, _ = sweep.traces[name]
    config = DetectorConfig(cw_size=cw, tw_size=2 * cw, threshold=0.6)
    benchmark(run_detector, branch_trace, config)
