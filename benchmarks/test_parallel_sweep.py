"""Sweep executor scaling: serial vs multiprocess on a tiny profile.

Two pytest-benchmark rows time the identical cold-cache sweep serially
and with two workers, so the speedup is visible in the comparison
table; a third (non-benchmark) check asserts the two modes produce
byte-identical caches.  Traces are generated once and copied into each
round's fresh cache directory, so only detector evaluation is timed.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.experiments.config_space import SuiteProfile, paper_grid
from repro.experiments.sweep import Sweep
from repro.workloads.suite import load_suite

TINY = SuiteProfile(
    name="partiny",
    workload_scale=0.15,
    thresholds=(0.5, 0.6, 0.8),
    deltas=(0.05, 0.2),
    cw_nominals=(500, 5_000, 25_000),
)
BENCHMARKS = ["db", "jess", "jlex"]
SPECS = paper_grid(TINY)


@pytest.fixture(scope="module")
def warm_trace_dir(tmp_path_factory):
    """Trace files generated once, shared (copied) by every round."""
    cache = tmp_path_factory.mktemp("partiny-traces")
    load_suite(scale=TINY.workload_scale, cache_dir=cache, names=BENCHMARKS)
    return cache


def _fresh_cache(tmp_path_factory, warm_trace_dir):
    cache = tmp_path_factory.mktemp("partiny-run")
    for path in warm_trace_dir.iterdir():
        shutil.copy2(path, cache / path.name)
    return cache


def _bench_sweep(benchmark, tmp_path_factory, warm_trace_dir, jobs):
    def setup():
        cache = _fresh_cache(tmp_path_factory, warm_trace_dir)
        sweep = Sweep(TINY, cache_dir=cache, benchmarks=BENCHMARKS)
        return (sweep,), {}

    def run(sweep):
        return sweep.ensure(SPECS, jobs=jobs)

    from repro.experiments.config_space import MPL_NOMINALS_EXTENDED

    records = benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    assert len(records) == len(SPECS) * len(BENCHMARKS) * len(MPL_NOMINALS_EXTENDED)


def test_sweep_serial(benchmark, tmp_path_factory, warm_trace_dir):
    """Baseline: every cell evaluated in-process."""
    _bench_sweep(benchmark, tmp_path_factory, warm_trace_dir, jobs=1)


def test_sweep_two_workers(benchmark, tmp_path_factory, warm_trace_dir):
    """The same sweep fanned over two worker processes.

    On a multi-core machine this row should be measurably faster than
    ``test_sweep_serial``; on a single core it only measures overhead.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core machine: two workers cannot beat serial")
    _bench_sweep(benchmark, tmp_path_factory, warm_trace_dir, jobs=2)


def test_modes_byte_identical(tmp_path_factory, warm_trace_dir):
    """Serial and 2-worker runs write byte-identical record caches."""
    serial_cache = _fresh_cache(tmp_path_factory, warm_trace_dir)
    parallel_cache = _fresh_cache(tmp_path_factory, warm_trace_dir)
    serial = Sweep(TINY, cache_dir=serial_cache, benchmarks=BENCHMARKS)
    parallel = Sweep(TINY, cache_dir=parallel_cache, benchmarks=BENCHMARKS)
    assert serial.ensure(SPECS, jobs=1) == parallel.ensure(SPECS, jobs=2)
    assert (
        (serial_cache / "sweep-partiny.jsonl").read_bytes()
        == (parallel_cache / "sweep-partiny.jsonl").read_bytes()
    )
