"""Regenerate Figure 4: skip factor and TW policy vs MPL."""

import math

from conftest import publish

from repro.experiments import figures


def test_figure_4(benchmark, records, results_dir):
    figure = benchmark(figures.figure_4, records)
    publish(results_dir, "figure_4", figure.render())

    fixed = figure.series["Fixed Intervals (skip=CW)"]
    constant = figure.series["Constant TW (skip=1)"]
    adaptive = figure.series["Adaptive TW (skip=1)"]

    # Paper headline: skipFactor = CW (the extant approach) is
    # significantly less accurate than skipFactor = 1, at every MPL.
    for index in range(len(figure.mpl_nominals)):
        if math.isnan(fixed[index]):
            continue
        assert constant[index] > fixed[index]
        assert adaptive[index] > fixed[index]

    # Paper trend: for large MPLs the Adaptive TW is at least
    # competitive with the Constant TW (on average across benchmarks).
    large = [
        index
        for index, nominal in enumerate(figure.mpl_nominals)
        if nominal >= 50_000 and not math.isnan(adaptive[index])
    ]
    assert large, "no large-MPL cells survived the phase-count filter"
    adaptive_mean = sum(adaptive[i] for i in large) / len(large)
    constant_mean = sum(constant[i] for i in large) / len(large)
    assert adaptive_mean >= constant_mean - 0.02
