"""Recurring-phase detection + next-phase prediction study
(future-work extension, Section 7)."""

from conftest import publish

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.prediction import MarkovPhasePredictor, evaluate_predictor
from repro.core.recurrence import RecurringPhaseDetector
from repro.experiments.report import render_table


def test_recurrence_across_suite(benchmark, sweep, profile, results_dir):
    cw = profile.actual(5_000)
    config = DetectorConfig(
        cw_size=cw, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    )

    rows = []
    recurrence_rates = {}
    for name in sweep.benchmarks:
        branch_trace, _ = sweep.traces[name]
        result = RecurringPhaseDetector(config).run(branch_trace)
        occurrences = len(result.phases)
        recurrences = len(result.recurrences())
        rate = recurrences / occurrences if occurrences else 0.0
        recurrence_rates[name] = rate
        phase_ids = [p.phase_id for p in result.phases]
        prediction = evaluate_predictor(MarkovPhasePredictor(order=2), phase_ids)
        rows.append(
            (
                name,
                occurrences,
                result.num_distinct_phases(),
                recurrences,
                round(100 * rate, 1),
                round(100 * prediction.accuracy, 1) if prediction.predictions else "-",
            )
        )

    table = render_table(
        ["Benchmark", "Occurrences", "Distinct ids", "Recurrences",
         "% recurrent", "Markov-2 pred. acc. %"],
        rows,
        title=f"Recurring-phase detection across the suite (Adaptive TW, CW={cw})",
    )
    publish(results_dir, "recurrence", table)

    # jack runs its generator 16 times and mpegaudio decodes a uniform
    # frame stream: both must show strong recurrence when they phase at
    # this granularity at all.
    for name in ("jack", "mpegaudio"):
        occurrences = next(r[1] for r in rows if r[0] == name)
        if occurrences >= 4:
            assert recurrence_rates[name] >= 0.5, name

    name = "jack"
    branch_trace, _ = sweep.traces[name]
    benchmark(RecurringPhaseDetector(config).run, branch_trace)
