"""Extension models/analyzers vs the paper's grid (extra design corners).

The paper evaluates asymmetric-unweighted and symmetric-weighted
models; `repro.core.extensions` fills the other two corners plus an
EWMA analyzer.  This bench scores all of them side by side across the
suite at one MPL.
"""

from conftest import publish

from repro.baseline.oracle import solve_baseline
from repro.core.analyzers import ThresholdAnalyzer
from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.engine import run_detector
from repro.core.extensions import (
    AsymmetricWeightedModel,
    EwmaAnalyzer,
    JaccardSetModel,
    build_extended_detector,
)
from repro.experiments.aggregate import mean
from repro.experiments.report import nominal_label, render_table
from repro.scoring.metric import score_states


def test_extension_components(benchmark, sweep, profile, results_dir):
    mpl_nominal = 10_000
    mpl = profile.actual(mpl_nominal)
    cw = max(2, mpl // 2)
    base = DetectorConfig(
        cw_size=cw, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
    )

    def run_extended(branch_trace, model=None, analyzer=None):
        detector = build_extended_detector(base, model=model, analyzer=analyzer)
        return detector.run(branch_trace).states

    columns = {}
    rows = []
    for name in sweep.benchmarks:
        branch_trace, call_loop = sweep.traces[name]
        oracle_states = solve_baseline(call_loop, mpl).states()

        def scored(states):
            return score_states(states, oracle_states).score

        scores = {
            "unweighted (paper)": scored(run_detector(branch_trace, base).states),
            "Jaccard (ext)": scored(
                run_extended(branch_trace, model=JaccardSetModel(cw, cw))
            ),
            "asym-weighted (ext)": scored(
                run_extended(branch_trace, model=AsymmetricWeightedModel(cw, cw))
            ),
            "EWMA analyzer (ext)": scored(
                run_extended(
                    branch_trace,
                    analyzer=EwmaAnalyzer(delta=0.1, alpha=0.3, enter_threshold=0.6),
                )
            ),
        }
        for label, value in scores.items():
            columns.setdefault(label, []).append(value)
        rows.append((name, *(round(scores[k], 3) for k in scores)))

    labels = list(columns)
    rows.append(("average", *(round(mean(columns[k]), 3) for k in labels)))
    table = render_table(
        ["Benchmark"] + labels,
        rows,
        title=(
            f"Extension components vs the paper's unweighted model "
            f"(Adaptive TW, CW={cw}, MPL={nominal_label(mpl_nominal)})"
        ),
    )
    publish(results_dir, "extensions", table)

    # Sanity: every extension is a working detector (not degenerate).
    for label in labels:
        assert mean(columns[label]) > 0.3, label

    name = sweep.benchmarks[0]
    branch_trace, _ = sweep.traces[name]
    benchmark(
        lambda: build_extended_detector(
            base, model=JaccardSetModel(cw, cw)
        ).run(branch_trace)
    )
