"""Regenerate Table 2: the CW-size-vs-MPL analysis (Section 4.2)."""

from conftest import publish

from repro.experiments import tables


def test_table_2a(benchmark, sweep, records, results_dir):
    """Table 2(a): % improvement of CW smaller/equal over CW larger."""
    table = benchmark(tables.table_2a, records, sweep.benchmarks)
    publish(results_dir, "table_2a", table.render())
    # Paper shape: on average, a CW smaller than the MPL beats a larger
    # CW for every TW policy (positive average improvements).
    for family in ("adaptive", "constant", "fixed"):
        smaller_avg = sum(
            table.rows[b][family][0] for b in sweep.benchmarks
        ) / len(sweep.benchmarks)
        assert smaller_avg > 0.0, family


def test_table_2b(benchmark, sweep, records, results_dir):
    """Table 2(b): average best score for CW smaller / equal / half MPL."""
    table = benchmark(tables.table_2b, records, sweep.benchmarks)
    publish(results_dir, "table_2b", table.render())
    for family, (smaller, equal, half) in table.rows.items():
        # Paper shape: CW smaller than MPL beats CW equal to MPL.
        assert smaller > equal, family
    # Paper shape: the skip-1 policies dominate the Fixed-Interval design.
    assert table.rows["adaptive"][0] > table.rows["fixed"][0]
    assert table.rows["constant"][0] > table.rows["fixed"][0]
