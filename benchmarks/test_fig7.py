"""Regenerate Figure 7: anchoring (RN vs LNN) and resizing (Slide vs Move)."""

from conftest import publish

from repro.experiments import figures
from repro.experiments.aggregate import mean


def test_figure_7a_slide_vs_move(benchmark, sweep, records, results_dir):
    series = benchmark(figures.figure_7a, records, sweep.benchmarks)
    publish(results_dir, "figure_7a", series.render())
    # Paper conclusion: on average, Sliding is more accurate than Moving.
    assert mean(series.improvements) > -0.5


def test_figure_7b_rn_vs_lnn(benchmark, sweep, records, results_dir):
    series = benchmark(figures.figure_7b, records, sweep.benchmarks)
    publish(results_dir, "figure_7b", series.render())
    # Paper conclusion: on average, RN is more accurate than LNN.  Like
    # the paper's own Figure 7 the per-MPL values may dip negative.
    assert mean(series.improvements) > -1.0
