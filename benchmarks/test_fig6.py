"""Regenerate Figure 6: Threshold vs Average analyzers."""

import math

from conftest import publish

from repro.experiments import figures


def test_figure_6(benchmark, records, results_dir, profile):
    result = benchmark(figures.figure_6, records, profile)
    for family, series in result.items():
        publish(results_dir, f"figure_6_{family}", series.render())

    # Paper finding: the results are mixed — no analyzer dominates at
    # every MPL.  Verify the data is at least well-formed and non-trivial:
    # every analyzer achieves a meaningful best score somewhere.
    for family, series in result.items():
        for label, values in series.series.items():
            finite = [v for v in values if not math.isnan(v)]
            assert finite, (family, label)
            assert max(finite) > 0.4, (family, label)
        # ... and the winner differs across MPLs or is not unanimous
        # across families (the "mixed results" of Section 4.4): check
        # that at least two different analyzers win some MPL column.
    winners = set()
    for family, series in result.items():
        for index in range(len(series.mpl_nominals)):
            column = {
                label: values[index]
                for label, values in series.series.items()
                if not math.isnan(values[index])
            }
            if column:
                winners.add(max(column, key=column.get))
    assert len(winners) >= 2
