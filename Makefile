# Convenience targets for the repro project.

PYTHON ?= python
PROFILE ?= default

.PHONY: install test bench sweep results results-quick examples clean-cache

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Warm the sweep record cache over all cores (JOBS=N or REPRO_JOBS=N to pin).
sweep:
	$(PYTHON) -m repro.cli sweep --profile $(PROFILE) $(if $(JOBS),--jobs $(JOBS))

results:
	$(PYTHON) -m repro.experiments.generate --profile default --out results/default

results-quick:
	REPRO_PROFILE=quick $(PYTHON) -m repro.experiments.generate --profile quick --out results/quick

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/compare_detectors.py
	$(PYTHON) examples/phase_guided_optimizer.py
	$(PYTHON) examples/custom_workload.py
	$(PYTHON) examples/recurring_phases.py
	$(PYTHON) examples/multithreaded.py

clean-cache:
	rm -rf .trace_cache results
