#!/usr/bin/env python
"""Check that documentation cross-references resolve.

Scans ``README.md`` and ``docs/*.md`` for two kinds of references:

- Markdown links ``[text](target)`` with relative targets — the target
  file must exist (anchors are stripped; external ``http(s)://`` and
  ``mailto:`` links are skipped);
- inline-code path references like ``docs/serving.md`` or
  ``ROADMAP.md`` — the named file must exist, tried relative to the
  referencing file's directory and to the repository root.

Exit status 0 when everything resolves; 1 with one line per broken
reference otherwise.  Run from anywhere::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_PATH = re.compile(r"`([A-Za-z0-9_./-]+\.md)(?:#[A-Za-z0-9_-]+)?`")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def iter_references(path: Path) -> Iterator[Tuple[int, str, str]]:
    """Yield (line number, kind, target) references found in ``path``."""
    in_code_block = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for match in MARKDOWN_LINK.finditer(line):
            yield number, "link", match.group(1)
        for match in CODE_PATH.finditer(line):
            yield number, "code", match.group(1)


def resolve(source: Path, target: str) -> bool:
    """True when ``target`` (relative reference) names an existing file."""
    candidates = [source.parent / target, REPO_ROOT / target]
    return any(candidate.is_file() for candidate in candidates)


def check() -> List[str]:
    """All broken references, formatted one per entry."""
    problems: List[str] = []
    for path in doc_files():
        rel = path.relative_to(REPO_ROOT)
        for number, kind, raw_target in iter_references(path):
            if raw_target.startswith(EXTERNAL):
                continue
            target = raw_target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            if not resolve(path, target):
                problems.append(
                    f"{rel}:{number}: broken {kind} reference -> {raw_target}"
                )
    return problems


def main() -> int:
    problems = check()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"doc links OK across {len(doc_files())} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
