"""repro — a full reproduction of *Online Phase Detection Algorithms*
(Nagpurkar, Hind, Krintz, Sweeney, Rajan; CGO 2006).

The package provides:

- :mod:`repro.core` — the parameterizable online phase detection
  framework (window / model / analyzer policies) and detectors;
- :mod:`repro.baseline` — the offline oracle that identifies "true"
  phases from a dynamic call-loop trace under a minimum phase length;
- :mod:`repro.scoring` — the client- and machine-independent accuracy
  metric (correlation + boundary sensitivity + false positives);
- :mod:`repro.profiles` — branch traces, call-loop traces, trace I/O,
  and synthetic generators;
- :mod:`repro.vm` — MiniVM: an instrumented bytecode VM plus the
  MiniLang compiler, standing in for the paper's modified Jikes RVM;
- :mod:`repro.workloads` — eight benchmarks mirroring SPECjvm98 + JLex;
- :mod:`repro.comparators` — related-work detectors expressed in (or
  alongside) the framework;
- :mod:`repro.experiments` — the sweep harness and every table/figure
  generator from the paper's evaluation.

Quickstart::

    from repro import DetectorConfig, detect
    from repro.workloads import load_traces
    from repro.baseline import solve_baseline
    from repro.scoring import score_states

    trace, call_loop = load_traces("compress")
    result = detect(trace, DetectorConfig(cw_size=500, threshold=0.6))
    oracle = solve_baseline(call_loop, mpl=1000)
    print(score_states(result.states, oracle.states()))
"""

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectionResult,
    DetectorConfig,
    ModelKind,
    PhaseDetector,
    PhaseState,
    ResizePolicy,
    TrailingPolicy,
    detect,
)
from repro.core.engine import run_detector
from repro.baseline import BaselineSolution, solve_baseline
from repro.scoring import AccuracyScore, score_phases, score_states

__version__ = "1.0.0"

__all__ = [
    "AnalyzerKind",
    "AnchorPolicy",
    "DetectionResult",
    "DetectorConfig",
    "ModelKind",
    "PhaseDetector",
    "PhaseState",
    "ResizePolicy",
    "TrailingPolicy",
    "detect",
    "run_detector",
    "BaselineSolution",
    "solve_baseline",
    "AccuracyScore",
    "score_phases",
    "score_states",
    "__version__",
]
