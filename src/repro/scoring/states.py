"""State-sequence utilities.

A state sequence assigns each profile element P (in phase) or T
(transition); we represent it as a numpy boolean array with True = P.
Phases are the maximal P-runs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: A phase interval: profile elements ``start .. end - 1`` are P.
Interval = Tuple[int, int]


def phases_from_states(states: np.ndarray) -> List[Interval]:
    """Extract maximal P-runs from a boolean state array.

    Returns ``[(start, end), ...]`` in increasing order.
    """
    states = np.asarray(states, dtype=bool)
    if states.size == 0:
        return []
    padded = np.concatenate(([False], states, [False]))
    deltas = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(deltas == 1)
    ends = np.flatnonzero(deltas == -1)
    return list(zip(starts.tolist(), ends.tolist()))


def states_from_phases(phases: Sequence[Interval], num_elements: int) -> np.ndarray:
    """Build a boolean state array from phase intervals.

    Raises:
        ValueError: if intervals are out of range or malformed.
    """
    states = np.zeros(num_elements, dtype=bool)
    for start, end in phases:
        if not 0 <= start <= end <= num_elements:
            raise ValueError(
                f"phase ({start}, {end}) outside trace of {num_elements} elements"
            )
        states[start:end] = True
    return states


def state_string(states: np.ndarray) -> str:
    """Render a state array as a 'TTPPP...' string (for tests and debugging)."""
    return "".join("P" if flag else "T" for flag in np.asarray(states, dtype=bool))


def states_from_string(text: str) -> np.ndarray:
    """Parse a 'TTPPP...' string into a boolean state array."""
    cleaned = text.strip().upper()
    invalid = set(cleaned) - {"P", "T"}
    if invalid:
        raise ValueError(f"state string contains invalid characters {invalid}")
    return np.array([char == "P" for char in cleaned], dtype=bool)
