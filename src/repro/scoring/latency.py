"""Detection latency: how late an online detector reports phase starts.

Section 3.2: "the algorithms will always detect a phase after it has
started. The degree to which an algorithm is late depends on the window
size and is reflected in the correlation portion of the score."  The
combined score only reflects lateness *indirectly*; this module
measures it directly, per matched phase:

- **start lateness** — detected start minus baseline start (>= 0 by the
  matching constraints);
- **end lateness** — detected end minus baseline end (>= 0 likewise);
- both again for anchor-corrected boundaries, which can eliminate the
  start lateness entirely (Figure 8's subject).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.scoring.boundaries import match_phases
from repro.scoring.states import Interval


@dataclass(frozen=True)
class LatencyReport:
    """Lateness statistics over the matched phases of one comparison."""

    start_lateness: List[int]
    end_lateness: List[int]
    num_matched: int
    num_baseline_phases: int

    @property
    def mean_start_lateness(self) -> float:
        """Mean elements between true and detected phase start."""
        if not self.start_lateness:
            return 0.0
        return sum(self.start_lateness) / len(self.start_lateness)

    @property
    def mean_end_lateness(self) -> float:
        """Mean elements between true and detected phase end."""
        if not self.end_lateness:
            return 0.0
        return sum(self.end_lateness) / len(self.end_lateness)

    @property
    def max_start_lateness(self) -> int:
        return max(self.start_lateness, default=0)


def measure_latency(
    detected: Sequence[Interval],
    baseline: Sequence[Interval],
    num_elements: int,
) -> LatencyReport:
    """Per-matched-phase lateness of ``detected`` against ``baseline``.

    Only matched phases contribute (an unmatched baseline phase has no
    meaningful lateness); the report carries the match count so callers
    can weigh the statistics.

    Note the matching constraints force start lateness >= 0; with
    anchor-*corrected* intervals a detector may claim a start slightly
    before the baseline's, in which case the phase simply fails to
    match (and the correction overshoot shows up as a lower match
    count, not a negative lateness).
    """
    matching = match_phases(detected, baseline, num_elements)
    start_lateness: List[int] = []
    end_lateness: List[int] = []
    for d_index, b_index in matching.pairs:
        d_start, d_end = detected[d_index]
        b_start, b_end = baseline[b_index]
        start_lateness.append(d_start - b_start)
        end_lateness.append(d_end - b_end)
    return LatencyReport(
        start_lateness=start_lateness,
        end_lateness=end_lateness,
        num_matched=len(matching.pairs),
        num_baseline_phases=len(baseline),
    )
