"""The combined accuracy score (Section 3.2).

``score = correlation/2 + sensitivity/4 + (1 - falsePositives)/4``

Correlation weighs per-element agreement; sensitivity and false
positives weigh boundary matching; scores fall in [0, 1], higher is
more accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.scoring.boundaries import match_phases
from repro.scoring.states import Interval, phases_from_states, states_from_phases

CORRELATION_WEIGHT = 0.5
SENSITIVITY_WEIGHT = 0.25
FALSE_POSITIVE_WEIGHT = 0.25


@dataclass(frozen=True)
class AccuracyScore:
    """All components of one detector-vs-baseline comparison."""

    correlation: float
    sensitivity: float
    false_positives: float
    num_detected_phases: int
    num_baseline_phases: int
    num_matched_phases: int

    @property
    def score(self) -> float:
        """The combined weighted score in [0, 1]."""
        return (
            CORRELATION_WEIGHT * self.correlation
            + SENSITIVITY_WEIGHT * self.sensitivity
            + FALSE_POSITIVE_WEIGHT * (1.0 - self.false_positives)
        )

    def __str__(self) -> str:
        return (
            f"score={self.score:.4f} (corr={self.correlation:.4f}, "
            f"sens={self.sensitivity:.4f}, fp={self.false_positives:.4f}, "
            f"matched={self.num_matched_phases}/{self.num_baseline_phases})"
        )


def score_states(
    detected_states: np.ndarray,
    baseline_states: np.ndarray,
    detected_phases: Optional[Sequence[Interval]] = None,
    baseline_phases: Optional[Sequence[Interval]] = None,
) -> AccuracyScore:
    """Score a detector's state sequence against the baseline's.

    Args:
        detected_states: boolean array, True = P, one entry per element.
        baseline_states: same shape, from the oracle.
        detected_phases: optional phase intervals to use for boundary
            matching instead of the maximal P-runs of
            ``detected_states`` — Figure 8 passes anchor-corrected
            intervals here.
        baseline_phases: optional explicit baseline intervals (defaults
            to the P-runs of ``baseline_states``).

    Returns:
        The full :class:`AccuracyScore`.
    """
    detected_states = np.asarray(detected_states, dtype=bool)
    baseline_states = np.asarray(baseline_states, dtype=bool)
    if detected_states.shape != baseline_states.shape:
        raise ValueError(
            f"state arrays differ in length: {detected_states.size} vs "
            f"{baseline_states.size}"
        )
    num_elements = int(detected_states.size)
    if num_elements == 0:
        return AccuracyScore(1.0, 1.0, 0.0, 0, 0, 0)
    correlation = float(np.mean(detected_states == baseline_states))
    if detected_phases is None:
        detected_phases = phases_from_states(detected_states)
    if baseline_phases is None:
        baseline_phases = phases_from_states(baseline_states)
    matching = match_phases(detected_phases, baseline_phases, num_elements)
    return AccuracyScore(
        correlation=correlation,
        sensitivity=matching.sensitivity,
        false_positives=matching.false_positives,
        num_detected_phases=matching.num_detected_phases,
        num_baseline_phases=matching.num_baseline_phases,
        num_matched_phases=len(matching.pairs),
    )


def score_phases(
    detected_phases: Sequence[Interval],
    baseline_phases: Sequence[Interval],
    num_elements: int,
) -> AccuracyScore:
    """Score from phase-interval lists alone (states are reconstructed)."""
    detected_states = states_from_phases(detected_phases, num_elements)
    baseline_states = states_from_phases(baseline_phases, num_elements)
    return score_states(
        detected_states,
        baseline_states,
        detected_phases=detected_phases,
        baseline_phases=baseline_phases,
    )
