"""The combined accuracy score (Section 3.2).

``score = correlation/2 + sensitivity/4 + (1 - falsePositives)/4``

Correlation weighs per-element agreement; sensitivity and false
positives weigh boundary matching; scores fall in [0, 1], higher is
more accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.scoring.boundaries import (
    BaselinePhaseIndex,
    check_sorted_disjoint_arrays,
    match_phases,
)
from repro.scoring.states import Interval, phases_from_states, states_from_phases

CORRELATION_WEIGHT = 0.5
SENSITIVITY_WEIGHT = 0.25
FALSE_POSITIVE_WEIGHT = 0.25


@dataclass(frozen=True)
class AccuracyScore:
    """All components of one detector-vs-baseline comparison."""

    correlation: float
    sensitivity: float
    false_positives: float
    num_detected_phases: int
    num_baseline_phases: int
    num_matched_phases: int

    @property
    def score(self) -> float:
        """The combined weighted score in [0, 1]."""
        return (
            CORRELATION_WEIGHT * self.correlation
            + SENSITIVITY_WEIGHT * self.sensitivity
            + FALSE_POSITIVE_WEIGHT * (1.0 - self.false_positives)
        )

    def __str__(self) -> str:
        return (
            f"score={self.score:.4f} (corr={self.correlation:.4f}, "
            f"sens={self.sensitivity:.4f}, fp={self.false_positives:.4f}, "
            f"matched={self.num_matched_phases}/{self.num_baseline_phases})"
        )


def score_states(
    detected_states: np.ndarray,
    baseline_states: np.ndarray,
    detected_phases: Optional[Sequence[Interval]] = None,
    baseline_phases: Optional[Sequence[Interval]] = None,
) -> AccuracyScore:
    """Score a detector's state sequence against the baseline's.

    Args:
        detected_states: boolean array, True = P, one entry per element.
        baseline_states: same shape, from the oracle.
        detected_phases: optional phase intervals to use for boundary
            matching instead of the maximal P-runs of
            ``detected_states`` — Figure 8 passes anchor-corrected
            intervals here.
        baseline_phases: optional explicit baseline intervals (defaults
            to the P-runs of ``baseline_states``).

    Returns:
        The full :class:`AccuracyScore`.
    """
    detected_states = np.asarray(detected_states, dtype=bool)
    baseline_states = np.asarray(baseline_states, dtype=bool)
    if detected_states.shape != baseline_states.shape:
        raise ValueError(
            f"state arrays differ in length: {detected_states.size} vs "
            f"{baseline_states.size}"
        )
    num_elements = int(detected_states.size)
    if num_elements == 0:
        return AccuracyScore(1.0, 1.0, 0.0, 0, 0, 0)
    correlation = float(np.mean(detected_states == baseline_states))
    if detected_phases is None:
        detected_phases = phases_from_states(detected_states)
    if baseline_phases is None:
        baseline_phases = phases_from_states(baseline_states)
    matching = match_phases(detected_phases, baseline_phases, num_elements)
    return AccuracyScore(
        correlation=correlation,
        sensitivity=matching.sensitivity,
        false_positives=matching.false_positives,
        num_detected_phases=matching.num_detected_phases,
        num_baseline_phases=matching.num_baseline_phases,
        num_matched_phases=len(matching.pairs),
    )


def score_states_batch(
    states_matrix: np.ndarray,
    baseline_states_list: Sequence[np.ndarray],
    detected_phases: Optional[Sequence[Optional[Sequence[Interval]]]] = None,
    baseline_phases: Optional[Sequence[Optional[Sequence[Interval]]]] = None,
) -> List[List[AccuracyScore]]:
    """Score a bank of detector lanes against a set of baselines at once.

    Semantically equivalent to the nested loop
    ``[[score_states(states_matrix[i], base, ...) for base in ...] for i ...]``
    and bit-identical to it (pinned by
    ``tests/properties/test_batch_scoring.py``), but hoists the
    per-pair work: correlation becomes one bool-matrix reduction per
    baseline, detected phases are extracted once per lane, and each
    baseline's interval arrays are built once
    (:class:`~repro.scoring.boundaries.BaselinePhaseIndex`) instead of
    once per (lane, baseline) pair.

    Args:
        states_matrix: ``(lanes, N)`` boolean matrix, one detector state
            row per bank lane.
        baseline_states_list: per-baseline ``(N,)`` boolean arrays
            (typically one per nominal MPL).
        detected_phases: optional per-lane phase-interval overrides
            (``None`` entries fall back to the row's maximal P-runs) —
            anchor-corrected intervals go here, as in
            :func:`score_states`.
        baseline_phases: optional per-baseline interval overrides.

    Returns:
        ``scores[lane][baseline]`` — the full :class:`AccuracyScore`
        grid.
    """
    matrix = np.asarray(states_matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError(f"states matrix must be 2-D, got shape {matrix.shape}")
    num_lanes, num_elements = matrix.shape
    if detected_phases is not None and len(detected_phases) != num_lanes:
        raise ValueError(
            f"detected_phases has {len(detected_phases)} entries for "
            f"{num_lanes} lanes"
        )
    if baseline_phases is not None and len(baseline_phases) != len(
        baseline_states_list
    ):
        raise ValueError(
            f"baseline_phases has {len(baseline_phases)} entries for "
            f"{len(baseline_states_list)} baselines"
        )
    baselines = [np.asarray(base, dtype=bool) for base in baseline_states_list]
    for base in baselines:
        if base.shape != (num_elements,):
            raise ValueError(
                f"state arrays differ in length: {num_elements} vs {base.size}"
            )
    if num_elements == 0:
        empty = AccuracyScore(1.0, 1.0, 0.0, 0, 0, 0)
        return [[empty for _ in baselines] for _ in range(num_lanes)]

    # Each lane's phases are extracted, validated, and array-packed
    # once, then matched against every baseline via match_arrays.
    lane_intervals: List[np.ndarray] = []
    for lane in range(num_lanes):
        override = detected_phases[lane] if detected_phases is not None else None
        phases = phases_from_states(matrix[lane]) if override is None else override
        intervals = np.asarray(phases, dtype=np.int64).reshape(len(phases), 2)
        check_sorted_disjoint_arrays(intervals[:, 0], intervals[:, 1], "detected")
        lane_intervals.append(intervals)
    grid: List[List[AccuracyScore]] = [[] for _ in range(num_lanes)]
    for b_index, base in enumerate(baselines):
        # One bool-matrix reduction per baseline.  The agreement count
        # is an exact integer < 2**53, so dividing it by N reproduces
        # np.mean's float64 result bit-for-bit.
        agreement = (matrix == base[np.newaxis, :]).sum(axis=1, dtype=np.int64)
        override = baseline_phases[b_index] if baseline_phases is not None else None
        index = BaselinePhaseIndex(
            phases_from_states(base) if override is None else override,
            num_elements,
        )
        for lane in range(num_lanes):
            intervals = lane_intervals[lane]
            matching = index.match_arrays(intervals[:, 0], intervals[:, 1])
            grid[lane].append(
                AccuracyScore(
                    correlation=float(agreement[lane]) / num_elements,
                    sensitivity=matching.sensitivity,
                    false_positives=matching.false_positives,
                    num_detected_phases=matching.num_detected_phases,
                    num_baseline_phases=matching.num_baseline_phases,
                    num_matched_phases=len(matching.pairs),
                )
            )
    return grid


def score_phases(
    detected_phases: Sequence[Interval],
    baseline_phases: Sequence[Interval],
    num_elements: int,
) -> AccuracyScore:
    """Score from phase-interval lists alone (states are reconstructed)."""
    detected_states = states_from_phases(detected_phases, num_elements)
    baseline_states = states_from_phases(baseline_phases, num_elements)
    return score_states(
        detected_states,
        baseline_states,
        detected_phases=detected_phases,
        baseline_phases=baseline_phases,
    )
