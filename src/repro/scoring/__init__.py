"""Accuracy scoring metric (Section 3.2).

Compares an online detector's per-element P/T output against the
baseline solution:

- **correlation** — fraction of profile elements on which detector and
  oracle agree;
- **sensitivity** — fraction of oracle phase boundaries matched by a
  detected phase (three-constraint matching rule);
- **false positives** — fraction of detected boundaries that match no
  oracle boundary;
- **score** = correlation/2 + sensitivity/4 + (1 − false positives)/4.
"""

from repro.scoring.states import (
    phases_from_states,
    states_from_phases,
    state_string,
)
from repro.scoring.boundaries import (
    BaselinePhaseIndex,
    BoundaryMatching,
    match_phases,
)
from repro.scoring.metric import (
    AccuracyScore,
    score_phases,
    score_states,
    score_states_batch,
)
from repro.scoring.latency import LatencyReport, measure_latency

__all__ = [
    "phases_from_states",
    "states_from_phases",
    "state_string",
    "BaselinePhaseIndex",
    "BoundaryMatching",
    "match_phases",
    "AccuracyScore",
    "LatencyReport",
    "measure_latency",
    "score_phases",
    "score_states",
    "score_states_batch",
]
