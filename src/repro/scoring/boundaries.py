"""Phase-boundary matching (the three constraints of Section 3.2).

A detected phase ``D`` *qualifies* for baseline phase ``B`` when

1. ``B.start <= D.start < B.end`` — the detected phase starts inside
   the baseline phase (online detectors are always late), and
2. ``B.end <= D.end < next(B).start`` — the detected phase ends at or
   after the baseline phase ends, but before the next baseline phase
   starts (``next(B).start`` is the trace length for the last phase).

Constraint 3 resolves ties: among qualifying detected phases, the one
whose boundaries are closest to ``B``'s matches.  A matched phase
contributes two matched boundaries (its start and its end).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scoring.states import Interval


@dataclass(frozen=True)
class BoundaryMatching:
    """The outcome of matching detected phases against baseline phases."""

    #: Pairs (detected index, baseline index) for matched phases.
    pairs: Tuple[Tuple[int, int], ...]
    num_detected_phases: int
    num_baseline_phases: int

    @property
    def num_matched_boundaries(self) -> int:
        """Each matched phase matches its start and end boundary."""
        return 2 * len(self.pairs)

    @property
    def num_baseline_boundaries(self) -> int:
        return 2 * self.num_baseline_phases

    @property
    def num_detected_boundaries(self) -> int:
        return 2 * self.num_detected_phases

    @property
    def sensitivity(self) -> float:
        """matchedBoundaries / baselineBoundaries (1.0 when nothing to find)."""
        if self.num_baseline_boundaries == 0:
            return 1.0
        return self.num_matched_boundaries / self.num_baseline_boundaries

    @property
    def false_positives(self) -> float:
        """unmatchedDetectedBoundaries / detectedBoundaries (0.0 when none)."""
        if self.num_detected_boundaries == 0:
            return 0.0
        return (
            self.num_detected_boundaries - self.num_matched_boundaries
        ) / self.num_detected_boundaries


def match_phases(
    detected: Sequence[Interval],
    baseline: Sequence[Interval],
    num_elements: int,
) -> BoundaryMatching:
    """Match detected phases to baseline phases per the three constraints.

    Both inputs must be sorted, disjoint interval lists.

    Returns:
        A :class:`BoundaryMatching` with the one-to-one match pairs.
    """
    _check_sorted_disjoint(detected, "detected")
    _check_sorted_disjoint(baseline, "baseline")

    if not baseline or not detected:
        return BoundaryMatching((), len(detected), len(baseline))

    baseline_starts = [b[0] for b in baseline]
    # Candidate lists: baseline index -> [(distance, detected index)]
    candidates: Dict[int, List[Tuple[int, int]]] = {}
    for d_index, (d_start, d_end) in enumerate(detected):
        b_index = _containing_phase(baseline_starts, baseline, d_start)
        if b_index is None:
            continue
        b_start, b_end = baseline[b_index]
        next_start = (
            baseline[b_index + 1][0] if b_index + 1 < len(baseline) else num_elements + 1
        )
        if not b_end <= d_end < next_start:
            continue
        distance = (d_start - b_start) + (d_end - b_end)
        candidates.setdefault(b_index, []).append((distance, d_index))

    pairs: List[Tuple[int, int]] = []
    for b_index, options in candidates.items():
        options.sort()
        pairs.append((options[0][1], b_index))
    pairs.sort()
    return BoundaryMatching(tuple(pairs), len(detected), len(baseline))


class BaselinePhaseIndex:
    """Precomputed matcher for one baseline phase list.

    A sweep scores every detector config against the same per-MPL
    baseline, so the baseline side of :func:`match_phases` — validation
    plus the start/end/next-start arrays — is hoisted here and built
    once per MPL instead of once per (config, MPL) pair.  :meth:`match`
    then runs the three constraints as vectorized array ops and returns
    a :class:`BoundaryMatching` identical (pairs, counts, and raised
    errors alike) to ``match_phases(detected, baseline, num_elements)``.
    """

    __slots__ = ("phases", "num_elements", "_starts", "_ends", "_next_starts")

    def __init__(self, baseline: Sequence[Interval], num_elements: int) -> None:
        _check_sorted_disjoint(baseline, "baseline")
        self.phases: Tuple[Interval, ...] = tuple(
            (int(start), int(end)) for start, end in baseline
        )
        self.num_elements = int(num_elements)
        count = len(self.phases)
        self._starts = np.fromiter(
            (p[0] for p in self.phases), dtype=np.int64, count=count
        )
        self._ends = np.fromiter(
            (p[1] for p in self.phases), dtype=np.int64, count=count
        )
        # next(B).start for the qualification upper bound; the scalar
        # matcher uses num_elements + 1 past the last baseline phase.
        self._next_starts = np.append(self._starts[1:], self.num_elements + 1)

    def match(self, detected: Sequence[Interval]) -> BoundaryMatching:
        """Match ``detected`` against this baseline (see :func:`match_phases`)."""
        intervals = np.asarray(detected, dtype=np.int64).reshape(len(detected), 2)
        check_sorted_disjoint_arrays(intervals[:, 0], intervals[:, 1], "detected")
        return self.match_arrays(intervals[:, 0], intervals[:, 1])

    def match_arrays(
        self, d_starts: np.ndarray, d_ends: np.ndarray
    ) -> BoundaryMatching:
        """:meth:`match` over pre-validated start/end arrays.

        The batched scorer validates and array-packs each lane's
        detected phases once (:func:`check_sorted_disjoint_arrays`),
        then matches them against every baseline through this
        entry point — skipping the per-pair validation re-run.
        """
        num_detected = int(d_starts.size)
        num_baseline = len(self.phases)
        if not num_baseline or not num_detected:
            return BoundaryMatching((), num_detected, num_baseline)
        # Constraint 1: the containing baseline phase, if any.
        b_idx = np.searchsorted(self._starts, d_starts, side="right") - 1
        in_range = b_idx >= 0
        safe = np.where(in_range, b_idx, 0)
        contained = in_range & (d_starts < self._ends[safe])
        # Constraint 2: ends at/after B.end, before next(B).start.
        qualified = (
            contained
            & (self._ends[safe] <= d_ends)
            & (d_ends < self._next_starts[safe])
        )
        if not qualified.any():
            return BoundaryMatching((), num_detected, num_baseline)
        cand_d = np.flatnonzero(qualified)
        cand_b = b_idx[cand_d]
        distance = (d_starts[cand_d] - self._starts[cand_b]) + (
            d_ends[cand_d] - self._ends[cand_b]
        )
        # Constraint 3: per baseline phase, the qualifying detected
        # phase with minimal (distance, detected index) — the same
        # tie-break ``options.sort()`` applies in the scalar matcher.
        order = np.lexsort((cand_d, distance, cand_b))
        ordered_b = cand_b[order]
        first = np.ones(order.size, dtype=bool)
        first[1:] = ordered_b[1:] != ordered_b[:-1]
        winners = order[first]
        pairs = sorted(
            (int(cand_d[w]), int(b)) for w, b in zip(winners, ordered_b[first])
        )
        return BoundaryMatching(tuple(pairs), num_detected, num_baseline)


def _containing_phase(
    starts: List[int], baseline: Sequence[Interval], position: int
) -> Optional[int]:
    """Index of the baseline phase whose [start, end) contains ``position``."""
    index = bisect.bisect_right(starts, position) - 1
    if index < 0:
        return None
    start, end = baseline[index]
    if start <= position < end:
        return index
    return None


def _check_sorted_disjoint(phases: Sequence[Interval], label: str) -> None:
    previous_end = -1
    for start, end in phases:
        if start > end:
            raise ValueError(f"{label} phase ({start}, {end}) is malformed")
        if start < previous_end:
            raise ValueError(f"{label} phases overlap or are unsorted at ({start}, {end})")
        previous_end = end


def check_sorted_disjoint_arrays(
    starts: np.ndarray, ends: np.ndarray, label: str
) -> None:
    """Vectorized :func:`_check_sorted_disjoint` with identical errors.

    Reports the *first* offending interval, checking malformedness
    before overlap at that interval, exactly as the scalar loop does.
    """
    if starts.size == 0:
        return
    malformed = starts > ends
    overlapping = starts < np.concatenate(([-1], ends[:-1]))
    bad = malformed | overlapping
    if bad.any():
        index = int(np.argmax(bad))
        start, end = int(starts[index]), int(ends[index])
        if malformed[index]:
            raise ValueError(f"{label} phase ({start}, {end}) is malformed")
        raise ValueError(f"{label} phases overlap or are unsorted at ({start}, {end})")
