"""Phase-boundary matching (the three constraints of Section 3.2).

A detected phase ``D`` *qualifies* for baseline phase ``B`` when

1. ``B.start <= D.start < B.end`` — the detected phase starts inside
   the baseline phase (online detectors are always late), and
2. ``B.end <= D.end < next(B).start`` — the detected phase ends at or
   after the baseline phase ends, but before the next baseline phase
   starts (``next(B).start`` is the trace length for the last phase).

Constraint 3 resolves ties: among qualifying detected phases, the one
whose boundaries are closest to ``B``'s matches.  A matched phase
contributes two matched boundaries (its start and its end).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scoring.states import Interval


@dataclass(frozen=True)
class BoundaryMatching:
    """The outcome of matching detected phases against baseline phases."""

    #: Pairs (detected index, baseline index) for matched phases.
    pairs: Tuple[Tuple[int, int], ...]
    num_detected_phases: int
    num_baseline_phases: int

    @property
    def num_matched_boundaries(self) -> int:
        """Each matched phase matches its start and end boundary."""
        return 2 * len(self.pairs)

    @property
    def num_baseline_boundaries(self) -> int:
        return 2 * self.num_baseline_phases

    @property
    def num_detected_boundaries(self) -> int:
        return 2 * self.num_detected_phases

    @property
    def sensitivity(self) -> float:
        """matchedBoundaries / baselineBoundaries (1.0 when nothing to find)."""
        if self.num_baseline_boundaries == 0:
            return 1.0
        return self.num_matched_boundaries / self.num_baseline_boundaries

    @property
    def false_positives(self) -> float:
        """unmatchedDetectedBoundaries / detectedBoundaries (0.0 when none)."""
        if self.num_detected_boundaries == 0:
            return 0.0
        return (
            self.num_detected_boundaries - self.num_matched_boundaries
        ) / self.num_detected_boundaries


def match_phases(
    detected: Sequence[Interval],
    baseline: Sequence[Interval],
    num_elements: int,
) -> BoundaryMatching:
    """Match detected phases to baseline phases per the three constraints.

    Both inputs must be sorted, disjoint interval lists.

    Returns:
        A :class:`BoundaryMatching` with the one-to-one match pairs.
    """
    _check_sorted_disjoint(detected, "detected")
    _check_sorted_disjoint(baseline, "baseline")

    if not baseline or not detected:
        return BoundaryMatching((), len(detected), len(baseline))

    baseline_starts = [b[0] for b in baseline]
    # Candidate lists: baseline index -> [(distance, detected index)]
    candidates: Dict[int, List[Tuple[int, int]]] = {}
    for d_index, (d_start, d_end) in enumerate(detected):
        b_index = _containing_phase(baseline_starts, baseline, d_start)
        if b_index is None:
            continue
        b_start, b_end = baseline[b_index]
        next_start = (
            baseline[b_index + 1][0] if b_index + 1 < len(baseline) else num_elements + 1
        )
        if not b_end <= d_end < next_start:
            continue
        distance = (d_start - b_start) + (d_end - b_end)
        candidates.setdefault(b_index, []).append((distance, d_index))

    pairs: List[Tuple[int, int]] = []
    for b_index, options in candidates.items():
        options.sort()
        pairs.append((options[0][1], b_index))
    pairs.sort()
    return BoundaryMatching(tuple(pairs), len(detected), len(baseline))


def _containing_phase(
    starts: List[int], baseline: Sequence[Interval], position: int
) -> Optional[int]:
    """Index of the baseline phase whose [start, end) contains ``position``."""
    index = bisect.bisect_right(starts, position) - 1
    if index < 0:
        return None
    start, end = baseline[index]
    if start <= position < end:
        return index
    return None


def _check_sorted_disjoint(phases: Sequence[Interval], label: str) -> None:
    previous_end = -1
    for start, end in phases:
        if start > end:
            raise ValueError(f"{label} phase ({start}, {end}) is malformed")
        if start < previous_end:
            raise ValueError(f"{label} phases overlap or are unsorted at ({start}, {end})")
        previous_end = end
