"""The baseline solution: MPL-driven phase identification (Section 3.1).

Given the CRI forest of a run and a client-specified minimum phase
length (MPL), the oracle selects the flat set of phases:

1. CRIs are merged by adjacency (done in :mod:`repro.baseline.cri`).
2. Nest selection is innermost-first: if any descendant of a CRI
   qualifies as a phase, the descendants win and the CRI itself is not
   a phase ("smaller phases represented by executions of one or more
   nested loops"); otherwise the CRI is a phase iff it is repetitive
   and at least MPL profile elements long.
3. Everything not inside a selected phase is transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.baseline.cri import CRIKind, RepetitiveInstance, extract_cris
from repro.baseline.tree import StaticId, build_repetition_tree
from repro.profiles.callloop import CallLoopTrace


@dataclass(frozen=True)
class PhaseInterval:
    """One oracle phase: profile elements ``start .. end - 1`` are in phase."""

    start: int
    end: int
    static_id: StaticId
    kind: CRIKind

    @property
    def length(self) -> int:
        """Number of profile elements in the phase."""
        return self.end - self.start


class BaselineSolution:
    """The oracle's answer for one (run, MPL) pair."""

    def __init__(
        self,
        phases: Sequence[PhaseInterval],
        num_elements: int,
        mpl: int,
        name: str = "",
    ) -> None:
        self.phases: List[PhaseInterval] = sorted(phases, key=lambda p: p.start)
        self.num_elements = num_elements
        self.mpl = mpl
        self.name = name
        self._check_disjoint()

    def _check_disjoint(self) -> None:
        previous_end = 0
        for phase in self.phases:
            if phase.start < previous_end:
                raise ValueError(f"overlapping oracle phases at {phase}")
            if phase.end > self.num_elements or phase.start < 0:
                raise ValueError(f"phase {phase} outside trace of {self.num_elements}")
            previous_end = phase.end

    @property
    def num_phases(self) -> int:
        """Number of oracle phases."""
        return len(self.phases)

    @property
    def elements_in_phase(self) -> int:
        """Total number of profile elements inside some phase."""
        return sum(phase.length for phase in self.phases)

    @property
    def percent_in_phase(self) -> float:
        """Percentage of profile elements that are in phase (0-100)."""
        if self.num_elements == 0:
            return 0.0
        return 100.0 * self.elements_in_phase / self.num_elements

    def states(self) -> np.ndarray:
        """Per-element states: boolean array, True = in phase (P)."""
        in_phase = np.zeros(self.num_elements, dtype=bool)
        for phase in self.phases:
            in_phase[phase.start : phase.end] = True
        return in_phase

    def __repr__(self) -> str:
        return (
            f"BaselineSolution({self.name!r}, mpl={self.mpl}, "
            f"phases={self.num_phases}, in_phase={self.percent_in_phase:.1f}%)"
        )


def solve_baseline(
    call_loop: CallLoopTrace,
    mpl: int,
    num_elements: Optional[int] = None,
    name: str = "",
) -> BaselineSolution:
    """Run the oracle for ``call_loop`` with minimum phase length ``mpl``.

    Args:
        call_loop: the run's call-loop trace.
        mpl: minimum phase length in profile elements (must be positive).
        num_elements: branch-trace length; defaults to the trace's
            recorded branch count.
        name: label carried through to the solution.

    Returns:
        The :class:`BaselineSolution` with the flat phase set.
    """
    if mpl <= 0:
        raise ValueError(f"mpl must be positive, got {mpl}")
    total = call_loop.num_branches if num_elements is None else num_elements
    forest = build_repetition_tree(call_loop)
    cris = extract_cris(forest)
    phases: List[PhaseInterval] = []
    for cri in cris:
        phases.extend(_select(cri, mpl))
    return BaselineSolution(
        phases, num_elements=total, mpl=mpl, name=name or call_loop.name
    )


def solve_outermost_loops(
    call_loop: CallLoopTrace,
    num_elements: Optional[int] = None,
    name: str = "",
) -> BaselineSolution:
    """The alternative §3.1 validated against: outermost loops as phases.

    Selects every outermost repetitive CRI (no MPL, no nest descent).
    The paper reports that this yields a very small number of large,
    coarse-grained phases that cannot be subdivided — the ablation bench
    compares it with the MPL-driven selection.
    """
    total = call_loop.num_branches if num_elements is None else num_elements
    forest = build_repetition_tree(call_loop)
    phases: List[PhaseInterval] = []

    def outermost(cri: RepetitiveInstance) -> None:
        if cri.is_repetitive():
            phases.append(
                PhaseInterval(
                    start=cri.start, end=cri.end, static_id=cri.static_id, kind=cri.kind
                )
            )
            return
        for child in cri.children:
            outermost(child)

    for cri in extract_cris(forest):
        outermost(cri)
    return BaselineSolution(phases, num_elements=total, mpl=1, name=name or call_loop.name)


def _select(cri: RepetitiveInstance, mpl: int) -> List[PhaseInterval]:
    """Innermost-first phase selection for one CRI subtree."""
    inner: List[PhaseInterval] = []
    for child in cri.children:
        inner.extend(_select(child, mpl))
    if inner:
        return inner
    if cri.is_repetitive() and cri.length >= mpl:
        return [
            PhaseInterval(start=cri.start, end=cri.end, static_id=cri.static_id, kind=cri.kind)
        ]
    return []
