"""Hierarchical phase structures.

Section 2: "In practice, the profile elements may form a hierarchy of
phases, such as what one might expect from a nested-loop structure.
Ideally, an online phase detector will find this hierarchy so that the
detector's client can exploit it."  The paper's detectors emit flat
structures; the *oracle*, however, has the full nesting tree — this
module exposes it.

A :class:`HierarchicalPhase` is a repetitive instance of at least MPL
elements whose ancestors and descendants of the same kind are kept
rather than collapsed: clients can pick the granularity per decision
(e.g. specialize at the outer level, prefetch at the inner).  The
leaves of the hierarchy are exactly the flat baseline solution's phases
(verified by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.baseline.cri import RepetitiveInstance, extract_cris
from repro.baseline.oracle import BaselineSolution, PhaseInterval
from repro.baseline.tree import StaticId, build_repetition_tree
from repro.profiles.callloop import CallLoopTrace


@dataclass
class HierarchicalPhase:
    """One node of the phase hierarchy."""

    start: int
    end: int
    static_id: StaticId
    kind: str
    depth: int
    children: List["HierarchicalPhase"] = field(default_factory=list)

    @property
    def length(self) -> int:
        return self.end - self.start

    def walk(self) -> Iterator["HierarchicalPhase"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["HierarchicalPhase"]:
        """Innermost phases below (or at) this node."""
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def __repr__(self) -> str:
        return (
            f"HierarchicalPhase([{self.start}, {self.end}), depth={self.depth}, "
            f"children={len(self.children)})"
        )


@dataclass
class PhaseHierarchy:
    """The full nested phase structure of one run at one MPL."""

    roots: List[HierarchicalPhase]
    num_elements: int
    mpl: int
    name: str = ""

    def walk(self) -> Iterator[HierarchicalPhase]:
        for root in self.roots:
            yield from root.walk()

    def leaves(self) -> List[HierarchicalPhase]:
        """The innermost phases — the flat baseline solution's phases."""
        result: List[HierarchicalPhase] = []
        for root in self.roots:
            result.extend(root.leaves())
        return result

    def max_depth(self) -> int:
        """Deepest nesting level (0 when the hierarchy is empty)."""
        return max((node.depth + 1 for node in self.walk()), default=0)

    def at_depth(self, depth: int) -> List[HierarchicalPhase]:
        """All phases at one nesting level."""
        return [node for node in self.walk() if node.depth == depth]

    def flat_solution(self) -> BaselineSolution:
        """Collapse to the flat (innermost-first) baseline solution."""
        phases = [
            PhaseInterval(
                start=leaf.start,
                end=leaf.end,
                static_id=leaf.static_id,
                kind=_kind_of(leaf.kind),
            )
            for leaf in self.leaves()
        ]
        return BaselineSolution(
            phases, num_elements=self.num_elements, mpl=self.mpl, name=self.name
        )


def _kind_of(kind_value: str):
    from repro.baseline.cri import CRIKind

    return CRIKind(kind_value)


def solve_hierarchy(
    call_loop: CallLoopTrace,
    mpl: int,
    num_elements: Optional[int] = None,
    name: str = "",
) -> PhaseHierarchy:
    """Build the nested phase structure for ``call_loop`` at ``mpl``.

    Every repetitive CRI of at least ``mpl`` elements becomes a node;
    qualifying descendants become its children (intervening
    non-qualifying levels are skipped).
    """
    if mpl <= 0:
        raise ValueError(f"mpl must be positive, got {mpl}")
    total = call_loop.num_branches if num_elements is None else num_elements
    forest = build_repetition_tree(call_loop)
    roots: List[HierarchicalPhase] = []
    for cri in extract_cris(forest):
        roots.extend(_collect(cri, mpl, depth=0))
    return PhaseHierarchy(
        roots=roots, num_elements=total, mpl=mpl, name=name or call_loop.name
    )


def _collect(cri: RepetitiveInstance, mpl: int, depth: int) -> List[HierarchicalPhase]:
    if cri.is_repetitive() and cri.length >= mpl:
        node = HierarchicalPhase(
            start=cri.start,
            end=cri.end,
            static_id=cri.static_id,
            kind=cri.kind.value,
            depth=depth,
        )
        for child in cri.children:
            node.children.extend(_collect(child, mpl, depth + 1))
        return [node]
    collected: List[HierarchicalPhase] = []
    for child in cri.children:
        collected.extend(_collect(child, mpl, depth))
    return collected
