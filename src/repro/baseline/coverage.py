"""Baseline coverage statistics (Table 1(b) and the §3.1 validation study).

For each benchmark and MPL value, the paper reports the number of oracle
phases and the percentage of profile elements that are in phase.  This
module computes exactly those rows, plus the per-phase length
distribution used by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.baseline.oracle import BaselineSolution, solve_baseline
from repro.profiles.callloop import CallLoopTrace


@dataclass(frozen=True)
class BaselineCoverage:
    """One Table 1(b) cell pair: phase count and branch coverage for an MPL."""

    mpl: int
    num_phases: int
    percent_in_phase: float
    mean_phase_length: float
    median_phase_length: float
    max_phase_length: int

    @staticmethod
    def of(solution: BaselineSolution) -> "BaselineCoverage":
        """Summarize a solved baseline."""
        lengths = [phase.length for phase in solution.phases]
        return BaselineCoverage(
            mpl=solution.mpl,
            num_phases=solution.num_phases,
            percent_in_phase=solution.percent_in_phase,
            mean_phase_length=float(np.mean(lengths)) if lengths else 0.0,
            median_phase_length=float(np.median(lengths)) if lengths else 0.0,
            max_phase_length=max(lengths) if lengths else 0,
        )


def coverage_for_mpls(
    call_loop: CallLoopTrace,
    mpls: Sequence[int],
    name: str = "",
) -> Dict[int, BaselineCoverage]:
    """Solve the baseline for each MPL and summarize coverage.

    Returns a mapping ``mpl -> BaselineCoverage`` in the order given.
    """
    result: Dict[int, BaselineCoverage] = {}
    for mpl in mpls:
        solution = solve_baseline(call_loop, mpl, name=name)
        result[mpl] = BaselineCoverage.of(solution)
    return result
