"""The baseline ("oracle") solution of Section 3.1.

Given the dynamic call-loop trace of a run, the oracle identifies the
periods of the execution that are *in phase* — complete repetitive
instances (loop executions, recursive executions, and merged runs of
temporally-adjacent same-identifier instances) of at least a
client-specified minimum phase length (MPL) — and marks everything else
as transition.  Online detectors are scored against this solution.
"""

from repro.baseline.tree import RepetitionNode, build_repetition_tree
from repro.baseline.cri import (
    CRIKind,
    RepetitiveInstance,
    extract_cris,
    merge_adjacent,
)
from repro.baseline.oracle import (
    BaselineSolution,
    PhaseInterval,
    solve_baseline,
    solve_outermost_loops,
)
from repro.baseline.coverage import BaselineCoverage, coverage_for_mpls
from repro.baseline.hierarchy import (
    HierarchicalPhase,
    PhaseHierarchy,
    solve_hierarchy,
)

__all__ = [
    "RepetitionNode",
    "build_repetition_tree",
    "CRIKind",
    "RepetitiveInstance",
    "extract_cris",
    "merge_adjacent",
    "BaselineSolution",
    "PhaseInterval",
    "solve_baseline",
    "solve_outermost_loops",
    "BaselineCoverage",
    "coverage_for_mpls",
    "HierarchicalPhase",
    "PhaseHierarchy",
    "solve_hierarchy",
]
