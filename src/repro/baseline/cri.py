"""Complete Repetitive Instances (CRIs) and adjacency merging.

A CRI is a candidate phase: the span of an entire loop execution (all
iterations), of a recursive execution (rooted at a recursion root), or
of a *merged run* of temporally adjacent instances with the same static
identifier (Section 3.1).  Two same-identifier instances merge when the
distance between them is at most one profile element — which is exactly
what separates perfectly nested loop executions (the outer loop's
back-edge branch) and back-to-back invocations of the same method.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baseline.tree import RepetitionNode, StaticId

#: Maximum number of profile elements between two same-id instances for
#: them to be combined (Section 3.1: "if the distance ... is one").
MERGE_DISTANCE = 1


class CRIKind(enum.Enum):
    """How a CRI came to be repetitive."""

    LOOP = "loop"                    # one complete loop execution
    RECURSION = "recursion"          # a recursive execution (root)
    MERGED_LOOP = "merged-loop"      # adjacent executions of the same loop
    MERGED_METHOD = "merged-method"  # adjacent invocations of the same method
    METHOD = "method"                # a single non-recursive invocation


@dataclass(frozen=True)
class RepetitiveInstance:
    """One CRI: a candidate phase interval over profile elements."""

    static_id: StaticId
    start: int
    end: int
    kind: CRIKind
    count: int = 1          # number of instances merged into this CRI
    children: Tuple["RepetitiveInstance", ...] = ()

    @property
    def length(self) -> int:
        """Number of profile elements the CRI covers."""
        return self.end - self.start

    def is_repetitive(self) -> bool:
        """Whether this CRI on its own represents repetition.

        Loop executions and recursive executions are inherently
        repetitive; a merged method run needs at least two invocations;
        a single non-recursive method invocation is not repetition.
        """
        if self.kind in (CRIKind.LOOP, CRIKind.RECURSION, CRIKind.MERGED_LOOP):
            return True
        if self.kind == CRIKind.MERGED_METHOD:
            return self.count >= 2
        return False

    def __repr__(self) -> str:
        return (
            f"CRI({self.kind.value}:{self.static_id[0]}{self.static_id[1]}, "
            f"[{self.start}, {self.end}), n={self.count})"
        )


def extract_cris(roots: Sequence[RepetitionNode]) -> List[RepetitiveInstance]:
    """Convert a repetition forest into a forest of merged CRIs.

    Returns the top-level CRIs in execution order.  Each CRI keeps its
    (merged, recursively processed) children so the oracle can apply the
    MPL-driven nest selection.
    """
    return merge_adjacent([_node_to_cri(root) for root in roots])


def _node_to_cri(node: RepetitionNode) -> RepetitiveInstance:
    children = merge_adjacent([_node_to_cri(child) for child in node.children])
    if node.kind == "l":
        kind = CRIKind.LOOP
    elif node.is_recursion_root:
        kind = CRIKind.RECURSION
    else:
        kind = CRIKind.METHOD
    return RepetitiveInstance(
        static_id=node.static_id,
        start=node.start,
        end=node.end,
        kind=kind,
        count=1,
        children=tuple(children),
    )


def merge_adjacent(
    siblings: Sequence[RepetitiveInstance],
    max_distance: int = MERGE_DISTANCE,
) -> List[RepetitiveInstance]:
    """Merge runs of same-identifier siblings separated by <= ``max_distance``.

    Only *consecutive* siblings merge: an intervening instance with a
    different identifier breaks the run even if it is tiny.  The merged
    CRI spans from the first instance's start to the last one's end.

    The run's members are **not** kept as children: per the paper's
    perfect-nest rule, instances separated by at most one element are
    never phases on their own, so nest selection must descend straight
    to the members' own children (the next nesting level).  Those child
    lists are concatenated and re-merged across the member boundary.
    """
    merged: List[RepetitiveInstance] = []
    for cri in siblings:
        previous = merged[-1] if merged else None
        if (
            previous is not None
            and previous.static_id == cri.static_id
            and cri.start - previous.end <= max_distance
        ):
            merged[-1] = _combine(previous, cri)
        else:
            merged.append(cri)
    return merged


def _combine(left: RepetitiveInstance, right: RepetitiveInstance) -> RepetitiveInstance:
    if left.kind in (CRIKind.LOOP, CRIKind.MERGED_LOOP):
        kind = CRIKind.MERGED_LOOP
    elif left.kind == CRIKind.RECURSION or right.kind == CRIKind.RECURSION:
        # Adjacent recursive executions: still a recursion CRI.
        kind = CRIKind.RECURSION
    else:
        kind = CRIKind.MERGED_METHOD
    children = merge_adjacent(list(left.children) + list(right.children))
    return RepetitiveInstance(
        static_id=left.static_id,
        start=left.start,
        end=right.end,
        kind=kind,
        count=left.count + right.count,
        children=tuple(children),
    )
