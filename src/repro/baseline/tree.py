"""Build the dynamic repetition tree from a call-loop trace.

Loop executions and method invocations nest properly, so the call-loop
events of a run form a forest of intervals over branch-trace positions.
Each node records its static identifier, its ``[start, end)`` span in
profile elements, and its children in execution order.  The oracle's
CRI extraction and nest selection both walk this tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.profiles.callloop import CallLoopTrace, EventKind

#: Static identifier: ("l", loop_id) for loops, ("m", method_id) for methods.
StaticId = Tuple[str, int]


@dataclass
class RepetitionNode:
    """One dynamic execution of a repetition construct (loop or method).

    ``start``/``end`` are branch-trace offsets: the execution covers
    profile elements ``start .. end - 1``.
    """

    static_id: StaticId
    start: int
    end: int = -1
    children: List["RepetitionNode"] = field(default_factory=list)
    is_recursion_root: bool = False

    @property
    def kind(self) -> str:
        """``"l"`` for a loop execution, ``"m"`` for a method invocation."""
        return self.static_id[0]

    @property
    def length(self) -> int:
        """Number of profile elements covered by this execution."""
        return self.end - self.start

    def walk(self) -> Iterator["RepetitionNode"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        tag = "R" if self.is_recursion_root else ""
        return (
            f"RepetitionNode({self.static_id[0]}{self.static_id[1]}{tag}, "
            f"[{self.start}, {self.end}), children={len(self.children)})"
        )


def build_repetition_tree(trace: CallLoopTrace) -> List[RepetitionNode]:
    """Build the repetition forest for ``trace``.

    Returns the list of root nodes (normally a single node for the entry
    function).  Recursion roots are marked per the paper's definition:
    the outermost activation of a method that is re-invoked (directly or
    transitively) during that activation.

    Raises:
        ValueError: if entries/exits are mismatched.
    """
    roots: List[RepetitionNode] = []
    stack: List[RepetitionNode] = []
    # Depth of activation per method id, for recursion-root marking.
    method_depth: dict = {}
    outermost_node: dict = {}

    def _open(node: RepetitionNode) -> None:
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)

    for event in trace:
        if event.kind == EventKind.METHOD_ENTRY:
            node = RepetitionNode(static_id=("m", event.ident), start=event.time)
            depth = method_depth.get(event.ident, 0)
            if depth == 0:
                outermost_node[event.ident] = node
            else:
                outermost_node[event.ident].is_recursion_root = True
            method_depth[event.ident] = depth + 1
            _open(node)
        elif event.kind == EventKind.LOOP_ENTRY:
            _open(RepetitionNode(static_id=("l", event.ident), start=event.time))
        elif event.kind == EventKind.METHOD_EXIT:
            node = _close(stack, ("m", event.ident), event.time)
            method_depth[event.ident] = method_depth.get(event.ident, 1) - 1
        else:  # LOOP_EXIT
            _close(stack, ("l", event.ident), event.time)

    if stack:
        # Tolerate truncated traces (e.g. `halt` inside nested calls):
        # close everything at the final branch count.
        final = trace.num_branches
        while stack:
            stack.pop().end = final
    return roots


def _close(stack: List[RepetitionNode], static_id: StaticId, time: int) -> RepetitionNode:
    if not stack:
        raise ValueError(f"exit event for {static_id} with empty stack")
    node = stack.pop()
    if node.static_id != static_id:
        raise ValueError(
            f"mismatched exit: expected {node.static_id}, got {static_id} at time {time}"
        )
    node.end = time
    return node


def count_nodes(roots: List[RepetitionNode]) -> int:
    """Total node count in a repetition forest."""
    return sum(1 for root in roots for _ in root.walk())
