"""The parameter sweep with an on-disk record cache.

A sweep evaluates a set of grid points over every benchmark trace and
scores each run at every MPL.  Detector runs are the expensive part, so
completed records are appended to a JSONL cache keyed by (benchmark
fingerprint, grid point, MPL set); re-running a sweep with a warm cache
only aggregates.  Grid points are evaluated in single-pass
:class:`~repro.core.bank.DetectorBank` batches per trace (each trace is
decoded and chunked once per batch, not once per grid point); pass
``bank=False`` to fall back to one detector pass per grid point —
identical records either way (see ``docs/sweep.md``).

Evaluation runs serially in-process by default (``jobs=1``) or fans out
over a process pool (``jobs>1`` or ``jobs=None`` with ``REPRO_JOBS``
set) via :mod:`repro.experiments.parallel`.  Both modes append cache
rows in the same deterministic order, so the cache file is
byte-identical either way; see ``docs/sweep.md`` for the lifecycle and
``docs/formats.md`` for the cache schema.

Every :meth:`Sweep.ensure` that touches the on-disk cache also writes a
run manifest next to it (``sweep-<profile>.manifest.json``) recording
the config fingerprint, environment, per-worker accounting and a
metrics snapshot — see :mod:`repro.obs.manifest` and
``docs/observability.md``.  Progress lines go to the ``repro.sweep``
logger (the CLI's ``--verbose``/``--quiet`` control the level).
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config_space import (
    ConfigSpec,
    MPL_NOMINALS_EXTENDED,
    SuiteProfile,
    paper_grid,
)
from repro.experiments.runner import BaselineSet, SweepRecord, evaluate_bank
from repro.obs.manifest import build_manifest, manifest_path_for, write_manifest
from repro.obs.metrics import GLOBAL_METRICS, MetricsRegistry
from repro.workloads.suite import DEFAULT_CACHE_DIR, load_suite, workload, workload_names

logger = logging.getLogger("repro.sweep")

_CacheKey = Tuple[str, str, Tuple, int]


def _spec_key(spec: ConfigSpec) -> Tuple:
    return spec.key()


def grid_fingerprint(specs: Sequence[ConfigSpec], mpl_nominals: Sequence[int]) -> str:
    """A short stable hash of the evaluated grid (specs x MPLs).

    Recorded in the run manifest so a manifest is checkable against the
    grid that produced it: same specs and MPLs -> same fingerprint,
    regardless of benchmark subset or worker count.
    """
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(repr(_spec_key(spec)).encode("utf-8"))
    digest.update(repr(tuple(mpl_nominals)).encode("utf-8"))
    return digest.hexdigest()[:12]


class Sweep:
    """Evaluate grid points over the benchmark suite, with caching.

    Args:
        profile: the suite profile (scale + grid density).
        cache_dir: where traces and sweep records live (defaults to the
            suite's trace cache directory).
        benchmarks: subset of workload names (default: all eight).
        mpl_nominals: nominal MPL values to score at (default: the
            extended set including 200K, so one sweep feeds every
            table and figure).
        jobs: default worker count for :meth:`ensure` (1 = serial
            in-process evaluation; >1 fans out over a process pool).
        tracer: optional span tracer (see :mod:`repro.obs.trace`); when
            set, each :meth:`ensure` becomes a ``sweep`` span with one
            ``sweep.job`` child per (benchmark, missing-specs) unit and
            ``bank.run``/``bank.kernel`` grandchildren under those.
            Serial evaluation only — parallel workers live in other
            processes and are profiled via worker metrics instead.
    """

    def __init__(
        self,
        profile: SuiteProfile,
        cache_dir: Optional[Path] = None,
        benchmarks: Optional[Sequence[str]] = None,
        mpl_nominals: Sequence[int] = MPL_NOMINALS_EXTENDED,
        jobs: int = 1,
        bank: bool = True,
        kernels: Optional[bool] = None,
        batched: Optional[bool] = None,
        mmap: Optional[bool] = None,
        store: bool = True,
        tracer=None,
    ) -> None:
        self.profile = profile
        self.cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        self.benchmarks = list(benchmarks) if benchmarks is not None else workload_names()
        self.mpl_nominals = list(mpl_nominals)
        self.jobs = jobs
        #: Persist results through the content-addressed chunk store and
        #: mirror the cache into the SQLite result database (see
        #: :mod:`repro.experiments.store`).  False restores the legacy
        #: ordered-delivery parallel path and skips SQLite entirely —
        #: the store-equivalence escape hatch (identical cache bytes).
        self.store = store
        #: Evaluate grid points in single-pass DetectorBank batches per
        #: trace (False: one run_detector pass per grid point — slower,
        #: identical records; kept as the bank-equivalence escape hatch).
        self.bank = bank
        #: Array-native kernel selection for eligible configurations
        #: (None: the REPRO_KERNELS env default; False: the
        #: kernel-equivalence escape hatch — identical records).
        self.kernels = kernels
        #: Batched bank advancer for vectorized members (None: on unless
        #: REPRO_BANK_BATCHED=0; False: independent per-lane vectorized
        #: calls — identical records; the batch-equivalence escape hatch).
        self.batched = batched
        #: Map cached traces and dense-code sidecars read-only instead of
        #: heap-copying them (None: on unless REPRO_MMAP=0; False: the
        #: mmap-equivalence escape hatch — identical records).
        self.mmap = mmap
        #: Optional span tracer, passed down the serial evaluation path.
        self.tracer = tracer
        #: Per-sweep metrics registry; snapshotted into the run manifest.
        self.metrics = MetricsRegistry()
        with self.metrics.time("sweep.load_suite_seconds"):
            self._traces = load_suite(scale=profile.workload_scale,
                                      cache_dir=self.cache_dir,
                                      names=self.benchmarks,
                                      mmap=self.mmap)
        self._baselines: Dict[str, BaselineSet] = {}
        self._records: Dict[_CacheKey, SweepRecord] = {}
        self._fingerprints: Dict[str, str] = {}
        self._db = None
        self._last_chunk_stats: Optional[Dict[str, int]] = None
        self._cache_path = self.cache_dir / f"sweep-{profile.name}.jsonl"
        self._load_cache()

    # -- cache ------------------------------------------------------------------

    def _fingerprint(self, benchmark: str) -> str:
        cached = self._fingerprints.get(benchmark)
        if cached is None:
            cached = workload(benchmark).fingerprint(self.profile.workload_scale)
            self._fingerprints[benchmark] = cached
        return cached

    def _load_cache(self) -> None:
        if not self._cache_path.exists():
            return
        loaded = self.metrics.counter("sweep.cache_rows_loaded")
        stale = self.metrics.counter("sweep.cache_rows_stale")
        torn = self.metrics.counter("sweep.cache_rows_torn")
        fingerprints = {name: self._fingerprint(name) for name in self.benchmarks}
        with self.metrics.time("sweep.cache_load_seconds"):
            with self._cache_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        torn.inc()  # tolerate a torn tail from an interrupted run
                        continue
                    fingerprint = row.pop("fingerprint", "")
                    record = SweepRecord.from_row(row)
                    if fingerprints.get(record.benchmark) != fingerprint:
                        stale.inc()  # workload changed; discard stale rows
                        continue
                    loaded.inc()
                    self._records[self._record_key(record)] = record

    def _record_key(self, record: SweepRecord) -> _CacheKey:
        spec_key = (
            record.family,
            record.cw_nominal,
            record.model,
            record.analyzer,
            record.anchor,
            record.resize,
        )
        return (record.benchmark, self.profile.name, spec_key, record.mpl_nominal)

    def _append_cache(self, records: Iterable[SweepRecord]) -> None:
        from repro.experiments.store import cache_line

        self.cache_dir.mkdir(parents=True, exist_ok=True)
        with self._cache_path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(cache_line(record, self._fingerprint(record.benchmark)))

    # -- evaluation ----------------------------------------------------------------

    @property
    def cache_path(self) -> Path:
        """The JSONL record cache file backing this sweep."""
        return self._cache_path

    @property
    def db_path(self) -> Path:
        """The SQLite result database next to the cache (store mode)."""
        return self.cache_dir / f"sweep-{self.profile.name}.sqlite"

    def result_db(self):
        """The sweep's :class:`~repro.experiments.store.ResultDB` (lazy)."""
        if self._db is None:
            from repro.experiments.store import ResultDB

            self._db = ResultDB(self.db_path)
        return self._db

    def _benchmark_weights(self) -> Dict[str, float]:
        """Trace length per benchmark — the progress/ETA weighting.

        Benchmarks differ in trace length by large factors, so an ETA
        extrapolated from configs/s alone misestimates badly on skewed
        grids; weighting remaining configs by their benchmark's trace
        length fixes that (the lengths are already in memory from the
        suite cache).
        """
        return {
            name: float(len(traces[0])) for name, traces in self._traces.items()
        }

    @property
    def traces(self) -> Dict[str, Tuple]:
        """benchmark name -> (branch trace, call-loop trace)."""
        return self._traces

    def baselines(self, benchmark: str) -> BaselineSet:
        """The solved baseline set for ``benchmark`` (computed lazily)."""
        if benchmark not in self._baselines:
            _, call_loop = self._traces[benchmark]
            self._baselines[benchmark] = BaselineSet(
                call_loop, self.profile, self.mpl_nominals, name=benchmark
            )
        return self._baselines[benchmark]

    def _missing(self, benchmark: str, specs: Sequence[ConfigSpec]) -> List[ConfigSpec]:
        return [
            spec
            for spec in specs
            if any(
                (benchmark, self.profile.name, _spec_key(spec), nominal)
                not in self._records
                for nominal in self.mpl_nominals
            )
        ]

    def _span(self, name: str, parent=None, **attrs):
        if self.tracer is None:
            return nullcontext(None)
        return self.tracer.span(name, parent=parent, **attrs)

    def _evaluate_serial(
        self,
        work: Sequence[Tuple[str, List[ConfigSpec]]],
        progress: bool,
        trace_parent=None,
    ) -> int:
        evaluated = 0
        for benchmark, missing in work:
            branch_trace, _ = self._traces[benchmark]
            baselines = self.baselines(benchmark)
            started = time.perf_counter()
            with self._span(
                "sweep.job", parent=trace_parent,
                benchmark=benchmark, specs=len(missing),
            ) as job_span:
                fresh: List[SweepRecord] = evaluate_bank(
                    branch_trace, baselines, missing, self.profile,
                    bank=self.bank, kernels=self.kernels,
                    batched=self.batched,
                    tracer=self.tracer, trace_parent=job_span,
                    metrics=self.metrics,
                )
            for record in fresh:
                self._records[self._record_key(record)] = record
            self._append_cache(fresh)
            evaluated += len(fresh)
            elapsed = time.perf_counter() - started
            self.metrics.timing("sweep.benchmark_seconds").observe(elapsed)
            self.metrics.histogram("sweep.job_seconds").observe(elapsed)
            self.metrics.counter("sweep.records_evaluated").inc(len(fresh))
            if progress:
                logger.info(
                    "[%s] %s: %d configs in %.1fs",
                    self.profile.name, benchmark, len(missing), elapsed,
                )
        return evaluated

    def _evaluate_parallel(
        self,
        work: Sequence[Tuple[str, List[ConfigSpec]]],
        jobs: int,
        progress: bool,
        profiling: bool = False,
    ) -> Tuple[int, List[Dict], Dict[int, Dict], List[Dict]]:
        """Fan ``work`` out; returns (evaluated, worker stats, metrics, profiles).

        The legacy ordered-delivery path: workers ship record rows back
        over the pipe and the parent appends them in submission order.
        Kept as the ``store=False`` escape hatch and the bench baseline;
        the default parallel path is :meth:`_evaluate_store`.
        """
        from repro.experiments.parallel import ParallelSweepExecutor, resolve_jobs

        jobs = resolve_jobs(jobs)
        if jobs <= 1:
            return self._evaluate_serial(work, progress), [], {}, []
        executor = ParallelSweepExecutor(
            self.profile, self.cache_dir, self.mpl_nominals, jobs=jobs,
            profiling=profiling, bank=self.bank, kernels=self.kernels,
            batched=self.batched, mmap=self.mmap,
        )
        evaluated = 0

        def on_chunk(
            benchmark: str, records: List[SweepRecord], benchmark_finished: bool
        ) -> None:
            nonlocal evaluated
            for record in records:
                self._records[self._record_key(record)] = record
            self._append_cache(records)
            evaluated += len(records)
            if benchmark_finished:
                self.metrics.counter("sweep.benchmarks_finished").inc()

        executor.run(
            work, on_chunk, progress=progress,
            benchmark_weights=self._benchmark_weights(),
        )
        self.metrics.counter("sweep.records_evaluated").inc(evaluated)
        return (
            evaluated,
            executor.worker_stats,
            executor.worker_metrics,
            executor.chunk_profiles,
        )

    def _evaluate_store(
        self,
        work: Sequence[Tuple[str, List[ConfigSpec]]],
        jobs: int,
        progress: bool,
        profiling: bool = False,
    ) -> Tuple[int, List[Dict], Dict[int, Dict], List[Dict]]:
        """Barrier-free parallel evaluation through the chunk store.

        Workers write content-addressed chunk files themselves as they
        finish — in whatever order — and the parent only collects
        accounting.  Chunks already present (a resumed run) are reused
        without evaluation; chunks leased by another live executor are
        skipped and awaited.  Once every planned chunk exists, a
        deterministic compaction folds them into the JSONL cache in
        plan order (byte-identical to a serial sweep) and syncs the
        SQLite result database.  See :mod:`repro.experiments.store`.
        """
        from repro.experiments.parallel import ParallelSweepExecutor, resolve_jobs
        from repro.experiments.store import ChunkStore, compact_chunks

        jobs = resolve_jobs(jobs)
        if jobs <= 1:
            return self._evaluate_serial(work, progress), [], {}, []
        executor = ParallelSweepExecutor(
            self.profile, self.cache_dir, self.mpl_nominals, jobs=jobs,
            profiling=profiling, bank=self.bank, kernels=self.kernels,
            batched=self.batched, mmap=self.mmap,
        )
        store = ChunkStore(self.cache_dir, self.profile.name)
        fingerprints = {benchmark: self._fingerprint(benchmark) for benchmark, _ in work}
        chunk_stats = executor.run_store(
            work, store, fingerprints, progress=progress,
            benchmark_weights=self._benchmark_weights(),
        )
        summary = compact_chunks(
            store, executor.planned, self._cache_path,
            db=self.result_db(), metrics=self.metrics,
        )
        chunk_stats["folded"] = summary["folded"]
        chunk_stats["already_compacted"] = summary["skipped"]
        self._last_chunk_stats = chunk_stats
        # The cache now holds every planned row (including chunks other
        # executors evaluated or folded); re-reading it is the one
        # code path that is correct no matter who appended what.
        self._load_cache()
        evaluated = chunk_stats["evaluated_records"]
        self.metrics.counter("sweep.records_evaluated").inc(evaluated)
        self.metrics.counter("sweep.chunks_planned").inc(chunk_stats["planned"])
        self.metrics.counter("sweep.chunks_reused").inc(chunk_stats["reused"])
        self.metrics.counter("sweep.chunks_evaluated").inc(chunk_stats["evaluated"])
        return (
            evaluated,
            executor.worker_stats,
            executor.worker_metrics,
            executor.chunk_profiles,
        )

    @property
    def manifest_path(self) -> Path:
        """Where :meth:`ensure` writes the run manifest."""
        return manifest_path_for(self._cache_path)

    def ensure(
        self,
        specs: Optional[Sequence[ConfigSpec]] = None,
        progress: bool = False,
        jobs: Optional[int] = None,
        profiling: bool = False,
        manifest: bool = True,
    ) -> List[SweepRecord]:
        """Evaluate any missing (benchmark, spec) pairs; return all records.

        With a warm cache this is pure lookup.  ``progress`` logs a
        one-line-per-benchmark trace (``repro.sweep`` logger, INFO).
        ``jobs`` overrides the sweep's default worker count for this
        call: 1 evaluates serially in-process, >1 fans work out over a
        process pool (see :mod:`repro.experiments.parallel`); both
        produce the same records and a byte-identical cache file.
        ``profiling`` wraps each parallel chunk in a
        :class:`~repro.obs.profiling.ChunkProfiler`.  Unless
        ``manifest=False``, a run manifest is written next to the cache
        describing this call (see :mod:`repro.obs.manifest`).
        """
        specs = list(specs) if specs is not None else paper_grid(self.profile)
        jobs = self.jobs if jobs is None else jobs
        started = time.perf_counter()
        work = [
            (benchmark, missing)
            for benchmark in self.benchmarks
            if (missing := self._missing(benchmark, specs))
        ]
        evaluated = 0
        workers: List[Dict] = []
        worker_metrics: Dict[int, Dict] = {}
        chunk_profiles: List[Dict] = []
        self._last_chunk_stats = None
        if work:
            with self._span(
                "sweep", profile=self.profile.name, benchmarks=len(work),
            ) as sweep_span:
                if jobs is not None and jobs <= 1:
                    evaluated = self._evaluate_serial(
                        work, progress, trace_parent=sweep_span
                    )
                else:
                    evaluate = (
                        self._evaluate_store if self.store
                        else self._evaluate_parallel
                    )
                    evaluated, workers, worker_metrics, chunk_profiles = (
                        evaluate(work, jobs, progress, profiling)
                    )
        if self.store:
            # Keep the SQLite mirror current no matter which path ran
            # (incremental: a warm-cache call parses nothing).
            with self.metrics.time("store.db_sync_seconds"):
                self.result_db().sync_from_cache(
                    self._cache_path, self.profile.name
                )
        elapsed = time.perf_counter() - started
        if self.store and evaluated:
            self.result_db().record_run(
                profile=self.profile.name,
                grid_fingerprint=grid_fingerprint(specs, self.mpl_nominals),
                jobs=jobs if jobs is not None else 1,
                elapsed_seconds=elapsed,
                records_evaluated=evaluated,
                records_total=len(self._records),
            )
        wanted: List[SweepRecord] = []
        for benchmark in self.benchmarks:
            for spec in specs:
                for nominal in self.mpl_nominals:
                    key = (benchmark, self.profile.name, _spec_key(spec), nominal)
                    record = self._records.get(key)
                    if record is not None:
                        wanted.append(record)
        if manifest:
            self._write_manifest(
                specs, jobs, elapsed, evaluated,
                workers, worker_metrics, chunk_profiles,
            )
        return wanted

    def _write_manifest(
        self,
        specs: Sequence[ConfigSpec],
        jobs: Optional[int],
        elapsed: float,
        evaluated: int,
        workers: List[Dict],
        worker_metrics: Dict[int, Dict],
        chunk_profiles: List[Dict],
    ) -> Path:
        """Write this run's manifest next to the cache (atomic)."""
        # One registry view of the run: the sweep's own instruments, the
        # parent process's I/O counters, then each worker's latest
        # cumulative snapshot (cumulative -> merge once per worker).
        merged = MetricsRegistry.merged(
            [self.metrics.snapshot(), GLOBAL_METRICS.snapshot()]
            + [worker_metrics[pid] for pid in sorted(worker_metrics)]
        )
        document = build_manifest(
            profile=self.profile.name,
            benchmarks=self.benchmarks,
            fingerprints={name: self._fingerprint(name) for name in self.benchmarks},
            grid_fingerprint=grid_fingerprint(specs, self.mpl_nominals),
            mpl_nominals=self.mpl_nominals,
            jobs=jobs if jobs is not None else 1,
            elapsed_seconds=elapsed,
            records_evaluated=evaluated,
            records_total=len(self._records),
            workers=workers,
            metrics=merged.snapshot(),
            chunk_profiles=chunk_profiles,
            chunks=self._last_chunk_stats,
        )
        return write_manifest(document, self.manifest_path)

    def records(self) -> List[SweepRecord]:
        """All records currently cached (no evaluation)."""
        return list(self._records.values())
