"""The parameter sweep with an on-disk record cache.

A sweep evaluates a set of grid points over every benchmark trace and
scores each run at every MPL.  Detector runs are the expensive part, so
completed records are appended to a JSONL cache keyed by (benchmark
fingerprint, grid point, MPL set); re-running a sweep with a warm cache
only aggregates.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config_space import (
    ConfigSpec,
    MPL_NOMINALS_EXTENDED,
    SuiteProfile,
    paper_grid,
)
from repro.experiments.runner import BaselineSet, SweepRecord, evaluate_spec
from repro.workloads.suite import DEFAULT_CACHE_DIR, load_suite, workload, workload_names

_CacheKey = Tuple[str, str, Tuple, int]


def _spec_key(spec: ConfigSpec) -> Tuple:
    return (
        spec.family,
        spec.cw_nominal,
        spec.model.value,
        spec.analyzer_label(),
        spec.anchor.value,
        spec.resize.value,
    )


class Sweep:
    """Evaluate grid points over the benchmark suite, with caching.

    Args:
        profile: the suite profile (scale + grid density).
        cache_dir: where traces and sweep records live (defaults to the
            suite's trace cache directory).
        benchmarks: subset of workload names (default: all eight).
        mpl_nominals: nominal MPL values to score at (default: the
            extended set including 200K, so one sweep feeds every
            table and figure).
    """

    def __init__(
        self,
        profile: SuiteProfile,
        cache_dir: Optional[Path] = None,
        benchmarks: Optional[Sequence[str]] = None,
        mpl_nominals: Sequence[int] = MPL_NOMINALS_EXTENDED,
    ) -> None:
        self.profile = profile
        self.cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        self.benchmarks = list(benchmarks) if benchmarks is not None else workload_names()
        self.mpl_nominals = list(mpl_nominals)
        self._traces = load_suite(scale=profile.workload_scale, cache_dir=self.cache_dir,
                                  names=self.benchmarks)
        self._baselines: Dict[str, BaselineSet] = {}
        self._records: Dict[_CacheKey, SweepRecord] = {}
        self._cache_path = self.cache_dir / f"sweep-{profile.name}.jsonl"
        self._load_cache()

    # -- cache ------------------------------------------------------------------

    def _fingerprint(self, benchmark: str) -> str:
        return workload(benchmark).fingerprint(self.profile.workload_scale)

    def _load_cache(self) -> None:
        if not self._cache_path.exists():
            return
        fingerprints = {name: self._fingerprint(name) for name in self.benchmarks}
        with self._cache_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # tolerate a torn tail from an interrupted run
                fingerprint = row.pop("fingerprint", "")
                record = SweepRecord.from_row(row)
                if fingerprints.get(record.benchmark) != fingerprint:
                    continue  # workload changed; discard stale rows
                self._records[self._record_key(record)] = record

    def _record_key(self, record: SweepRecord) -> _CacheKey:
        spec_key = (
            record.family,
            record.cw_nominal,
            record.model,
            record.analyzer,
            record.anchor,
            record.resize,
        )
        return (record.benchmark, self.profile.name, spec_key, record.mpl_nominal)

    def _append_cache(self, records: Iterable[SweepRecord]) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        with self._cache_path.open("a", encoding="utf-8") as handle:
            for record in records:
                row = record.to_row()
                row["fingerprint"] = self._fingerprint(record.benchmark)
                handle.write(json.dumps(row) + "\n")

    # -- evaluation ----------------------------------------------------------------

    @property
    def traces(self) -> Dict[str, Tuple]:
        """benchmark name -> (branch trace, call-loop trace)."""
        return self._traces

    def baselines(self, benchmark: str) -> BaselineSet:
        """The solved baseline set for ``benchmark`` (computed lazily)."""
        if benchmark not in self._baselines:
            _, call_loop = self._traces[benchmark]
            self._baselines[benchmark] = BaselineSet(
                call_loop, self.profile, self.mpl_nominals, name=benchmark
            )
        return self._baselines[benchmark]

    def ensure(
        self,
        specs: Optional[Sequence[ConfigSpec]] = None,
        progress: bool = False,
    ) -> List[SweepRecord]:
        """Evaluate any missing (benchmark, spec) pairs; return all records.

        With a warm cache this is pure lookup.  ``progress`` prints a
        one-line-per-benchmark trace to stderr for long runs.
        """
        specs = list(specs) if specs is not None else paper_grid(self.profile)
        wanted: List[SweepRecord] = []
        for benchmark in self.benchmarks:
            missing = [
                spec
                for spec in specs
                if any(
                    (benchmark, self.profile.name, _spec_key(spec), nominal)
                    not in self._records
                    for nominal in self.mpl_nominals
                )
            ]
            if missing:
                branch_trace, _ = self._traces[benchmark]
                baselines = self.baselines(benchmark)
                started = time.time()
                fresh: List[SweepRecord] = []
                for spec in missing:
                    fresh.extend(
                        evaluate_spec(branch_trace, baselines, spec, self.profile)
                    )
                for record in fresh:
                    self._records[self._record_key(record)] = record
                self._append_cache(fresh)
                if progress:
                    print(
                        f"[sweep:{self.profile.name}] {benchmark}: "
                        f"{len(missing)} configs in {time.time() - started:.1f}s",
                        file=sys.stderr,
                    )
            for spec in specs:
                for nominal in self.mpl_nominals:
                    key = (benchmark, self.profile.name, _spec_key(spec), nominal)
                    record = self._records.get(key)
                    if record is not None:
                        wanted.append(record)
        return wanted

    def records(self) -> List[SweepRecord]:
        """All records currently cached (no evaluation)."""
        return list(self._records.values())
