"""ASCII timelines: visualize state sequences and phase structure.

The paper's companion work visualizes phased behavior; for a terminal
library the equivalent is a downsampled strip per state sequence, plus
side-by-side comparison of oracle and detector output with a difference
row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

PHASE_CHAR = "#"
TRANSITION_CHAR = "."
DIFF_CHAR = "x"
AGREE_CHAR = " "


def strip(states: np.ndarray, width: int = 100) -> str:
    """Downsample a boolean state array to a ``width``-character strip.

    Each character covers ``ceil(n / width)`` elements and shows ``#``
    when the majority is in phase.
    """
    states = np.asarray(states, dtype=bool)
    if states.size == 0:
        return ""
    if width <= 0:
        raise ValueError("width must be positive")
    bucket = max(1, -(-states.size // width))
    chars: List[str] = []
    for start in range(0, states.size, bucket):
        window = states[start : start + bucket]
        chars.append(PHASE_CHAR if window.mean() >= 0.5 else TRANSITION_CHAR)
    return "".join(chars)


def difference_strip(
    detected: np.ndarray, baseline: np.ndarray, width: int = 100
) -> str:
    """A strip marking where detector and oracle disagree (majority-wise)."""
    detected = np.asarray(detected, dtype=bool)
    baseline = np.asarray(baseline, dtype=bool)
    if detected.shape != baseline.shape:
        raise ValueError("state arrays differ in length")
    if detected.size == 0:
        return ""
    disagreement = detected != baseline
    bucket = max(1, -(-detected.size // width))
    chars: List[str] = []
    for start in range(0, detected.size, bucket):
        window = disagreement[start : start + bucket]
        chars.append(DIFF_CHAR if window.mean() >= 0.5 else AGREE_CHAR)
    return "".join(chars)


def comparison(
    rows: Dict[str, np.ndarray],
    width: int = 100,
    diff_against: Optional[str] = None,
) -> str:
    """Render labelled strips, aligned, optionally with a difference row.

    Args:
        rows: label -> boolean state array (all the same length).
        width: strip width in characters.
        diff_against: a label in ``rows``; every other row gets a
            disagreement strip against it.
    """
    if not rows:
        return ""
    lengths = {states.shape[0] if hasattr(states, "shape") else len(states)
               for states in rows.values()}
    if len(lengths) > 1:
        raise ValueError(f"state arrays differ in length: {sorted(lengths)}")
    label_width = max(len(label) for label in rows)
    if diff_against is not None:
        diff_labels = [len("^diff " + label) for label in rows if label != diff_against]
        if diff_labels:
            label_width = max(label_width, max(diff_labels))
    lines = [
        f"{label.ljust(label_width)}  {strip(states, width)}"
        for label, states in rows.items()
    ]
    if diff_against is not None:
        reference = rows[diff_against]
        for label, states in rows.items():
            if label == diff_against:
                continue
            lines.append(
                f"{('^diff ' + label).ljust(label_width)}  "
                f"{difference_strip(states, reference, width)}".rstrip()
            )
    return "\n".join(lines)


def phase_ruler(num_elements: int, phases: Sequence, width: int = 100) -> str:
    """A strip marking phase *boundaries* (starts and ends) with ``|``."""
    if num_elements <= 0:
        return ""
    bucket = max(1, -(-num_elements // width))
    marks = [" "] * (-(-num_elements // bucket))
    for interval in phases:
        start, end = interval[0], interval[1]
        for position in (start, max(start, end - 1)):
            index = min(position // bucket, len(marks) - 1)
            marks[index] = "|"
    return "".join(marks)
