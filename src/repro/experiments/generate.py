"""One-shot regeneration of every table and figure.

Runs (or loads from cache) the full parameter sweep for a profile and
renders Tables 1(a)-2(b) and Figures 4-8 as text, optionally writing
them to a results directory.  Usable as a library or from the command
line::

    python -m repro.experiments.generate --profile default --out results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.experiments import figures, tables
from repro.experiments.config_space import (
    PROFILES,
    SuiteProfile,
    family_grid,
    paper_grid,
)
from repro.experiments.sweep import Sweep


def generate_all(
    profile: SuiteProfile,
    out_dir: Optional[Path] = None,
    progress: bool = False,
    sweep: Optional[Sweep] = None,
    jobs: Optional[int] = None,
    families: Optional[Sequence[str]] = None,
) -> Dict[str, str]:
    """Render every table/figure for ``profile``.

    Returns a mapping of artifact name (e.g. ``"figure_4"``) to rendered
    text.  With ``out_dir`` set, each artifact is also written to
    ``<out_dir>/<name>.txt``.  ``jobs`` selects the sweep worker count
    (``None`` keeps the sweep's own default; >1 runs multiprocess).
    ``families`` adds the named detector families' grid points
    (``docs/detectors.md``) and the cross-family table/figure.
    """
    if sweep is None:
        sweep = Sweep(profile)
    specs = paper_grid(profile)
    if families:
        specs = specs + family_grid(profile, tuple(families))
    records = sweep.ensure(specs, progress=progress, jobs=jobs)

    artifacts: Dict[str, str] = {}
    artifacts["table_1a"] = tables.table_1a(sweep).render()
    artifacts["table_1b"] = tables.table_1b(sweep).render()
    # Every artifact derivable from records alone goes through the same
    # renderer the SQLite-backed `repro results render` uses, so the two
    # paths cannot drift.
    artifacts.update(render_from_records(records, sweep.benchmarks, profile))
    if families:
        artifacts["table_families"] = figures.table_families(
            records, sweep.benchmarks
        ).render()
        artifacts["figure_families"] = figures.figure_families(records).render()

    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, text in artifacts.items():
            (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return artifacts


def render_from_records(
    records,
    benchmarks,
    profile: SuiteProfile,
    out_dir: Optional[Path] = None,
) -> Dict[str, str]:
    """Render every record-derived artifact from an in-memory record list.

    The subset of :func:`generate_all` that needs no traces or sweep
    object — Tables 2(a)/2(b), Figures 4-8 and the per-benchmark detail
    tables — so ``repro results render`` can regenerate them straight
    from the SQLite result database (``docs/api.md``).  Identical text
    to :func:`generate_all`'s for the same records.
    """
    artifacts: Dict[str, str] = {}
    artifacts["table_2a"] = tables.table_2a(records, benchmarks).render()
    artifacts["table_2b"] = tables.table_2b(records, benchmarks).render()
    artifacts["figure_4"] = figures.figure_4(records).render()
    artifacts["figure_5"] = figures.figure_5(records, benchmarks).render()
    for family, series in figures.figure_6(records, profile).items():
        artifacts[f"figure_6_{family}"] = series.render()
    artifacts["figure_7a"] = figures.figure_7a(records, benchmarks).render()
    artifacts["figure_7b"] = figures.figure_7b(records, benchmarks).render()
    artifacts["figure_8"] = figures.figure_8(records).render()

    from repro.experiments.detail import per_benchmark_best, per_benchmark_winner

    for family in ("constant", "adaptive"):
        artifacts[f"detail_best_{family}"] = per_benchmark_best(
            records, benchmarks, family
        ).render()
    artifacts["detail_winner_policy"] = per_benchmark_winner(
        records, benchmarks, "family", "constant", "adaptive"
    ).render()
    artifacts["detail_winner_model"] = per_benchmark_winner(
        records, benchmarks, "model", "unweighted", "weighted"
    ).render()

    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, text in artifacts.items():
            (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return artifacts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every table and figure of the paper."
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="default",
        help="suite profile (scale + grid density)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory for rendered .txt artifacts"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress sweep progress on stderr"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="sweep worker processes (default: REPRO_JOBS, else all cores)",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="NAME",
        help="detector families to add (cross-family table/figure)",
    )
    args = parser.parse_args(argv)
    from repro.experiments.parallel import resolve_jobs
    from repro.obs.logsetup import setup_logging

    setup_logging(verbosity=-1 if args.quiet else 0)
    artifacts = generate_all(
        PROFILES[args.profile], out_dir=args.out, progress=not args.quiet,
        jobs=resolve_jobs(args.jobs), families=args.families,
    )
    for name in sorted(artifacts):
        print(artifacts[name])
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
