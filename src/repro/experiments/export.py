"""Sweep-record export: CSV for external analysis.

The sweep's JSONL cache is an implementation detail; for analysis in
pandas/R/spreadsheets, export the records to CSV (and read them back,
for round-trip workflows).
"""

from __future__ import annotations

import csv
from dataclasses import fields
from pathlib import Path
from typing import List, Sequence, Union

from repro.experiments.runner import SweepRecord

PathLike = Union[str, Path]

_FIELDS = [f.name for f in fields(SweepRecord)]
_INT_FIELDS = {
    "cw_nominal",
    "mpl_nominal",
    "num_detected_phases",
    "num_baseline_phases",
}
_FLOAT_FIELDS = {
    "score",
    "correlation",
    "sensitivity",
    "false_positives",
    "corrected_score",
}


def records_to_csv(records: Sequence[SweepRecord], path: PathLike) -> None:
    """Write sweep records to ``path`` as CSV with a header row."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(record.to_row())


def records_from_csv(path: PathLike) -> List[SweepRecord]:
    """Read sweep records written by :func:`records_to_csv`.

    Raises:
        ValueError: if the header doesn't match the record schema.
    """
    path = Path(path)
    records: List[SweepRecord] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or set(reader.fieldnames) != set(_FIELDS):
            raise ValueError(
                f"{path}: header {reader.fieldnames} does not match "
                f"SweepRecord fields"
            )
        for row in reader:
            typed = {}
            for key, value in row.items():
                if key in _INT_FIELDS:
                    typed[key] = int(value)
                elif key in _FLOAT_FIELDS:
                    typed[key] = float(value)
                else:
                    typed[key] = value
            records.append(SweepRecord(**typed))
    return records
