"""Table generators: Tables 1(a), 1(b), 2(a), and 2(b).

Each generator returns a small result object holding the rows plus a
``render()`` producing the paper-shaped text table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.baseline.coverage import BaselineCoverage
from repro.experiments.aggregate import (
    best_by,
    cw_at_most_half,
    cw_equal,
    cw_larger,
    cw_smaller,
    family_default,
    mean,
    percent_improvement,
)
from repro.experiments.config_space import MPL_NOMINALS
from repro.experiments.report import nominal_label, render_table
from repro.experiments.runner import SweepRecord
from repro.experiments.sweep import Sweep
from repro.workloads.characteristics import BenchmarkCharacteristics

#: Families shown in Table 2, with display names.
TABLE2_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("adaptive", "Adaptive TW"),
    ("constant", "Constant TW"),
    ("fixed", "Fixed Interval"),
)


@dataclass
class Table1a:
    """Benchmark characteristics (Table 1(a))."""

    rows: List[BenchmarkCharacteristics]

    def render(self) -> str:
        return render_table(
            ["Benchmark", "Dynamic Branches", "Loop Executions",
             "Method Invocations", "Recursion Roots"],
            [
                (r.name, r.dynamic_branches, r.loop_executions,
                 r.method_invocations, r.recursion_roots)
                for r in self.rows
            ],
            title="Table 1(a): Benchmark Characteristics",
        )


def table_1a(sweep: Sweep) -> Table1a:
    """Compute Table 1(a) from the sweep's traces."""
    rows = [
        BenchmarkCharacteristics.of(branch, call_loop)
        for branch, call_loop in (sweep.traces[name] for name in sweep.benchmarks)
    ]
    return Table1a(rows)


@dataclass
class Table1b:
    """Baseline phases per MPL (Table 1(b))."""

    mpl_nominals: List[int]
    #: benchmark -> {mpl_nominal: BaselineCoverage}
    coverage: Dict[str, Dict[int, BaselineCoverage]]

    def render(self) -> str:
        headers = ["Benchmark"]
        for nominal in self.mpl_nominals:
            label = nominal_label(nominal)
            headers.extend([f"MPL={label} #Phases", f"MPL={label} %inPhase"])
        rows = []
        for benchmark, per_mpl in self.coverage.items():
            row: List[object] = [benchmark]
            for nominal in self.mpl_nominals:
                cell = per_mpl[nominal]
                row.extend([cell.num_phases, round(cell.percent_in_phase, 2)])
            rows.append(row)
        return render_table(
            headers, rows, title="Table 1(b): Baseline Phases per MPL", precision=2
        )


def table_1b(
    sweep: Sweep, mpl_nominals: Sequence[int] = MPL_NOMINALS
) -> Table1b:
    """Compute Table 1(b) from the sweep's baseline solutions."""
    coverage: Dict[str, Dict[int, BaselineCoverage]] = {}
    for benchmark in sweep.benchmarks:
        baselines = sweep.baselines(benchmark)
        coverage[benchmark] = {
            nominal: BaselineCoverage.of(baselines.solutions[nominal])
            for nominal in mpl_nominals
        }
    return Table1b(list(mpl_nominals), coverage)


@dataclass
class Table2a:
    """Percent improvement of best score: CW smaller/equal vs larger than MPL."""

    #: benchmark -> family -> (smaller %, equal %)
    rows: Dict[str, Dict[str, Tuple[float, float]]]

    def render(self) -> str:
        headers = ["Benchmark"]
        for _, label in TABLE2_FAMILIES:
            headers.extend([f"{label} Smaller", f"{label} Equal"])
        body = []
        for benchmark, per_family in self.rows.items():
            row: List[object] = [benchmark]
            for family, _ in TABLE2_FAMILIES:
                smaller, equal = per_family[family]
                row.extend([round(smaller, 2), round(equal, 2)])
            body.append(row)
        averages: List[object] = ["Average"]
        for index in range(len(TABLE2_FAMILIES) * 2):
            averages.append(
                round(mean([row[index + 1] for row in body]), 2)
            )
        body.append(averages)
        return render_table(
            headers, body,
            title="Table 2(a): % improvement in best score, CW smaller/equal vs larger than MPL",
            precision=2,
        )


def table_2a(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    mpl_nominals: Sequence[int] = MPL_NOMINALS,
) -> Table2a:
    """Compute Table 2(a) from sweep records.

    For each (benchmark, family, MPL): the best score across all other
    parameters with the CW smaller than / equal to / larger than the
    MPL; the improvement columns are averaged over the MPLs for which
    all three categories exist.
    """
    bests = _best_per_relation(records, mpl_nominals)
    rows: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for benchmark in benchmarks:
        per_family: Dict[str, Tuple[float, float]] = {}
        for family, _ in TABLE2_FAMILIES:
            smaller_gains: List[float] = []
            equal_gains: List[float] = []
            for nominal in mpl_nominals:
                cell = {
                    name: bests[(benchmark, family, nominal, name)]
                    for name in ("smaller", "equal", "larger")
                    if (benchmark, family, nominal, name) in bests
                }
                if len(cell) == 3:
                    smaller_gains.append(
                        percent_improvement(cell["smaller"], cell["larger"])
                    )
                    equal_gains.append(
                        percent_improvement(cell["equal"], cell["larger"])
                    )
            per_family[family] = (mean(smaller_gains), mean(equal_gains))
        rows[benchmark] = per_family
    return Table2a(rows)


def _best_per_relation(
    records: Sequence[SweepRecord], mpl_nominals: Sequence[int]
) -> Dict[Tuple, float]:
    """One pass: best score per (benchmark, family, MPL, CW-MPL relation)."""
    wanted = set(mpl_nominals)
    family_checks = [(family, family_default(family)) for family, _ in TABLE2_FAMILIES]
    relations = (
        ("smaller", cw_smaller),
        ("equal", cw_equal),
        ("larger", cw_larger),
        ("half", cw_at_most_half),
    )
    bests: Dict[Tuple, float] = {}
    for record in records:
        if record.mpl_nominal not in wanted:
            continue
        for family, check in family_checks:
            if not check(record):
                continue
            for name, relation in relations:
                if relation(record):
                    key = (record.benchmark, family, record.mpl_nominal, name)
                    if key not in bests or record.score > bests[key]:
                        bests[key] = record.score
    return bests


@dataclass
class Table2b:
    """Average of best scores for CW smaller / equal / at most half the MPL."""

    #: family -> (smaller, equal, half)
    rows: Dict[str, Tuple[float, float, float]]

    def render(self) -> str:
        body = [
            (label, *map(lambda v: round(v, 3), self.rows[family]))
            for family, label in TABLE2_FAMILIES
        ]
        return render_table(
            ["TW policy", "Smaller", "Equal", "1/2 MPL"],
            body,
            title="Table 2(b): average of best scores across benchmarks and MPLs",
        )


def table_2b(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    mpl_nominals: Sequence[int] = MPL_NOMINALS,
) -> Table2b:
    """Compute Table 2(b): mean over (benchmark, MPL) cells of best scores."""
    bests = _best_per_relation(records, mpl_nominals)
    rows: Dict[str, Tuple[float, float, float]] = {}
    for family, _ in TABLE2_FAMILIES:
        cells: Dict[str, List[float]] = {"smaller": [], "equal": [], "half": []}
        for benchmark in benchmarks:
            for nominal in mpl_nominals:
                for name in cells:
                    key = (benchmark, family, nominal, name)
                    if key in bests:
                        cells[name].append(bests[key])
        rows[family] = (mean(cells["smaller"]), mean(cells["equal"]), mean(cells["half"]))
    return Table2b(rows)
