"""The evaluation harness: profiles, sweeps, and table/figure generators.

One sweep over the parameter grid feeds every table and figure; records
are cached on disk so regeneration is cheap.  Typical use::

    from repro.experiments import Sweep, DEFAULT, paper_grid, tables, figures

    sweep = Sweep(DEFAULT)
    records = sweep.ensure(paper_grid(DEFAULT), progress=True)
    print(tables.table_1b(sweep).render())
    print(figures.figure_4(records).render())
"""

from repro.experiments import detail, figures, tables
from repro.experiments.client_model import ClientModel, MplOutcome, best_mpl, sweep_mpl
from repro.experiments.export import records_from_csv, records_to_csv
from repro.experiments.generate import generate_all
from repro.experiments.overhead import OverheadReport, measure_overhead, overhead_comparison
from repro.experiments.robustness import RobustnessPoint, degradation, noise_robustness
from repro.experiments.aggregate import (
    average_best_score,
    best_by,
    mean,
    percent_improvement,
)
from repro.experiments.config_space import (
    CW_NOMINALS,
    DEFAULT,
    MPL_NOMINALS,
    MPL_NOMINALS_EXTENDED,
    MPL_NOMINALS_FIGURES,
    PAPER,
    PROFILES,
    QUICK,
    ConfigSpec,
    SuiteProfile,
    grid_size,
    paper_grid,
)
from repro.experiments.parallel import ParallelSweepExecutor, resolve_jobs
from repro.experiments.report import nominal_label, render_table
from repro.experiments.runner import BaselineSet, SweepRecord, evaluate_spec
from repro.experiments.sweep import Sweep

__all__ = [
    "detail",
    "figures",
    "tables",
    "ClientModel",
    "MplOutcome",
    "best_mpl",
    "sweep_mpl",
    "records_from_csv",
    "records_to_csv",
    "generate_all",
    "OverheadReport",
    "measure_overhead",
    "overhead_comparison",
    "RobustnessPoint",
    "degradation",
    "noise_robustness",
    "average_best_score",
    "best_by",
    "mean",
    "percent_improvement",
    "CW_NOMINALS",
    "MPL_NOMINALS",
    "MPL_NOMINALS_EXTENDED",
    "MPL_NOMINALS_FIGURES",
    "DEFAULT",
    "PAPER",
    "QUICK",
    "PROFILES",
    "ConfigSpec",
    "SuiteProfile",
    "grid_size",
    "paper_grid",
    "nominal_label",
    "render_table",
    "BaselineSet",
    "SweepRecord",
    "evaluate_spec",
    "Sweep",
    "ParallelSweepExecutor",
    "resolve_jobs",
]
