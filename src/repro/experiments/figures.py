"""Figure generators: Figures 4, 5, 6, 7, and 8.

Each generator aggregates sweep records into the series the paper
plots, and returns a result object with the numbers plus a ``render()``
that prints them as an aligned text table (one row per x-axis point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.aggregate import (
    and_,
    enough_phases,
    average_best_score,
    best_by,
    cw_at_most_half,
    family_default,
    family_is,
    mean,
    percent_improvement,
)
from repro.experiments.config_space import (
    MPL_NOMINALS,
    MPL_NOMINALS_EXTENDED,
    MPL_NOMINALS_FIGURES,
    WINDOW_FAMILIES,
    SuiteProfile,
)
from repro.experiments.report import nominal_label, render_table
from repro.experiments.runner import SweepRecord

#: The TW-policy series of Figures 4 and 8, with display names.
FIGURE_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("fixed", "Fixed Intervals (skip=CW)"),
    ("constant", "Constant TW (skip=1)"),
    ("adaptive", "Adaptive TW (skip=1)"),
)


def _at_mpl(nominal: int):
    def check(record: SweepRecord) -> bool:
        return record.mpl_nominal == nominal

    return check


@dataclass
class FigureSeries:
    """A generic per-MPL multi-series figure result."""

    title: str
    mpl_nominals: List[int]
    #: series label -> [value per MPL]
    series: Dict[str, List[float]]

    def render(self) -> str:
        headers = ["MPL"] + list(self.series)
        rows = []
        for index, nominal in enumerate(self.mpl_nominals):
            row: List[object] = [nominal_label(nominal)]
            for label in self.series:
                value = self.series[label][index]
                row.append("-" if value != value else round(value, 3))  # NaN -> "-"
            rows.append(row)
        return render_table(headers, rows, title=self.title)


def figure_4(
    records: Sequence[SweepRecord],
    mpl_nominals: Sequence[int] = MPL_NOMINALS_EXTENDED,
) -> FigureSeries:
    """Figure 4: skip factor and Fixed vs Constant vs Adaptive windowing.

    Average of best scores across all benchmarks, models, and analyzers;
    CW at most 1/2 the MPL.
    """
    series: Dict[str, List[float]] = {label: [] for _, label in FIGURE_FAMILIES}
    for nominal in mpl_nominals:
        for family, label in FIGURE_FAMILIES:
            series[label].append(
                average_best_score(
                    records,
                    where=and_(family_default(family), cw_at_most_half, _at_mpl(nominal), enough_phases),
                )
            )
    return FigureSeries(
        title="Figure 4: average best score vs MPL (skip factor & TW policy)",
        mpl_nominals=list(mpl_nominals),
        series=series,
    )


def figure_5(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    mpl_nominals: Sequence[int] = MPL_NOMINALS_FIGURES,
    excluded_benchmark: str = "compress",
) -> FigureSeries:
    """Figure 5: weighted vs unweighted models, with and without compress."""
    without = [b for b in benchmarks if b != excluded_benchmark]
    series: Dict[str, List[float]] = {}
    for family_key, family_label in (("constant", "Constant"), ("adaptive", "Adaptive")):
        for model in ("weighted", "unweighted"):
            for suffix, subset in (("", None), (f" w/o {excluded_benchmark}", without)):
                label = f"{family_label} {model}{suffix}"
                series[label] = []
    for nominal in mpl_nominals:
        for family_key, family_label in (("constant", "Constant"), ("adaptive", "Adaptive")):
            for model in ("weighted", "unweighted"):
                where = and_(
                    family_default(family_key),
                    cw_at_most_half,
                    _at_mpl(nominal),
                    lambda r, m=model: r.model == m,
                )
                series[f"{family_label} {model}"].append(
                    average_best_score(records, where=where)
                )
                series[f"{family_label} {model} w/o {excluded_benchmark}"].append(
                    average_best_score(records, where=where, benchmarks=without)
                )
    return FigureSeries(
        title="Figure 5: average best score, weighted vs unweighted model",
        mpl_nominals=list(mpl_nominals),
        series=series,
    )


def figure_6(
    records: Sequence[SweepRecord],
    profile: SuiteProfile,
    mpl_nominals: Sequence[int] = MPL_NOMINALS_FIGURES,
) -> Dict[str, FigureSeries]:
    """Figure 6: Threshold vs Average analyzers (unweighted model).

    Returns one series set per TW policy: ``{"constant": ..., "adaptive": ...}``.
    """
    analyzer_labels = [f"thr={t}" for t in profile.thresholds] + [
        f"avg={d}" for d in profile.deltas
    ]
    results: Dict[str, FigureSeries] = {}
    for family_key, family_label in (("constant", "Constant TW"), ("adaptive", "Adaptive TW")):
        series: Dict[str, List[float]] = {label: [] for label in analyzer_labels}
        for nominal in mpl_nominals:
            for label in analyzer_labels:
                where = and_(
                    family_default(family_key),
                    cw_at_most_half,
                    _at_mpl(nominal),
                    lambda r: r.model == "unweighted",
                    lambda r, a=label: r.analyzer == a,
                )
                series[label].append(average_best_score(records, where=where))
        results[family_key] = FigureSeries(
            title=f"Figure 6 ({family_label}): average best score per analyzer",
            mpl_nominals=list(mpl_nominals),
            series=series,
        )
    return results


@dataclass
class ImprovementSeries:
    """A per-MPL percent-improvement series (Figure 7)."""

    title: str
    mpl_nominals: List[int]
    improvements: List[float]

    def render(self) -> str:
        rows = [
            (nominal_label(nominal), round(value, 2))
            for nominal, value in zip(self.mpl_nominals, self.improvements)
        ]
        return render_table(["MPL", "% improvement"], rows, title=self.title)


def _adaptive_variant(anchor: str, resize: str):
    def check(record: SweepRecord) -> bool:
        return (
            record.family == "adaptive"
            and record.anchor == anchor
            and record.resize == resize
            and record.model == "unweighted"
        )

    return check


def _variant_improvement(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    mpl_nominals: Sequence[int],
    new_variant: Tuple[str, str],
    base_variant: Tuple[str, str],
    title: str,
) -> ImprovementSeries:
    improvements: List[float] = []
    for nominal in mpl_nominals:
        gains: List[float] = []
        for benchmark in benchmarks:
            def best_for(variant: Tuple[str, str]) -> Optional[float]:
                cell = best_by(
                    records,
                    key=lambda r: (),
                    where=and_(
                        _adaptive_variant(*variant),
                        _at_mpl(nominal),
                        lambda r, b=benchmark: r.benchmark == b,
                    ),
                )
                return cell.get(())

            new_best = best_for(new_variant)
            base_best = best_for(base_variant)
            if new_best is not None and base_best is not None:
                gains.append(percent_improvement(new_best, base_best))
        improvements.append(mean(gains))
    return ImprovementSeries(title, list(mpl_nominals), improvements)


def figure_7a(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    mpl_nominals: Sequence[int] = MPL_NOMINALS,
) -> ImprovementSeries:
    """Figure 7(a): Slide vs Move resizing, RN anchoring."""
    return _variant_improvement(
        records,
        benchmarks,
        mpl_nominals,
        new_variant=("rn", "slide"),
        base_variant=("rn", "move"),
        title="Figure 7(a): % improvement, Sliding vs Moving the TW (RN anchor)",
    )


def figure_7b(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    mpl_nominals: Sequence[int] = MPL_NOMINALS,
) -> ImprovementSeries:
    """Figure 7(b): RN vs LNN anchoring, Slide resizing."""
    return _variant_improvement(
        records,
        benchmarks,
        mpl_nominals,
        new_variant=("rn", "slide"),
        base_variant=("lnn", "slide"),
        title="Figure 7(b): % improvement, RN vs LNN anchoring (Slide resize)",
    )


def figure_8(
    records: Sequence[SweepRecord],
    mpl_nominals: Sequence[int] = MPL_NOMINALS_EXTENDED,
) -> FigureSeries:
    """Figure 8: Constant vs Adaptive with anchor-corrected phase starts.

    Identical aggregation to Figure 4, but the Adaptive TW series is
    scored with anchor-corrected boundaries: the Adaptive TW's left
    boundary *is* the anchor point, so once a phase is detected the
    policy knows where it began.  A Constant TW has already discarded
    those elements by the time the phase is confirmed, so its series
    keeps the detection-time boundaries (see DESIGN.md).
    """
    series: Dict[str, List[float]] = {"Constant TW": [], "Adaptive TW": []}
    for nominal in mpl_nominals:
        for family, label, value in (
            ("constant", "Constant TW", lambda r: r.score),
            ("adaptive", "Adaptive TW", lambda r: r.corrected_score),
        ):
            series[label].append(
                average_best_score(
                    records,
                    where=and_(family_default(family), cw_at_most_half, _at_mpl(nominal), enough_phases),
                    value=value,
                )
            )
    return FigureSeries(
        title="Figure 8: average best score with anchor-corrected boundaries",
        mpl_nominals=list(mpl_nominals),
        series=series,
    )


# -- Cross-family comparison (beyond the paper's figures) ----------------------

#: Display order and labels for the detector-family comparison: the
#: paper's windowed grid (best over its default variants) against each
#: registered changepoint/related-work family (``docs/detectors.md``).
DETECTOR_FAMILY_SERIES: Tuple[Tuple[str, str], ...] = (
    ("windowed", "Windowed grid"),
    ("focus", "FOCuS"),
    ("newma", "NEWMA"),
    ("das_pearson", "Das Pearson"),
    ("lu_dynamo", "Lu DYNAMO"),
    ("dhodapkar_smith", "Dhodapkar-Smith"),
)


def _family_predicate(name: str):
    """Records belonging to one comparison series.

    The ``windowed`` series is the best over the paper grid's default
    anchor/resize variants (all three TW policies, both models, every
    analyzer); other names match the detector family directly.
    """
    if name == "windowed":
        def check(record: SweepRecord) -> bool:
            return record.family in WINDOW_FAMILIES and family_default(
                record.family
            )(record)

        return check
    return family_is(name)


def figure_families(
    records: Sequence[SweepRecord],
    mpl_nominals: Sequence[int] = MPL_NOMINALS_FIGURES,
) -> FigureSeries:
    """Cross-family figure: average best score vs MPL, one series per
    detector family.

    Same aggregation discipline as Figure 4 — best score per benchmark
    over each family's own parameter axes (CW at most 1/2 the MPL,
    decision bar free), averaged across benchmarks, cells with too few
    baseline phases excluded.  Families absent from ``records`` render
    as ``-``.
    """
    present = {record.family for record in records}
    series: Dict[str, List[float]] = {}
    for name, label in DETECTOR_FAMILY_SERIES:
        if name != "windowed" and name not in present:
            continue
        series[label] = [
            average_best_score(
                records,
                where=and_(
                    _family_predicate(name),
                    cw_at_most_half,
                    _at_mpl(nominal),
                    enough_phases,
                ),
            )
            for nominal in mpl_nominals
        ]
    return FigureSeries(
        title="Cross-family: average best score vs MPL (detector families)",
        mpl_nominals=list(mpl_nominals),
        series=series,
    )


@dataclass
class FamilyTable:
    """Per-benchmark best scores, one column per detector family."""

    title: str
    benchmarks: List[str]
    #: family label -> {benchmark -> best score or None}
    columns: Dict[str, Dict[str, Optional[float]]]

    def render(self) -> str:
        headers = ["Benchmark"] + list(self.columns)
        rows: List[List[object]] = []
        for benchmark in self.benchmarks:
            row: List[object] = [benchmark]
            for label in self.columns:
                value = self.columns[label].get(benchmark)
                row.append("-" if value is None else round(value, 3))
            rows.append(row)
        average_row: List[object] = ["average"]
        for label in self.columns:
            values = [v for v in self.columns[label].values() if v is not None]
            average_row.append("-" if not values else round(mean(values), 3))
        rows.append(average_row)
        return render_table(headers, rows, title=self.title)


def table_families(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    mpl_nominal: int = 10_000,
) -> FamilyTable:
    """Cross-family table: best score per benchmark at one MPL.

    Each cell is the family's best score over its whole parameter axis
    (CW sizes and decision bars) for that benchmark, so the comparison
    is each family at its best, not at one hand-picked setting.
    """
    present = {record.family for record in records}
    columns: Dict[str, Dict[str, Optional[float]]] = {}
    for name, label in DETECTOR_FAMILY_SERIES:
        if name != "windowed" and name not in present:
            continue
        best = best_by(
            records,
            key=lambda r: (r.benchmark,),
            where=and_(
                _family_predicate(name),
                cw_at_most_half,
                _at_mpl(mpl_nominal),
            ),
        )
        columns[label] = {b: best.get((b,)) for b in benchmarks}
    return FamilyTable(
        title=(
            "Cross-family: best score per benchmark "
            f"(MPL {nominal_label(mpl_nominal)})"
        ),
        benchmarks=list(benchmarks),
        columns=columns,
    )
