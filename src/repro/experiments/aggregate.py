"""Aggregation helpers: the paper's "average of best scores" analyses.

Every figure in Sections 4-5 is some variant of: fix one dimension of
interest, take the *best* score across all other grid dimensions for
each (benchmark, MPL), then average over benchmarks (and sometimes over
MPLs).  These helpers implement that pattern over flat
:class:`~repro.experiments.runner.SweepRecord` lists.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import SweepRecord

Predicate = Callable[[SweepRecord], bool]
Value = Callable[[SweepRecord], float]


def best_by(
    records: Iterable[SweepRecord],
    key: Callable[[SweepRecord], Tuple],
    where: Optional[Predicate] = None,
    value: Value = lambda r: r.score,
) -> Dict[Tuple, float]:
    """Max of ``value`` per ``key`` over records passing ``where``."""
    best: Dict[Tuple, float] = {}
    for record in records:
        if where is not None and not where(record):
            continue
        k = key(record)
        v = value(record)
        if k not in best or v > best[k]:
            best[k] = v
    return best


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def average_best_score(
    records: Iterable[SweepRecord],
    where: Optional[Predicate] = None,
    value: Value = lambda r: r.score,
    benchmarks: Optional[Sequence[str]] = None,
) -> float:
    """Average over benchmarks of the best score within each benchmark.

    This is the paper's "average of best scores across all benchmarks":
    for each benchmark take the best score across every configuration
    passing ``where``, then average those per-benchmark bests.
    """
    best = best_by(records, key=lambda r: (r.benchmark,), where=where, value=value)
    if benchmarks is not None:
        best = {k: v for k, v in best.items() if k[0] in benchmarks}
    if not best:
        return float("nan")
    return mean(list(best.values()))


def percent_improvement(new: float, base: float) -> float:
    """``100 * (new - base) / base`` (0 when the base is 0)."""
    if base == 0:
        return 0.0
    return 100.0 * (new - base) / base


def group_records(
    records: Iterable[SweepRecord],
    key: Callable[[SweepRecord], Tuple],
) -> Dict[Tuple, List[SweepRecord]]:
    """Bucket records by ``key``."""
    groups: Dict[Tuple, List[SweepRecord]] = defaultdict(list)
    for record in records:
        groups[key(record)].append(record)
    return dict(groups)


# -- CW-vs-MPL relations (Table 2) ---------------------------------------------


def cw_smaller(record: SweepRecord) -> bool:
    """CW nominally smaller than the MPL."""
    return record.cw_nominal < record.mpl_nominal


def cw_equal(record: SweepRecord) -> bool:
    """CW nominally equal to the MPL."""
    return record.cw_nominal == record.mpl_nominal


def cw_larger(record: SweepRecord) -> bool:
    """CW nominally larger than the MPL."""
    return record.cw_nominal > record.mpl_nominal


def cw_at_most_half(record: SweepRecord) -> bool:
    """CW at most half the MPL (the paper's preferred setting)."""
    return record.cw_nominal * 2 <= record.mpl_nominal


#: Minimum baseline phases for a (benchmark, MPL) cell to be "useful".
#: The paper excludes cells with only 1-2 very large phases: every
#: detector scores highly there, which just flattens the averages.
MIN_BASELINE_PHASES = 3


def enough_phases(record: SweepRecord) -> bool:
    """The record's (benchmark, MPL) cell has a meaningful phase count."""
    return record.num_baseline_phases >= MIN_BASELINE_PHASES


def family_is(name: str) -> Predicate:
    """Predicate: record belongs to TW-policy family ``name``."""
    def check(record: SweepRecord) -> bool:
        return record.family == name

    return check


def and_(*predicates: Predicate) -> Predicate:
    """Conjunction of predicates."""
    def check(record: SweepRecord) -> bool:
        return all(p(record) for p in predicates)

    return check


def default_adaptive(record: SweepRecord) -> bool:
    """The Adaptive TW with its default RN anchoring + Slide resizing."""
    return record.family == "adaptive" and record.anchor == "rn" and record.resize == "slide"


def family_default(name: str) -> Predicate:
    """Family predicate that pins Adaptive to its default anchor/resize."""
    if name == "adaptive":
        return default_adaptive
    return family_is(name)
