"""Run detectors over traces and score them against baselines.

One detector run produces a state sequence; scoring it against each
MPL's baseline yields one :class:`SweepRecord` per (benchmark, config,
MPL).  Records carry both the ordinary score and the anchor-corrected
score used by Figure 8.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.baseline.oracle import BaselineSolution, solve_baseline
from repro.core.bank import DetectorBank
from repro.core.detector import DetectionResult
from repro.core.engine import run_detector
from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.profiles.callloop import CallLoopTrace
from repro.profiles.trace import BranchTrace
from repro.scoring.metric import score_states, score_states_batch
from repro.scoring.states import Interval, phases_from_states

#: Grid points evaluated per single-pass :class:`DetectorBank`.  Bounds
#: the bank's per-member state buffers (one byte per trace element each)
#: while still amortizing the trace decode/chunking across many members.
DEFAULT_BANK_SIZE = 16


@dataclass(frozen=True)
class SweepRecord:
    """Scores of one (benchmark, config, MPL) evaluation."""

    benchmark: str
    family: str
    cw_nominal: int
    model: str
    analyzer: str
    anchor: str
    resize: str
    mpl_nominal: int
    score: float
    correlation: float
    sensitivity: float
    false_positives: float
    corrected_score: float
    num_detected_phases: int
    num_baseline_phases: int

    def to_row(self) -> Dict[str, object]:
        """Flat dict form (JSONL cache serialization)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_row(row: Dict[str, object]) -> "SweepRecord":
        return SweepRecord(**row)


class _LazySolutions(Mapping):
    """Dict-like view over a :class:`BaselineSet`'s memoized solutions.

    Indexing solves the baseline on first access; iteration and length
    reflect the declared nominal MPLs without solving anything.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "BaselineSet") -> None:
        self._owner = owner

    def __getitem__(self, nominal: int) -> BaselineSolution:
        return self._owner.solution(nominal)

    def __iter__(self) -> Iterator[int]:
        return iter(self._owner.mpl_nominals)

    def __len__(self) -> int:
        return len(self._owner.mpl_nominals)


class BaselineSet:
    """Solved baselines for one benchmark across a set of nominal MPLs.

    Each nominal's baseline is solved **lazily**, memoized on first use
    (:meth:`solution` / :meth:`states` / :meth:`phases`), so a caller
    that only ever scores a subset of the declared MPLs — e.g. a
    parallel worker whose chunk covers one MPL — never pays for the
    rest.  Construction itself does no solving and is deterministic and
    self-contained (no module-level state, no RNG), so it is safe to
    build inside a forked or spawned worker process;
    :meth:`for_benchmark` builds one straight from the suite's on-disk
    trace cache, which is how the parallel sweep executor avoids
    shipping traces over the worker pipe.
    """

    def __init__(
        self,
        call_loop: CallLoopTrace,
        profile: SuiteProfile,
        mpl_nominals: Sequence[int],
        name: str = "",
    ) -> None:
        self.name = name or call_loop.name
        self.profile = profile
        self._call_loop = call_loop
        self._mpl_nominals = [int(nominal) for nominal in mpl_nominals]
        self._solutions: Dict[int, BaselineSolution] = {}
        self._states_cache: Dict[int, np.ndarray] = {}
        self._phases_cache: Dict[int, List[Interval]] = {}

    def solution(self, mpl_nominal: int) -> BaselineSolution:
        """The solved baseline for a nominal MPL (solved on first access)."""
        if mpl_nominal not in self._solutions:
            if mpl_nominal not in self._mpl_nominals:
                raise KeyError(mpl_nominal)
            self._solutions[mpl_nominal] = solve_baseline(
                self._call_loop,
                self.profile.actual(mpl_nominal),
                name=self.name,
            )
        return self._solutions[mpl_nominal]

    @property
    def solutions(self) -> Mapping:
        """Mapping view ``{nominal MPL: BaselineSolution}`` (lazy)."""
        return _LazySolutions(self)

    @classmethod
    def for_benchmark(
        cls,
        benchmark: str,
        profile: SuiteProfile,
        mpl_nominals: Sequence[int],
        cache_dir=None,
    ) -> "BaselineSet":
        """Build the set for a named workload from the on-disk trace cache.

        Loads (or, on a cold cache, regenerates) the workload's call-loop
        trace via :func:`repro.workloads.suite.load_traces` and solves
        every baseline locally in the calling process.
        """
        from repro.workloads.suite import load_traces

        _, call_loop = load_traces(
            benchmark, scale=profile.workload_scale, cache_dir=cache_dir
        )
        return cls(call_loop, profile, mpl_nominals, name=benchmark)

    def states(self, mpl_nominal: int) -> np.ndarray:
        """The oracle's state array for a nominal MPL (memoized)."""
        if mpl_nominal not in self._states_cache:
            self._states_cache[mpl_nominal] = self.solution(mpl_nominal).states()
        return self._states_cache[mpl_nominal]

    def phases(self, mpl_nominal: int) -> List[Interval]:
        """The oracle's phase intervals for a nominal MPL (memoized).

        Exactly ``phases_from_states(self.states(mpl_nominal))`` — the
        default the scalar scorer derives per call — extracted once per
        MPL for the batched scorer.
        """
        if mpl_nominal not in self._phases_cache:
            self._phases_cache[mpl_nominal] = phases_from_states(
                self.states(mpl_nominal)
            )
        return self._phases_cache[mpl_nominal]

    @property
    def mpl_nominals(self) -> List[int]:
        return list(self._mpl_nominals)


def _make_record(
    baselines: BaselineSet, spec: ConfigSpec, nominal: int, plain, corrected
) -> SweepRecord:
    return SweepRecord(
        benchmark=baselines.name,
        family=spec.family,
        cw_nominal=spec.cw_nominal,
        model=spec.model.value,
        analyzer=spec.analyzer_label(),
        anchor=spec.anchor.value,
        resize=spec.resize.value,
        mpl_nominal=nominal,
        score=plain.score,
        correlation=plain.correlation,
        sensitivity=plain.sensitivity,
        false_positives=plain.false_positives,
        corrected_score=corrected.score,
        num_detected_phases=plain.num_detected_phases,
        num_baseline_phases=plain.num_baseline_phases,
    )


def _score_result(
    result: DetectionResult, baselines: BaselineSet, spec: ConfigSpec
) -> List[SweepRecord]:
    """Score one detector result at every MPL (one record per MPL)."""
    corrected_states = result.corrected_states()
    corrected_phases = result.corrected_phases()
    records: List[SweepRecord] = []
    for nominal in baselines.mpl_nominals:
        base_states = baselines.states(nominal)
        plain = score_states(result.states, base_states)
        corrected = score_states(
            corrected_states, base_states, detected_phases=corrected_phases
        )
        records.append(_make_record(baselines, spec, nominal, plain, corrected))
    return records


def _score_results(
    results: Sequence[DetectionResult],
    baselines: BaselineSet,
    specs: Sequence[ConfigSpec],
) -> List[SweepRecord]:
    """Score a batch of detector results at every MPL in one pass.

    Bit-identical to mapping :func:`_score_result` over the batch
    (records in the same lane-major, MPL-minor order), but runs one
    :func:`~repro.scoring.score_states_batch` call over a ``2L x N``
    state matrix — rows ``0..L-1`` the plain states, rows ``L..2L-1``
    the anchor-corrected states — so each MPL baseline is compared and
    indexed once for the whole bank instead of once per lane.
    """
    num_lanes = len(results)
    if num_lanes == 0:
        return []
    nominals = baselines.mpl_nominals
    matrix = np.vstack(
        [np.asarray(result.states, dtype=bool) for result in results]
        + [result.corrected_states() for result in results]
    )
    overrides: List[Optional[Sequence[Interval]]] = [None] * num_lanes + [
        result.corrected_phases() for result in results
    ]
    grid = score_states_batch(
        matrix,
        [baselines.states(nominal) for nominal in nominals],
        detected_phases=overrides,
        baseline_phases=[baselines.phases(nominal) for nominal in nominals],
    )
    records: List[SweepRecord] = []
    for lane, spec in enumerate(specs):
        for column, nominal in enumerate(nominals):
            plain = grid[lane][column]
            corrected = grid[num_lanes + lane][column]
            records.append(_make_record(baselines, spec, nominal, plain, corrected))
    return records


def evaluate_spec(
    trace: BranchTrace,
    baselines: BaselineSet,
    spec: ConfigSpec,
    profile: SuiteProfile,
    kernels: Optional[bool] = None,
) -> List[SweepRecord]:
    """Run one grid point over one trace; score it at every MPL."""
    config = spec.to_config(profile)
    result = run_detector(trace, config, kernels=kernels)
    return _score_result(result, baselines, spec)


def evaluate_bank(
    trace: BranchTrace,
    baselines: BaselineSet,
    specs: Sequence[ConfigSpec],
    profile: SuiteProfile,
    bank: bool = True,
    bank_size: int = DEFAULT_BANK_SIZE,
    kernels: Optional[bool] = None,
    batched: Optional[bool] = None,
    batch: bool = True,
    tracer=None,
    trace_parent=None,
    metrics=None,
) -> List[SweepRecord]:
    """Run many grid points over one trace; score each at every MPL.

    With ``bank=True`` (the default) the specs are evaluated in
    single-pass :class:`~repro.core.bank.DetectorBank` batches of
    ``bank_size``, so the trace is decoded and chunked once per batch
    instead of once per grid point.  ``bank=False`` falls back to one
    :func:`~repro.core.engine.run_detector` call per spec — same
    results in the same order (the bank-equivalence CI job pins this).

    ``kernels`` selects the array-native detector kernels for eligible
    configurations (see :mod:`repro.core.kernels`); ``None`` consults
    the ``REPRO_KERNELS`` environment variable.  ``batched`` selects the
    bank's batched advancer for vectorized members (``None`` consults
    ``REPRO_BANK_BATCHED``).  Records are byte-identical either way (the
    kernel-equivalence CI job pins this).

    ``batch`` selects the vectorized batch scorer
    (:func:`~repro.scoring.score_states_batch`) for each bank batch;
    ``batch=False`` scores lane by lane via :func:`score_states`.
    Records are bit-identical either way — ``bank=False`` always scores
    lane by lane, so the bank-equivalence job pins batch-vs-scalar
    scoring too.

    ``tracer``/``trace_parent``/``metrics`` ride through to
    :meth:`DetectorBank.run` untouched (``bank.run`` / ``bank.kernel``
    spans and the ``bank.advance_seconds`` histogram); all three default
    to ``None`` and cost nothing when off.
    """
    if not bank:
        records: List[SweepRecord] = []
        for spec in specs:
            records.extend(evaluate_spec(trace, baselines, spec, profile, kernels))
        return records
    records = []
    specs = list(specs)
    for start in range(0, len(specs), bank_size):
        batch_specs = specs[start : start + bank_size]
        results = DetectorBank([spec.to_config(profile) for spec in batch_specs]).run(
            trace,
            kernels=kernels,
            batched=batched,
            tracer=tracer,
            trace_parent=trace_parent,
            metrics=metrics,
        )
        if batch:
            records.extend(_score_results(results, baselines, batch_specs))
        else:
            for spec, result in zip(batch_specs, results):
                records.extend(_score_result(result, baselines, spec))
    return records
