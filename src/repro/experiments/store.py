"""Content-addressed sweep chunk store and SQLite result database.

This module is the persistence layer behind sharded, resumable sweeps
(``docs/sweep.md``).  Three pieces:

**Chunk store.**  A parallel sweep's unit of work is a *chunk*: one
benchmark plus a slice of grid points, evaluated at every MPL.  Each
chunk is identified by a content hash over (code-version salt, trace
content fingerprint, profile, spec-chunk identity, MPL set) — see
:func:`chunk_key` — and its completed records are written as one atomic
self-describing file under ``sweep-<profile>.chunks/`` (tmp file +
rename; a torn or truncated file reads as *missing*).  Because the key
is content-addressed and detector evaluation is deterministic, writes
are idempotent: two executors racing on the same chunk produce the same
body bytes, so the last rename wins harmlessly.  Workers write their
own chunk files, which is what lets the executor drop the
ordered-delivery barrier — record rows never cross the pipe and nothing
downstream depends on completion order.

**Leases.**  Executors sharing a results directory (including separate
machines on a shared filesystem) divide work through lease files:
``claim`` creates ``<key>.lease`` with ``O_CREAT | O_EXCL`` — exactly
one creator wins — and a claim older than its TTL can be stolen, so a
dead executor never strands a chunk.  A stolen lease can transiently
give two executors the same chunk; that is safe (idempotent writes),
only mildly wasteful, and documented in ``docs/formats.md``.

**Compaction + SQLite.**  :func:`compact_chunks` folds completed chunks
into the existing append-only JSONL record cache *in plan order*
(benchmark-major, spec-order — the order a serial sweep appends in), so
the compacted cache is byte-identical to a serial run's.  It runs under
a ``compact`` lease so concurrent executors fold once, skips any chunk
whose cells are already cached (another executor got there first), and
finishes by syncing the cache into a :class:`ResultDB` — a SQLite
database (``sweep-<profile>.sqlite``) with ``runs``/``configs``/
``records`` tables indexed on benchmark/family/MPL/score that the
``repro results`` CLI queries instead of re-parsing JSONL.  The schema
is documented in ``docs/formats.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.experiments.config_space import ConfigSpec
from repro.experiments.runner import SweepRecord

PathLike = Union[str, os.PathLike]

__all__ = [
    "CHUNK_FORMAT",
    "CHUNK_VERSION",
    "CODE_VERSION",
    "DEFAULT_LEASE_TTL",
    "ChunkStore",
    "PlannedChunk",
    "ResultDB",
    "StoreError",
    "cache_line",
    "chunk_key",
    "compact_chunks",
    "plan_chunks",
    "spec_chunk_hash",
]

CHUNK_FORMAT = "repro-sweep-chunk"
CHUNK_VERSION = 1

#: Code-version salt baked into every chunk key.  Bump whenever a change
#: to the detector/scoring pipeline alters record *values*: chunks
#: written by older code then hash to different keys and are simply
#: never folded into a newer cache.
CODE_VERSION = "1"

#: Seconds after which another executor may steal an unreleased lease.
#: Far above any single chunk's evaluation time at quick/default scale;
#: paper-scale runs should raise it via ``lease_ttl``.
DEFAULT_LEASE_TTL = 120.0


class StoreError(RuntimeError):
    """A chunk the compactor needed is missing or unreadable."""


def cache_line(record: SweepRecord, fingerprint: str) -> str:
    """The canonical JSONL cache serialization of one record.

    This is the single definition of a cache row's bytes: the serial
    sweep's appends, the workers' chunk bodies and the compactor all go
    through it, which is what makes "compacted cache == serial cache"
    a byte-level identity rather than a semantic one.
    """
    row = record.to_row()
    row["fingerprint"] = fingerprint
    return json.dumps(row) + "\n"


def spec_chunk_hash(specs: Sequence[ConfigSpec]) -> str:
    """A stable hash of an ordered slice of grid points."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(repr(spec.key()).encode("utf-8"))
    return digest.hexdigest()[:16]


def chunk_key(
    profile_name: str,
    benchmark: str,
    fingerprint: str,
    specs: Sequence[ConfigSpec],
    mpl_nominals: Sequence[int],
) -> str:
    """The content address of one work item.

    Any input that could change the chunk's record bytes is hashed in:
    the code-version salt, the profile (scale + nominal mapping), the
    benchmark and its trace content fingerprint, the exact ordered spec
    slice, and the MPL set each spec is scored at.
    """
    digest = hashlib.sha256()
    for part in (
        CODE_VERSION,
        profile_name,
        benchmark,
        fingerprint,
        spec_chunk_hash(specs),
        repr(tuple(mpl_nominals)),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:32]


@dataclass(frozen=True)
class PlannedChunk:
    """One planned work item: a key plus everything needed to (re)do it.

    ``index`` is the chunk's position in the deterministic plan order
    (benchmark-major, spec-order) — the order compaction folds in.
    Carrying ``mpl_nominals`` makes the chunk's expected record cells
    computable without its file (:func:`chunk_cells`), which is how a
    compactor recognizes a chunk another executor already folded and
    garbage-collected.
    """

    index: int
    benchmark: str
    fingerprint: str
    specs: Tuple[ConfigSpec, ...]
    key: str
    mpl_nominals: Tuple[int, ...] = ()


def plan_chunks(
    work: Sequence[Tuple[str, Sequence[ConfigSpec]]],
    fingerprints: Dict[str, str],
    profile_name: str,
    mpl_nominals: Sequence[int],
    chunker: Callable[[Sequence[ConfigSpec]], List[List[ConfigSpec]]],
) -> List[PlannedChunk]:
    """Split ``work`` into content-addressed chunks, in plan order.

    The plan is a pure function of (work, fingerprints, profile, MPLs,
    chunker): executors sharing a results directory compute identical
    plans — identical keys, identical fold order — as long as they
    chunk the same way (same ``--jobs``/``chunk_size``; see
    ``docs/sweep.md``).
    """
    planned: List[PlannedChunk] = []
    for benchmark, specs in work:
        fingerprint = fingerprints[benchmark]
        for piece in chunker(list(specs)):
            planned.append(
                PlannedChunk(
                    index=len(planned),
                    benchmark=benchmark,
                    fingerprint=fingerprint,
                    specs=tuple(piece),
                    key=chunk_key(
                        profile_name, benchmark, fingerprint, piece, mpl_nominals
                    ),
                    mpl_nominals=tuple(mpl_nominals),
                )
            )
    return planned


def _owner_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class ChunkStore:
    """Atomic, content-addressed chunk files plus lease files.

    Lives at ``<cache_dir>/sweep-<profile>.chunks/``; one ``<key>.chunk``
    per completed work item, one ``<key>.lease`` per claimed one, and
    ``_<name>.lease`` for named locks (compaction).  All mutation is
    tmp-file + ``os.replace`` or ``O_CREAT | O_EXCL``, so the store is
    safe for concurrent executors on a shared filesystem.
    """

    def __init__(self, cache_dir: PathLike, profile_name: str) -> None:
        self.cache_dir = Path(cache_dir)
        self.profile_name = profile_name
        self.root = self.cache_dir / f"sweep-{profile_name}.chunks"
        self.owner = _owner_id()

    # -- chunk files ----------------------------------------------------------

    def chunk_path(self, key: str) -> Path:
        return self.root / f"{key}.chunk"

    def lease_path(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    def write(
        self,
        key: str,
        benchmark: str,
        fingerprint: str,
        configs: int,
        lines: Sequence[str],
        worker: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Atomically persist one completed chunk.

        Line 1 is a self-describing JSON header; every following line is
        exactly one cache row (the bytes :func:`cache_line` produced in
        the worker).  Only the body is canonical — the header's worker
        accounting may differ between two writers of the same key, which
        is fine because rename atomicity means readers always see one
        complete version and the bodies are identical.
        """
        header = {
            "format": CHUNK_FORMAT,
            "version": CHUNK_VERSION,
            "key": key,
            "profile": self.profile_name,
            "benchmark": benchmark,
            "fingerprint": fingerprint,
            "code_version": CODE_VERSION,
            "configs": configs,
            "rows": len(lines),
            "written_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "worker": worker or {},
        }
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.chunk_path(key)
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write("".join(lines))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        return final

    def read(self, key: str) -> Optional[Tuple[Dict, List[str]]]:
        """Load and validate a chunk; ``None`` if missing or torn.

        Validation: parseable header of the right format/version/key,
        and a body with exactly ``header["rows"]`` newline-terminated
        lines.  Anything less reads as "not done yet" — the executor
        will just claim and re-evaluate the chunk.
        """
        try:
            text = self.chunk_path(key).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
        newline = text.find("\n")
        if newline < 0:
            return None
        try:
            header = json.loads(text[:newline])
        except json.JSONDecodeError:
            return None
        if (
            not isinstance(header, dict)
            or header.get("format") != CHUNK_FORMAT
            or int(header.get("version", 0)) > CHUNK_VERSION
            or header.get("key") != key
        ):
            return None
        body = text[newline + 1 :]
        if body and not body.endswith("\n"):
            return None
        lines = body.splitlines(keepends=True)
        if len(lines) != int(header.get("rows", -1)):
            return None
        return header, lines

    def has(self, key: str) -> bool:
        """True when a complete, valid chunk file exists for ``key``."""
        return self.read(key) is not None

    def keys(self) -> Set[str]:
        """Keys of every chunk file currently present (unvalidated)."""
        if not self.root.is_dir():
            return set()
        return {path.stem for path in self.root.glob("*.chunk")}

    def missing(self, planned: Iterable[PlannedChunk]) -> List[PlannedChunk]:
        """The planned chunks without a valid file — the resume set."""
        return [chunk for chunk in planned if not self.has(chunk.key)]

    # -- leases ---------------------------------------------------------------

    def claim(self, key: str, ttl: float = DEFAULT_LEASE_TTL) -> bool:
        """Try to claim ``key``; True if this executor now holds it.

        Exactly one concurrent caller wins the ``O_EXCL`` create.  An
        existing lease past its TTL is stolen with an atomic replace;
        two simultaneous stealers can both believe they won, which is
        accepted — chunk writes are idempotent, so the worst case is
        one chunk evaluated twice, never corrupted or lost.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        lease = self.lease_path(key)
        payload = json.dumps(
            {"owner": self.owner, "acquired": time.time(), "ttl": ttl}
        )
        try:
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._steal(lease, payload)
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def _steal(self, lease: Path, payload: str) -> bool:
        try:
            current = json.loads(lease.read_text(encoding="utf-8"))
            expires = float(current["acquired"]) + float(current["ttl"])
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable lease (torn write, holder died mid-create):
            # treat as expired.
            expires = 0.0
        if time.time() < expires:
            return False
        tmp = lease.with_name(lease.name + f".{os.getpid()}.steal")
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, lease)
        except OSError:
            return False
        return True

    def release(self, key: str) -> None:
        """Drop a lease this executor holds (missing is fine)."""
        try:
            self.lease_path(key).unlink()
        except OSError:
            pass

    @contextmanager
    def lock(
        self,
        name: str = "compact",
        ttl: float = DEFAULT_LEASE_TTL,
        poll_seconds: float = 0.05,
    ):
        """A blocking named lock built on the same lease files.

        Spins (with ``poll_seconds`` sleeps) until the ``_<name>`` lease
        is acquired; the TTL bounds how long a crashed holder can block
        everyone else.
        """
        key = f"_{name}"
        while not self.claim(key, ttl=ttl):
            time.sleep(poll_seconds)
        try:
            yield
        finally:
            self.release(key)

    # -- garbage collection ---------------------------------------------------

    def gc(self, planned: Iterable[PlannedChunk]) -> int:
        """Delete the chunk + lease files of folded chunks; count removed."""
        removed = 0
        for chunk in planned:
            for path in (self.chunk_path(chunk.key), self.lease_path(chunk.key)):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        try:
            self.root.rmdir()  # only succeeds once the store is empty
        except OSError:
            pass
        return removed


# -- compaction ---------------------------------------------------------------

#: The fields that identify a cache row's cell.  A chunk whose every
#: cell is already cached (same trace fingerprint) was folded by another
#: executor and is skipped, which is what makes compaction idempotent
#: and concurrent-safe.
_CELL_FIELDS = (
    "benchmark",
    "fingerprint",
    "family",
    "cw_nominal",
    "model",
    "analyzer",
    "anchor",
    "resize",
    "mpl_nominal",
)


def _row_cell(row: Dict) -> Tuple:
    return tuple(row.get(field) for field in _CELL_FIELDS)


def chunk_folded(chunk: PlannedChunk, cache_path: PathLike) -> bool:
    """True when every cell ``chunk`` produces is already in the cache.

    How an executor awaiting another's chunk tells "folded and gc'd"
    (stop waiting) from "never written" (steal and redo) once both the
    chunk file and its lease are gone.
    """
    expected = chunk_cells(chunk)
    return bool(expected) and expected <= _cache_cells(Path(cache_path))


def chunk_cells(chunk: PlannedChunk) -> Set[Tuple]:
    """Every record cell ``chunk`` produces, computed without its file.

    ``ConfigSpec.key()`` is ``(family, cw_nominal, model, analyzer,
    anchor, resize)`` — exactly ``_CELL_FIELDS[2:8]`` — so a chunk's
    cells are fully determined by its plan entry.  Empty when the chunk
    was planned without ``mpl_nominals`` (pre-plan_chunks construction).
    """
    return {
        (chunk.benchmark, chunk.fingerprint) + spec.key() + (mpl,)
        for spec in chunk.specs
        for mpl in chunk.mpl_nominals
    }


def _cache_cells(cache_path: Path) -> Set[Tuple]:
    cells: Set[Tuple] = set()
    if not cache_path.exists():
        return cells
    with cache_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail; same tolerance as Sweep._load_cache
            cells.add(_row_cell(row))
    return cells


def compact_chunks(
    store: ChunkStore,
    planned: Sequence[PlannedChunk],
    cache_path: PathLike,
    db: Optional["ResultDB"] = None,
    metrics=None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> Dict[str, int]:
    """Fold completed chunks into the JSONL cache (and SQLite), then gc.

    Deterministic: chunks append in plan order, each row with the exact
    bytes the worker serialized, so a cache grown by compaction is
    byte-identical to one grown by a serial sweep over the same missing
    set.  Safe to run from several executors: the whole fold runs under
    the store's ``compact`` lock, a fresh re-read of the cache skips
    chunks another compactor already folded, and chunk files are only
    deleted after their rows are durably appended.

    Every chunk in ``planned`` must either have a valid file (the
    executor waits for stragglers before compacting) or already be fully
    folded into the cache — the latter happens when a faster executor
    compacted and garbage-collected it between our await and our fold,
    and is recognized from the chunk's plan-derived cells alone.  A
    chunk that is both missing and unfolded raises :class:`StoreError`.
    Returns fold counters.
    """
    cache_path = Path(cache_path)
    started = time.perf_counter()
    folded = 0
    skipped = 0
    rows_appended = 0
    with store.lock("compact", ttl=lease_ttl):
        present = _cache_cells(cache_path)
        pieces: List[str] = []
        for chunk in planned:
            loaded = store.read(chunk.key)
            if loaded is None:
                expected = chunk_cells(chunk)
                if expected and expected <= present:
                    skipped += 1  # folded and gc'd by another compactor
                    continue
                raise StoreError(
                    f"chunk {chunk.key} ({chunk.benchmark}, "
                    f"{len(chunk.specs)} specs) missing at compaction"
                )
            _, lines = loaded
            # Skip a chunk only when *every* cell is already cached
            # (another compactor folded it; a partially-present chunk —
            # possible when a serial run cached some of its MPLs — still
            # folds, matching serial re-evaluation's last-wins appends).
            # The check parses lazily and short-circuits on the first
            # absent cell, so a fresh compaction parses one line per
            # chunk instead of all of them.  Planned chunks are mutually
            # cell-disjoint, so `present` needs no per-chunk update.
            if lines and present and all(
                _row_cell(json.loads(line)) in present for line in lines
            ):
                skipped += 1  # another executor already folded it
                continue
            pieces.extend(lines)
            folded += 1
            rows_appended += len(lines)
        if pieces:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            with cache_path.open("a", encoding="utf-8") as handle:
                handle.write("".join(pieces))
                handle.flush()
                os.fsync(handle.fileno())
        if db is not None:
            db.sync_from_cache(cache_path, store.profile_name)
        store.gc(planned)
    try:
        # gc's own rmdir ran while the compact lease still existed; now
        # that the lock is released an empty store can actually go away.
        os.rmdir(store.root)
    except OSError:
        pass
    elapsed = time.perf_counter() - started
    if metrics is not None:
        metrics.histogram("store.compact_seconds").observe(elapsed)
        metrics.counter("store.chunks_folded").inc(folded)
        metrics.counter("store.chunks_skipped").inc(skipped)
        metrics.counter("store.rows_compacted").inc(rows_appended)
    return {
        "folded": folded,
        "skipped": skipped,
        "rows_appended": rows_appended,
        "seconds": elapsed,
    }


# -- SQLite result store ------------------------------------------------------

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id                INTEGER PRIMARY KEY,
    created_at        TEXT NOT NULL,
    profile           TEXT NOT NULL,
    grid_fingerprint  TEXT NOT NULL,
    jobs              INTEGER NOT NULL,
    elapsed_seconds   REAL NOT NULL,
    records_evaluated INTEGER NOT NULL,
    records_total     INTEGER NOT NULL,
    hostname          TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS configs (
    id         INTEGER PRIMARY KEY,
    family     TEXT NOT NULL,
    cw_nominal INTEGER NOT NULL,
    model      TEXT NOT NULL,
    analyzer   TEXT NOT NULL,
    anchor     TEXT NOT NULL,
    resize     TEXT NOT NULL,
    UNIQUE (family, cw_nominal, model, analyzer, anchor, resize)
);
CREATE TABLE IF NOT EXISTS records (
    profile             TEXT NOT NULL,
    benchmark           TEXT NOT NULL,
    config_id           INTEGER NOT NULL REFERENCES configs(id),
    mpl_nominal         INTEGER NOT NULL,
    fingerprint         TEXT NOT NULL,
    score               REAL NOT NULL,
    correlation         REAL NOT NULL,
    sensitivity         REAL NOT NULL,
    false_positives     REAL NOT NULL,
    corrected_score     REAL NOT NULL,
    num_detected_phases INTEGER NOT NULL,
    num_baseline_phases INTEGER NOT NULL,
    seq                 INTEGER NOT NULL,
    PRIMARY KEY (profile, benchmark, config_id, mpl_nominal)
);
CREATE INDEX IF NOT EXISTS records_by_benchmark
    ON records (profile, benchmark, mpl_nominal);
CREATE INDEX IF NOT EXISTS records_by_mpl
    ON records (profile, mpl_nominal);
CREATE INDEX IF NOT EXISTS records_by_score
    ON records (profile, score DESC);
CREATE INDEX IF NOT EXISTS configs_by_family
    ON configs (family, cw_nominal);
CREATE VIEW IF NOT EXISTS record_view AS
    SELECT r.profile, r.benchmark, c.family, c.cw_nominal, c.model,
           c.analyzer, c.anchor, c.resize, r.mpl_nominal, r.fingerprint,
           r.score, r.correlation, r.sensitivity, r.false_positives,
           r.corrected_score, r.num_detected_phases, r.num_baseline_phases,
           r.seq
    FROM records r JOIN configs c ON c.id = r.config_id;
"""

#: Columns ``best_scores`` may group or filter by (everything that names
#: a grid axis).  Whitelisted so user-supplied dimension names are never
#: spliced into SQL unchecked.
QUERY_DIMENSIONS = (
    "benchmark",
    "family",
    "cw_nominal",
    "model",
    "analyzer",
    "anchor",
    "resize",
    "mpl_nominal",
)

#: Metrics ``best_scores`` may maximize.
QUERY_METRICS = (
    "score",
    "corrected_score",
    "correlation",
    "sensitivity",
    "false_positives",
)

_RECORD_FIELDS = (
    "benchmark",
    "family",
    "cw_nominal",
    "model",
    "analyzer",
    "anchor",
    "resize",
    "mpl_nominal",
    "score",
    "correlation",
    "sensitivity",
    "false_positives",
    "corrected_score",
    "num_detected_phases",
    "num_baseline_phases",
)


class ResultDB:
    """The queryable sweep result store (stdlib ``sqlite3``).

    Strictly derived data: the JSONL cache stays the source of truth and
    :meth:`sync_from_cache` can rebuild the database from it at any time
    (``repro results ingest --rebuild``).  Sync is incremental — a meta
    row remembers the cache byte offset already ingested, so warm syncs
    parse only the appended tail — and upserts keyed on
    (profile, benchmark, config, MPL) reproduce the cache's
    last-row-wins semantics, with a ``seq`` column preserving append
    order so :meth:`load_records` returns records in cache order.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA busy_timeout = 30000")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
        self._config_ids: Dict[Tuple, int] = {}

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- meta -----------------------------------------------------------------

    def _meta(self, key: str, default: str = "") -> str:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else default

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )

    # -- ingest ---------------------------------------------------------------

    def _config_id(self, row: Dict) -> int:
        identity = (
            row["family"],
            row["cw_nominal"],
            row["model"],
            row["analyzer"],
            row["anchor"],
            row["resize"],
        )
        cached = self._config_ids.get(identity)
        if cached is not None:
            return cached
        self._conn.execute(
            "INSERT OR IGNORE INTO configs "
            "(family, cw_nominal, model, analyzer, anchor, resize) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            identity,
        )
        config_id = self._conn.execute(
            "SELECT id FROM configs WHERE family = ? AND cw_nominal = ? "
            "AND model = ? AND analyzer = ? AND anchor = ? AND resize = ?",
            identity,
        ).fetchone()[0]
        self._config_ids[identity] = config_id
        return config_id

    def sync_from_cache(
        self, cache_path: PathLike, profile: str, full: bool = False
    ) -> int:
        """Ingest cache rows appended since the last sync; count them.

        ``full=True`` drops the profile's rows and re-reads the whole
        file.  A cache smaller than the remembered offset means the file
        was rebuilt, which also triggers a full re-read.  An
        unterminated final line (a torn append in progress) is left for
        the next sync.
        """
        cache_path = Path(cache_path)
        offset_key = f"ingest-offset:{profile}"
        seq_key = f"ingest-seq:{profile}"
        offset = 0 if full else int(self._meta(offset_key, "0"))
        seq = 0 if full else int(self._meta(seq_key, "0"))
        try:
            size = cache_path.stat().st_size
        except OSError:
            size = 0
        if full or offset > size:
            offset, seq = 0, 0
            self._conn.execute("DELETE FROM records WHERE profile = ?", (profile,))
        ingested = 0
        batch: List[Tuple] = []
        if size > offset:
            with cache_path.open("rb") as handle:
                handle.seek(offset)
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        break
                    offset += len(raw)
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    try:
                        row = json.loads(stripped.decode("utf-8"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        continue  # torn line; skipped like Sweep._load_cache
                    batch.append(self._record_tuple(profile, row, seq))
                    seq += 1
                    ingested += 1
        if batch:
            # One executemany instead of per-row execute: same
            # INSERT OR REPLACE semantics (later tuples in the batch
            # still overwrite earlier ones on PK collision, preserving
            # cache last-row-wins), several times faster per row.
            self._conn.executemany(
                "INSERT OR REPLACE INTO records "
                "(profile, benchmark, config_id, mpl_nominal, fingerprint, "
                " score, correlation, sensitivity, false_positives, "
                " corrected_score, num_detected_phases, num_baseline_phases, "
                " seq) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                batch,
            )
        self._set_meta(offset_key, str(offset))
        self._set_meta(seq_key, str(seq))
        self._conn.commit()
        return ingested

    def _record_tuple(self, profile: str, row: Dict, seq: int) -> Tuple:
        """One ``records`` parameter tuple (resolves the config id)."""
        return (
            profile,
            row["benchmark"],
            self._config_id(row),
            row["mpl_nominal"],
            row.get("fingerprint", ""),
            row["score"],
            row["correlation"],
            row["sensitivity"],
            row["false_positives"],
            row["corrected_score"],
            row["num_detected_phases"],
            row["num_baseline_phases"],
            seq,
        )

    def record_run(
        self,
        profile: str,
        grid_fingerprint: str,
        jobs: int,
        elapsed_seconds: float,
        records_evaluated: int,
        records_total: int,
    ) -> None:
        """Append one row to ``runs`` (called per evaluating sweep)."""
        with self._conn:
            self._conn.execute(
                "INSERT INTO runs (created_at, profile, grid_fingerprint, jobs,"
                " elapsed_seconds, records_evaluated, records_total, hostname) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    datetime.now(timezone.utc).isoformat(timespec="seconds"),
                    profile,
                    grid_fingerprint,
                    jobs,
                    round(elapsed_seconds, 6),
                    records_evaluated,
                    records_total,
                    socket.gethostname(),
                ),
            )

    # -- queries --------------------------------------------------------------

    def load_records(self, profile: str) -> List[SweepRecord]:
        """Every record for ``profile``, in cache append order."""
        cursor = self._conn.execute(
            f"SELECT {', '.join(_RECORD_FIELDS)} FROM record_view "
            "WHERE profile = ? ORDER BY seq",
            (profile,),
        )
        return [
            SweepRecord.from_row(dict(zip(_RECORD_FIELDS, values)))
            for values in cursor
        ]

    def best_scores(
        self,
        profile: str,
        by: Sequence[str] = ("family",),
        metric: str = "score",
        where: Optional[Dict[str, object]] = None,
        limit: Optional[int] = None,
    ) -> Tuple[List[str], List[Tuple]]:
        """Best ``metric`` per combination of the ``by`` dimensions.

        Returns ``(column names, rows)``; the last two columns are the
        best metric value and the number of records aggregated.  Both
        ``by`` and ``where`` keys are validated against
        :data:`QUERY_DIMENSIONS` (and ``metric`` against
        :data:`QUERY_METRICS`) before touching SQL.
        """
        dims = list(by)
        for dim in dims:
            if dim not in QUERY_DIMENSIONS:
                raise ValueError(
                    f"unknown dimension {dim!r} (choose from "
                    f"{', '.join(QUERY_DIMENSIONS)})"
                )
        if metric not in QUERY_METRICS:
            raise ValueError(
                f"unknown metric {metric!r} (choose from {', '.join(QUERY_METRICS)})"
            )
        clauses = ["profile = ?"]
        params: List[object] = [profile]
        for column, value in (where or {}).items():
            if column not in QUERY_DIMENSIONS:
                raise ValueError(f"unknown filter column {column!r}")
            clauses.append(f"{column} = ?")
            params.append(value)
        select = ", ".join(dims + [f"MAX({metric})", "COUNT(*)"])
        sql = (
            f"SELECT {select} FROM record_view WHERE {' AND '.join(clauses)} "
            f"GROUP BY {', '.join(dims)} ORDER BY {', '.join(dims)}"
        )
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = self._conn.execute(sql, params).fetchall()
        return dims + [f"best_{metric}", "records"], rows

    def benchmarks(self, profile: str) -> List[str]:
        """Distinct benchmark names stored for ``profile``."""
        cursor = self._conn.execute(
            "SELECT DISTINCT benchmark FROM records WHERE profile = ? "
            "ORDER BY benchmark",
            (profile,),
        )
        return [row[0] for row in cursor]

    def runs(self) -> List[Dict]:
        """The ``runs`` table, oldest first."""
        cursor = self._conn.execute(
            "SELECT id, created_at, profile, grid_fingerprint, jobs, "
            "elapsed_seconds, records_evaluated, records_total, hostname "
            "FROM runs ORDER BY id"
        )
        names = [desc[0] for desc in cursor.description]
        return [dict(zip(names, row)) for row in cursor]


def open_readonly(path: PathLike) -> sqlite3.Connection:
    """A read-only connection for ad-hoc SQL (``repro results sql``)."""
    return sqlite3.connect(f"file:{Path(path)}?mode=ro", uri=True)
