"""Detection-overhead analysis — the paper's second future-work direction.

Section 7: *"we plan to investigate and optimize the overhead of
accurate phase detection. There are three sources of overhead in a
phase-aware optimization system: profile collection, phase detection,
and phase consumption."*

This module measures the *detection* component in machine-independent
units: how many similarity evaluations a configuration performs, how
many window updates it does, and how much window state it keeps —
the quantities that dominate a real deployment's cost, independent of
the host. Wall-clock throughput is reported alongside: every interval
is measured on the monotonic ``time.perf_counter`` clock, and with
``repeats > 1`` the detector runs several times so the report carries
the spread (std/min/max), not just a single sample — single wall-clock
samples on a shared machine are noise.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import DetectorConfig
from repro.core.detector import PhaseDetector
from repro.core.models import SimilarityModel
from repro.profiles.trace import BranchTrace


@dataclass(frozen=True)
class OverheadReport:
    """Machine-independent detection costs for one (trace, config) run."""

    config_label: str
    trace_length: int
    similarity_evaluations: int
    window_updates: int          # individual element moves through windows
    anchor_operations: int
    window_flushes: int
    peak_tw_length: int
    peak_tracked_elements: int   # distinct elements across both count tables
    wall_seconds: float          # mean over ``repeats`` runs (perf_counter)
    wall_std: float = 0.0        # sample std dev (0.0 with one repeat)
    wall_min: float = 0.0
    wall_max: float = 0.0
    repeats: int = 1

    @property
    def elements_per_second(self) -> float:
        """Wall-clock throughput of the (reference) detector."""
        if self.wall_seconds == 0:
            return float("inf")
        return self.trace_length / self.wall_seconds

    @property
    def evaluations_per_element(self) -> float:
        """Similarity evaluations per consumed profile element."""
        if self.trace_length == 0:
            return 0.0
        return self.similarity_evaluations / self.trace_length


class _MeteredModel:
    """Counting proxy around a SimilarityModel (composition, not patching)."""

    def __init__(self, inner: SimilarityModel) -> None:
        self._inner = inner
        self.similarity_evaluations = 0
        self.window_updates = 0
        self.anchor_operations = 0
        self.window_flushes = 0
        self.peak_tw_length = 0
        self.peak_tracked = 0

    # -- metered operations ------------------------------------------------

    def push(self, elements) -> None:
        elements = list(elements)
        self._inner.push(elements)
        # Each element enters the CW; full windows also move one element
        # CW->TW and may evict one from the TW.
        self.window_updates += len(elements)
        self._sample()

    def similarity(self) -> float:
        self.similarity_evaluations += 1
        return self._inner.similarity()

    def anchor_and_resize(self, anchor_policy, resize_policy, adaptive) -> int:
        self.anchor_operations += 1
        return self._inner.anchor_and_resize(anchor_policy, resize_policy, adaptive)

    def clear_and_seed(self, seed_elements) -> None:
        self.window_flushes += 1
        self._inner.clear_and_seed(seed_elements)

    def _sample(self) -> None:
        tw_length = self._inner.tw_length
        if tw_length > self.peak_tw_length:
            self.peak_tw_length = tw_length
        tracked = len(self._inner.cw_counts) + len(self._inner.tw_counts)
        if tracked > self.peak_tracked:
            self.peak_tracked = tracked

    # -- passthrough state -----------------------------------------------------

    @property
    def filled(self) -> bool:
        return self._inner.filled

    @property
    def consumed(self) -> int:
        return self._inner.consumed

    @property
    def cw_length(self) -> int:
        return self._inner.cw_length

    @property
    def tw_length(self) -> int:
        return self._inner.tw_length

    @property
    def observer(self):
        return self._inner.observer

    @observer.setter
    def observer(self, value) -> None:
        self._inner.observer = value


def measure_overhead(
    trace: BranchTrace, config: DetectorConfig, repeats: int = 1
) -> OverheadReport:
    """Run the reference detector with a metered model; report the costs.

    The machine-independent counts come from the first run (they are
    deterministic); the wall-clock figures are summarized over
    ``repeats`` runs on the monotonic clock.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timings: List[float] = []
    meter: _MeteredModel = None  # type: ignore[assignment]
    for iteration in range(repeats):
        detector = PhaseDetector(config)
        metered = _MeteredModel(detector.model)
        detector.model = metered
        started = time.perf_counter()
        detector.run(trace)
        timings.append(time.perf_counter() - started)
        if iteration == 0:
            meter = metered
    return OverheadReport(
        config_label=config.describe(),
        trace_length=len(trace),
        similarity_evaluations=meter.similarity_evaluations,
        window_updates=meter.window_updates,
        anchor_operations=meter.anchor_operations,
        window_flushes=meter.window_flushes,
        peak_tw_length=meter.peak_tw_length,
        peak_tracked_elements=meter.peak_tracked,
        wall_seconds=statistics.fmean(timings),
        wall_std=statistics.stdev(timings) if len(timings) > 1 else 0.0,
        wall_min=min(timings),
        wall_max=max(timings),
        repeats=repeats,
    )


def overhead_comparison(
    trace: BranchTrace, configs: Sequence[DetectorConfig], repeats: int = 1
) -> List[OverheadReport]:
    """Measure several configurations over the same trace."""
    return [measure_overhead(trace, config, repeats=repeats) for config in configs]
