"""Suite profiles and the detector parameter grid.

The paper evaluates >10,000 detector instantiations over traces of
2.8M-63M branches.  We keep the same *nominal* parameter labels (MPL
1K-200K, CW 500-100K) and map them onto our shorter traces through a
single scale factor, so every table and figure lines up with the
paper's rows and series (see DESIGN.md §5).

A :class:`SuiteProfile` bundles the workload scale, the nominal→actual
mapping, and the grid density:

- ``QUICK``   — small traces and grid (CI, tests, fast benches);
- ``DEFAULT`` — the full grid on ~370K total elements (what the
  reported experiments use);
- ``PAPER``   — the paper's actual element counts (slow; provided for
  completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)

#: nominal → actual conversion baseline: the DEFAULT suite's traces are
#: about 1/20 the paper's phase scale.
BASE_MPL_SCALE = 0.05

#: The paper's nominal MPL values (Table 1(b)) and the extension used in
#: Figures 4 and 8.
MPL_NOMINALS: Tuple[int, ...] = (1_000, 5_000, 10_000, 25_000, 50_000, 100_000)
MPL_NOMINALS_EXTENDED: Tuple[int, ...] = MPL_NOMINALS + (200_000,)
#: The MPL subset most figures report (Sections 4.3-4.4).
MPL_NOMINALS_FIGURES: Tuple[int, ...] = (1_000, 10_000, 50_000, 100_000)

#: The paper's nominal CW sizes (Section 4.2).
CW_NOMINALS: Tuple[int, ...] = (500, 1_000, 5_000, 10_000, 25_000, 50_000, 100_000)

THRESHOLD_VALUES: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8)
DELTA_VALUES: Tuple[float, ...] = (0.01, 0.05, 0.1, 0.2, 0.3, 0.4)


@dataclass(frozen=True)
class SuiteProfile:
    """One experiment scale: workload size plus nominal→actual mapping."""

    name: str
    workload_scale: float
    thresholds: Tuple[float, ...] = THRESHOLD_VALUES
    deltas: Tuple[float, ...] = DELTA_VALUES
    cw_nominals: Tuple[int, ...] = CW_NOMINALS
    mpl_nominals: Tuple[int, ...] = MPL_NOMINALS

    @property
    def scale_factor(self) -> float:
        """nominal units → actual profile elements."""
        return BASE_MPL_SCALE * self.workload_scale

    def actual(self, nominal: int) -> int:
        """Convert a nominal MPL/CW value to actual profile elements."""
        return max(2, round(nominal * self.scale_factor))

    def actual_mpls(self, nominals: Optional[Tuple[int, ...]] = None) -> List[int]:
        """Actual MPL values for ``nominals`` (default: the profile's grid)."""
        return [self.actual(n) for n in (nominals or self.mpl_nominals)]


QUICK = SuiteProfile(
    name="quick",
    workload_scale=0.3,
    thresholds=(0.5, 0.6, 0.8),
    deltas=(0.01, 0.05, 0.2),
    cw_nominals=(500, 1_000, 5_000, 25_000, 100_000),
)
DEFAULT = SuiteProfile(name="default", workload_scale=1.0)
PAPER = SuiteProfile(name="paper", workload_scale=20.0)

PROFILES = {p.name: p for p in (QUICK, DEFAULT, PAPER)}


#: ConfigSpec families that are *window policies* of the paper's grid
#: (everything else names a detector family from the
#: :mod:`repro.comparators` registry).
WINDOW_FAMILIES: Tuple[str, ...] = ("fixed", "constant", "adaptive")


@dataclass(frozen=True)
class ConfigSpec:
    """One grid point, in nominal units.

    ``family`` is one of ``fixed`` (skipFactor = CW = TW, the extant
    approach), ``constant`` (Constant TW, skipFactor 1), or ``adaptive``
    (Adaptive TW, skipFactor 1) for the paper's windowed grid — or a
    detector-family name from the :mod:`repro.comparators` registry
    (``focus``, ``newma``, ...), in which case ``value`` is the
    family's decision bar (``stat_threshold``) and the model/analyzer
    fields are carried but unused.
    """

    family: str
    cw_nominal: int
    model: ModelKind
    analyzer: AnalyzerKind
    value: float  # threshold or delta (windowed) / stat bar (families)
    anchor: AnchorPolicy = AnchorPolicy.RN
    resize: ResizePolicy = ResizePolicy.SLIDE

    def analyzer_label(self) -> str:
        """'thr=0.6' or 'avg=0.05' — the figures' x-axis labels.

        Detector-family grid points label their decision bar
        ('stat=16.0') instead.
        """
        if self.family not in WINDOW_FAMILIES:
            return f"stat={self.value}"
        kind = "thr" if self.analyzer is AnalyzerKind.THRESHOLD else "avg"
        return f"{kind}={self.value}"

    def key(self) -> Tuple:
        """The spec's identity tuple — the axes every persistence layer
        keys on (sweep record cache, chunk store, result database)."""
        return (
            self.family,
            self.cw_nominal,
            self.model.value,
            self.analyzer_label(),
            self.anchor.value,
            self.resize.value,
        )

    def to_config(self, profile: SuiteProfile) -> DetectorConfig:
        """Materialize the actual DetectorConfig for ``profile``."""
        cw = profile.actual(self.cw_nominal)
        if self.family not in WINDOW_FAMILIES:
            return DetectorConfig(
                cw_size=cw,
                skip_factor=1,
                family=self.family,
                stat_threshold=self.value,
            )
        threshold = self.value if self.analyzer is AnalyzerKind.THRESHOLD else 0.5
        delta = self.value if self.analyzer is AnalyzerKind.AVERAGE else 0.05
        if self.family == "fixed":
            return DetectorConfig(
                cw_size=cw,
                tw_size=cw,
                skip_factor=cw,
                trailing=TrailingPolicy.CONSTANT,
                model=self.model,
                analyzer=self.analyzer,
                threshold=threshold,
                delta=delta,
            )
        trailing = (
            TrailingPolicy.ADAPTIVE if self.family == "adaptive" else TrailingPolicy.CONSTANT
        )
        return DetectorConfig(
            cw_size=cw,
            tw_size=cw,
            skip_factor=1,
            trailing=trailing,
            anchor=self.anchor,
            resize=self.resize,
            model=self.model,
            analyzer=self.analyzer,
            threshold=threshold,
            delta=delta,
        )


def _analyzer_points(profile: SuiteProfile) -> List[Tuple[AnalyzerKind, float]]:
    points: List[Tuple[AnalyzerKind, float]] = []
    points.extend((AnalyzerKind.THRESHOLD, t) for t in profile.thresholds)
    points.extend((AnalyzerKind.AVERAGE, d) for d in profile.deltas)
    return points


def paper_grid(profile: SuiteProfile) -> List[ConfigSpec]:
    """The full evaluation grid (Sections 4.2-4.4 plus the Section 5
    anchoring/resizing ablation).

    - three families × all CW sizes × both models × all analyzers;
    - the three non-default (anchor, resize) Adaptive variants with the
      unweighted model (Figure 7's ablation).
    """
    specs: List[ConfigSpec] = []
    analyzers = _analyzer_points(profile)
    for family in ("fixed", "constant", "adaptive"):
        for cw in profile.cw_nominals:
            for model in (ModelKind.UNWEIGHTED, ModelKind.WEIGHTED):
                for analyzer, value in analyzers:
                    specs.append(ConfigSpec(family, cw, model, analyzer, value))
    for anchor, resize in (
        (AnchorPolicy.LNN, ResizePolicy.SLIDE),
        (AnchorPolicy.RN, ResizePolicy.MOVE),
        (AnchorPolicy.LNN, ResizePolicy.MOVE),
    ):
        for cw in profile.cw_nominals:
            for analyzer, value in analyzers:
                specs.append(
                    ConfigSpec(
                        "adaptive",
                        cw,
                        ModelKind.UNWEIGHTED,
                        analyzer,
                        value,
                        anchor=anchor,
                        resize=resize,
                    )
                )
    return specs


#: The decision-bar values each detector family sweeps (its analyzer
#: axis).  Chosen around each family's documented default bar.
FAMILY_BAR_VALUES = {
    "focus": (8.0, 16.0, 32.0),
    "newma": (3.0, 4.0, 5.0),
    "das_pearson": (0.6, 0.8),
    "lu_dynamo": (1.5, 2.0, 3.0),
    "dhodapkar_smith": (0.5,),
}


def family_grid(profile: SuiteProfile, families: Tuple[str, ...]) -> List[ConfigSpec]:
    """Grid points for non-windowed detector families.

    Each family sweeps the profile's CW nominals (its warm-up/window
    scale) against :data:`FAMILY_BAR_VALUES`.  Appended to
    :func:`paper_grid` by ``repro sweep --families`` — strictly
    additive, so the windowed grid's records and cache keys are
    untouched.
    """
    from repro.comparators import engine_family

    specs: List[ConfigSpec] = []
    for family in families:
        engine_family(family)  # validate the name early, with the registry's error
        bars = FAMILY_BAR_VALUES.get(family, (1.0,))
        for cw in profile.cw_nominals:
            for value in bars:
                specs.append(
                    ConfigSpec(
                        family,
                        cw,
                        ModelKind.UNWEIGHTED,
                        AnalyzerKind.THRESHOLD,
                        value,
                    )
                )
    return specs


def grid_size(profile: SuiteProfile) -> int:
    """Number of grid points for ``profile``."""
    return len(paper_grid(profile))
