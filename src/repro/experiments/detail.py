"""Per-benchmark detail tables.

The paper repeatedly appeals to per-benchmark data behind its averaged
figures ("when we consider the individual benchmark data, however...").
These generators expose that level: best score per (benchmark, TW
policy) at each MPL, and the per-benchmark winner between two
dimensions of interest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.aggregate import (
    and_,
    best_by,
    cw_at_most_half,
    family_default,
)
from repro.experiments.config_space import MPL_NOMINALS
from repro.experiments.report import nominal_label, render_table
from repro.experiments.runner import SweepRecord


@dataclass
class PerBenchmarkTable:
    """Best scores per benchmark for one TW-policy family."""

    family: str
    mpl_nominals: List[int]
    #: benchmark -> [best score per MPL] (None when no config qualified)
    rows: Dict[str, List[Optional[float]]]

    def render(self) -> str:
        headers = ["Benchmark"] + [nominal_label(m) for m in self.mpl_nominals]
        body = []
        for benchmark, values in self.rows.items():
            body.append(
                [benchmark]
                + ["-" if v is None else round(v, 3) for v in values]
            )
        return render_table(
            headers,
            body,
            title=f"Best score per benchmark ({self.family} TW, CW <= MPL/2)",
        )


def per_benchmark_best(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    family: str,
    mpl_nominals: Sequence[int] = MPL_NOMINALS,
) -> PerBenchmarkTable:
    """Best score per (benchmark, MPL) for one family, CW <= MPL/2."""
    best = best_by(
        records,
        key=lambda r: (r.benchmark, r.mpl_nominal),
        where=and_(family_default(family), cw_at_most_half),
    )
    rows: Dict[str, List[Optional[float]]] = {}
    for benchmark in benchmarks:
        rows[benchmark] = [best.get((benchmark, m)) for m in mpl_nominals]
    return PerBenchmarkTable(family=family, mpl_nominals=list(mpl_nominals), rows=rows)


@dataclass
class WinnerTable:
    """Per-benchmark winner between two dimension values."""

    dimension: str
    left: str
    right: str
    mpl_nominals: List[int]
    #: benchmark -> ['left' | 'right' | 'tie' | '-' per MPL]
    rows: Dict[str, List[str]]

    def render(self) -> str:
        headers = ["Benchmark"] + [nominal_label(m) for m in self.mpl_nominals]
        body = [[benchmark] + cells for benchmark, cells in self.rows.items()]
        return render_table(
            headers,
            body,
            title=(
                f"Per-benchmark winner: {self.left} vs {self.right} "
                f"({self.dimension}, CW <= MPL/2)"
            ),
        )

    def win_counts(self) -> Tuple[int, int]:
        """(left wins, right wins) across all cells."""
        left = sum(cells.count(self.left) for cells in self.rows.values())
        right = sum(cells.count(self.right) for cells in self.rows.values())
        return left, right


def per_benchmark_winner(
    records: Sequence[SweepRecord],
    benchmarks: Sequence[str],
    dimension: str,
    left: str,
    right: str,
    mpl_nominals: Sequence[int] = MPL_NOMINALS,
    tie_margin: float = 0.005,
) -> WinnerTable:
    """Which of two dimension values wins per (benchmark, MPL).

    ``dimension`` is ``"family"`` or ``"model"``; ``left``/``right`` are
    its two values (e.g. ``"constant"`` vs ``"adaptive"``, or
    ``"unweighted"`` vs ``"weighted"``).
    """
    if dimension == "family":
        def member(record: SweepRecord, value: str) -> bool:
            return family_default(value)(record)
    elif dimension == "model":
        def member(record: SweepRecord, value: str) -> bool:
            return record.model == value and (
                family_default("adaptive")(record)
                or family_default("constant")(record)
            )
    else:
        raise ValueError(f"unknown dimension {dimension!r}")

    def best_for(value: str) -> Dict[Tuple, float]:
        return best_by(
            records,
            key=lambda r: (r.benchmark, r.mpl_nominal),
            where=and_(lambda r, v=value: member(r, v), cw_at_most_half),
        )

    left_best = best_for(left)
    right_best = best_for(right)
    rows: Dict[str, List[str]] = {}
    for benchmark in benchmarks:
        cells: List[str] = []
        for nominal in mpl_nominals:
            key = (benchmark, nominal)
            l_value = left_best.get(key)
            r_value = right_best.get(key)
            if l_value is None or r_value is None:
                cells.append("-")
            elif abs(l_value - r_value) <= tie_margin:
                cells.append("tie")
            else:
                cells.append(left if l_value > r_value else right)
        rows[benchmark] = cells
    return WinnerTable(
        dimension=dimension,
        left=left,
        right=right,
        mpl_nominals=list(mpl_nominals),
        rows=rows,
    )
