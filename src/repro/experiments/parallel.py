"""Multiprocess sweep execution.

The paper's evaluation is >10,000 detector instantiations (Section 4);
each (benchmark, grid point) cell is independent, so the sweep is
embarrassingly parallel.  This module fans (benchmark, spec-chunk) work
items out over a :class:`~concurrent.futures.ProcessPoolExecutor` while
preserving the serial sweep's observable behavior exactly:

* **Workers load traces from the on-disk cache, not the pipe.**  The
  parent materializes every trace before the pool starts (a cache
  miss runs the workload once); workers then call
  ``load_traces``/:meth:`BaselineSet.for_benchmark` themselves, so the
  only things pickled across the pipe are small ``ConfigSpec`` values
  outbound and flat record rows inbound.
* **Per-worker memoization.**  Each worker process keeps one
  ``(branch trace, BaselineSet)`` pair per benchmark it has seen, so the
  expensive oracle solve is paid at most ``jobs`` times per benchmark,
  and chunking keeps that amortized over many grid points.
* **Single-pass banks.**  A work item is a trace name plus a slice of
  grid points; the worker evaluates the slice as one
  :class:`~repro.core.bank.DetectorBank` pass over the trace (see
  :func:`repro.experiments.runner.evaluate_bank`), decoding and
  chunking the trace once per batch instead of once per grid point.
* **Ordered delivery.**  Chunks are submitted in deterministic
  (benchmark-major, spec-order) sequence and results are re-ordered on
  receipt, so cache appends happen in exactly the order the serial
  sweep would produce — a parallel run's JSONL cache is byte-identical
  to a serial run's, and an interrupted run leaves a valid prefix that
  the next run treats as warm.
* **Progress/ETA.**  With ``progress=True`` a per-benchmark line
  (configs evaluated, wall time, configs/s) plus a running ETA for the
  whole sweep is logged at INFO on the ``repro.sweep`` logger (the CLI
  routes it to stderr; see :mod:`repro.obs.logsetup`).
* **Per-worker accounting.**  Every chunk result carries its worker's
  pid, wall time and record count, plus a cumulative snapshot of the
  worker's process-local metrics registry (trace reads, cache hits).
  After :meth:`ParallelSweepExecutor.run` the aggregation is available
  as :attr:`worker_stats`/:attr:`worker_metrics` — the sum of
  per-worker record counts equals the records delivered, which is the
  invariant the run manifest records and ``repro obs summary`` checks.
* **Opt-in chunk profiling.**  With ``profiling=True`` each chunk is
  wrapped in a :class:`~repro.obs.profiling.ChunkProfiler` (wall time +
  ``tracemalloc`` peak); profiles come back in :attr:`chunk_profiles`.

Worker count resolution order: explicit ``jobs`` argument, then the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.

The on-disk formats this executor relies on are specified in
``docs/formats.md``; the sweep lifecycle in ``docs/sweep.md``; the
metrics and manifest schema in ``docs/observability.md``.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.runner import BaselineSet, SweepRecord, evaluate_bank
from repro.obs.metrics import GLOBAL_METRICS
from repro.obs.profiling import ChunkProfiler

logger = logging.getLogger("repro.sweep")

#: Grid points per work item.  Large enough to amortize pipe and
#: memoization overhead, small enough to load-balance a skewed grid.
DEFAULT_CHUNK_SIZE = 8


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_JOBS``, then cores.

    Raises :class:`ValueError` for a non-positive or unparseable count.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# -- worker side --------------------------------------------------------------
#
# Module-level so it pickles under both fork and spawn start methods.
# _init_worker runs once per worker process; _WORKER_STATE is therefore
# per-process, never shared.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    profile: SuiteProfile,
    cache_dir: Optional[str],
    mpl_nominals: Tuple[int, ...],
    profiling: bool = False,
    bank: bool = True,
    kernels: Optional[bool] = None,
    batched: Optional[bool] = None,
    mmap: Optional[bool] = None,
) -> None:
    _WORKER_STATE["profile"] = profile
    _WORKER_STATE["cache_dir"] = cache_dir
    _WORKER_STATE["mpl_nominals"] = mpl_nominals
    _WORKER_STATE["benchmarks"] = {}
    _WORKER_STATE["profiling"] = profiling
    _WORKER_STATE["bank"] = bank
    _WORKER_STATE["kernels"] = kernels
    _WORKER_STATE["batched"] = batched
    _WORKER_STATE["mmap"] = mmap
    # A forked worker inherits the parent's accumulated counts; reset so
    # the snapshots shipped back are purely this worker's own activity.
    GLOBAL_METRICS.reset()


def _benchmark_context(benchmark: str):
    """Per-worker memoized (branch trace, baselines) for a benchmark."""
    contexts: Dict = _WORKER_STATE["benchmarks"]  # type: ignore[assignment]
    if benchmark not in contexts:
        from repro.workloads.suite import load_traces

        profile: SuiteProfile = _WORKER_STATE["profile"]  # type: ignore[assignment]
        cache_dir = _WORKER_STATE["cache_dir"]
        # mmap (default on) maps the cached trace and its dense-code
        # sidecar read-only, so all workers share one physical copy of
        # each through the OS page cache instead of a heap copy apiece.
        branch_trace, call_loop = load_traces(
            benchmark,
            scale=profile.workload_scale,
            cache_dir=cache_dir,
            mmap=_WORKER_STATE.get("mmap"),  # type: ignore[arg-type]
        )
        baselines = BaselineSet(
            call_loop,
            profile,
            _WORKER_STATE["mpl_nominals"],  # type: ignore[arg-type]
            name=benchmark,
        )
        contexts[benchmark] = (branch_trace, baselines)
    return contexts[benchmark]


def _evaluate_chunk(benchmark: str, specs: Sequence[ConfigSpec]) -> Dict:
    """Evaluate one work item; return rows plus this worker's accounting.

    The result is ``{"rows": [...], "stats": {...}}`` where ``stats``
    carries the worker pid, this chunk's wall time / config / record
    counts, the optional :class:`ChunkProfiler` memory peak, and a
    cumulative snapshot of the worker's process-local metrics registry
    (the parent keeps the latest snapshot per pid and merges them).
    """
    branch_trace, baselines = _benchmark_context(benchmark)
    profile: SuiteProfile = _WORKER_STATE["profile"]  # type: ignore[assignment]
    bank = bool(_WORKER_STATE.get("bank", True))
    kernels = _WORKER_STATE.get("kernels")  # Optional[bool]; None = env default
    batched = _WORKER_STATE.get("batched")  # Optional[bool]; None = env default
    profiler = (
        ChunkProfiler(f"{benchmark}[{len(specs)} specs]")
        if _WORKER_STATE.get("profiling")
        else None
    )
    started = time.perf_counter()
    if profiler is not None:
        with profiler:
            records = evaluate_bank(
                branch_trace, baselines, specs, profile, bank=bank,
                kernels=kernels, batched=batched,
            )
    else:
        records = evaluate_bank(
            branch_trace, baselines, specs, profile, bank=bank,
            kernels=kernels, batched=batched,
        )
    rows: List[Dict] = [record.to_row() for record in records]
    wall = time.perf_counter() - started
    # Per-chunk wall time lands in the worker's process-local histogram;
    # the cumulative snapshot below ships it home, where the parent's
    # latest-per-pid merge folds it into the manifest (histograms merge
    # associatively, so worker order does not matter).
    GLOBAL_METRICS.histogram("sweep.job_seconds").observe(wall)
    stats: Dict = {
        "pid": os.getpid(),
        "wall_seconds": wall,
        "configs": len(specs),
        "records": len(rows),
        "peak_bytes": profiler.profile.peak_bytes if profiler is not None else None,
        "metrics": GLOBAL_METRICS.snapshot(),
    }
    return {"rows": rows, "stats": stats}


# -- parent side --------------------------------------------------------------


@dataclass
class _Chunk:
    """One submitted work item and its place in the deterministic order."""

    index: int
    benchmark: str
    specs: List[ConfigSpec]


@dataclass
class _Progress:
    """Wall-clock accounting for the progress/ETA report.

    All interval math uses the monotonic ``time.perf_counter`` clock;
    the report goes to the ``repro.sweep`` logger at INFO.
    """

    total_configs: int
    started: float = field(default_factory=time.perf_counter)
    done_configs: int = 0
    benchmark_configs: Dict[str, int] = field(default_factory=dict)
    benchmark_started: Dict[str, float] = field(default_factory=dict)

    def note(self, profile_name: str, benchmark: str, configs: int,
             benchmark_finished: bool) -> None:
        now = time.perf_counter()
        self.benchmark_started.setdefault(benchmark, now)
        self.done_configs += configs
        self.benchmark_configs[benchmark] = (
            self.benchmark_configs.get(benchmark, 0) + configs
        )
        if not benchmark_finished:
            return
        elapsed = now - self.started
        rate = self.done_configs / elapsed if elapsed > 0 else float("inf")
        remaining = self.total_configs - self.done_configs
        eta = remaining / rate if rate > 0 else 0.0
        bench_configs = self.benchmark_configs[benchmark]
        bench_elapsed = now - self.benchmark_started[benchmark]
        logger.info(
            "[%s] %s: %d configs in %.1fs (%.1f configs/s overall, "
            "%d/%d done, eta %.0fs)",
            profile_name, benchmark, bench_configs, bench_elapsed, rate,
            self.done_configs, self.total_configs, eta,
        )


class ParallelSweepExecutor:
    """Fan sweep work items over a process pool, delivering in order.

    Args:
        profile: the suite profile workers evaluate under.
        cache_dir: the suite trace cache directory workers load from
            (must already contain every trace — the parent's
            ``load_suite`` guarantees this).
        mpl_nominals: nominal MPLs each grid point is scored at.
        jobs: worker count (``None`` → :func:`resolve_jobs`).
        chunk_size: grid points per work item (``None`` → a size that
            gives each worker several items per benchmark, capped at
            :data:`DEFAULT_CHUNK_SIZE`).
        profiling: wrap each chunk in a :class:`ChunkProfiler`
            (wall time + tracemalloc peak); see :attr:`chunk_profiles`.

    After :meth:`run` returns, :attr:`worker_stats` holds one
    accounting entry per worker process, :attr:`worker_metrics` the
    latest cumulative metrics snapshot per worker, and
    :attr:`chunk_profiles` any chunk profiles collected.
    """

    def __init__(
        self,
        profile: SuiteProfile,
        cache_dir,
        mpl_nominals: Sequence[int],
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        profiling: bool = False,
        bank: bool = True,
        kernels: Optional[bool] = None,
        batched: Optional[bool] = None,
        mmap: Optional[bool] = None,
    ) -> None:
        self.profile = profile
        self.cache_dir = cache_dir
        self.mpl_nominals = tuple(mpl_nominals)
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.profiling = profiling
        self.bank = bank
        self.kernels = kernels
        self.batched = batched
        self.mmap = mmap
        self.worker_stats: List[Dict] = []
        self.worker_metrics: Dict[int, Dict] = {}
        self.chunk_profiles: List[Dict] = []

    def _chunk_specs(self, specs: Sequence[ConfigSpec]) -> List[List[ConfigSpec]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # ~4 items per worker per benchmark for load balance.
            size = max(1, min(DEFAULT_CHUNK_SIZE, -(-len(specs) // (self.jobs * 4))))
        return [list(specs[i : i + size]) for i in range(0, len(specs), size)]

    def run(
        self,
        work: Sequence[Tuple[str, Sequence[ConfigSpec]]],
        on_chunk: Callable[[str, List[SweepRecord], bool], None],
        progress: bool = False,
    ) -> int:
        """Evaluate every (benchmark, missing-spec) batch in ``work``.

        ``on_chunk(benchmark, records, benchmark_finished)`` is invoked
        strictly in submission order — benchmark-major, spec-order —
        regardless of worker completion order, so the caller can append
        records to the JSONL cache as they arrive and still end up with
        a byte-identical file to a serial run.  Returns the number of
        grid points evaluated.
        """
        chunks: List[_Chunk] = []
        for benchmark, specs in work:
            for piece in self._chunk_specs(list(specs)):
                chunks.append(_Chunk(len(chunks), benchmark, piece))
        self.worker_stats = []
        self.worker_metrics = {}
        self.chunk_profiles = []
        if not chunks:
            return 0
        total_configs = sum(len(c.specs) for c in chunks)
        tracker = _Progress(total_configs)
        last_chunk_of_benchmark = {c.benchmark: c.index for c in chunks}
        per_worker: Dict[int, Dict] = {}

        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(
                self.profile,
                str(self.cache_dir) if self.cache_dir is not None else None,
                self.mpl_nominals,
                self.profiling,
                self.bank,
                self.kernels,
                self.batched,
                self.mmap,
            ),
        ) as pool:
            futures = {
                pool.submit(_evaluate_chunk, chunk.benchmark, chunk.specs): chunk
                for chunk in chunks
            }
            buffered: Dict[int, Dict] = {}
            next_index = 0
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    buffered[futures[future].index] = future.result()
                while next_index in buffered:
                    chunk = chunks[next_index]
                    result = buffered.pop(next_index)
                    rows = result["rows"]
                    stats = result["stats"]
                    self._account(per_worker, chunk, stats)
                    records = [SweepRecord.from_row(row) for row in rows]
                    benchmark_finished = (
                        last_chunk_of_benchmark[chunk.benchmark] == chunk.index
                    )
                    on_chunk(chunk.benchmark, records, benchmark_finished)
                    if progress:
                        tracker.note(
                            self.profile.name,
                            chunk.benchmark,
                            len(chunk.specs),
                            benchmark_finished,
                        )
                    next_index += 1
        self.worker_stats = [per_worker[pid] for pid in sorted(per_worker)]
        return total_configs

    def _account(self, per_worker: Dict[int, Dict], chunk: _Chunk, stats: Dict) -> None:
        """Fold one chunk's worker stats into the per-pid aggregation."""
        pid = stats["pid"]
        entry = per_worker.get(pid)
        if entry is None:
            entry = per_worker[pid] = {
                "pid": pid,
                "chunks": 0,
                "configs": 0,
                "records": 0,
                "wall_seconds": 0.0,
                "peak_bytes": None,
            }
        entry["chunks"] += 1
        entry["configs"] += stats["configs"]
        entry["records"] += stats["records"]
        entry["wall_seconds"] += stats["wall_seconds"]
        peak = stats.get("peak_bytes")
        if peak is not None:
            entry["peak_bytes"] = max(entry["peak_bytes"] or 0, peak)
            self.chunk_profiles.append(
                {
                    "label": f"{chunk.benchmark}:chunk-{chunk.index}",
                    "wall_seconds": stats["wall_seconds"],
                    "peak_bytes": peak,
                }
            )
        # Cumulative snapshot: keep the worker's latest.
        self.worker_metrics[pid] = stats.get("metrics", {})
