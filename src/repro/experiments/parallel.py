"""Multiprocess sweep execution.

The paper's evaluation is >10,000 detector instantiations (Section 4);
each (benchmark, grid point) cell is independent, so the sweep is
embarrassingly parallel.  This module fans (benchmark, spec-chunk) work
items out over a :class:`~concurrent.futures.ProcessPoolExecutor` while
preserving the serial sweep's observable behavior exactly:

* **Workers load traces from the on-disk cache, not the pipe.**  The
  parent materializes every trace before the pool starts (a cache
  miss runs the workload once); workers then call
  ``load_traces``/:meth:`BaselineSet.for_benchmark` themselves, so the
  only things pickled across the pipe are small ``ConfigSpec`` values
  outbound and flat record rows inbound.
* **Per-worker memoization.**  Each worker process keeps one
  ``(branch trace, BaselineSet)`` pair per benchmark it has seen, so the
  expensive oracle solve is paid at most ``jobs`` times per benchmark,
  and chunking keeps that amortized over many grid points.
* **Ordered delivery.**  Chunks are submitted in deterministic
  (benchmark-major, spec-order) sequence and results are re-ordered on
  receipt, so cache appends happen in exactly the order the serial
  sweep would produce — a parallel run's JSONL cache is byte-identical
  to a serial run's, and an interrupted run leaves a valid prefix that
  the next run treats as warm.
* **Progress/ETA.**  With ``progress=True`` a per-benchmark line
  (configs evaluated, wall time, configs/s) plus a running ETA for the
  whole sweep is printed to stderr.

Worker count resolution order: explicit ``jobs`` argument, then the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.

The on-disk formats this executor relies on are specified in
``docs/formats.md``; the sweep lifecycle in ``docs/sweep.md``.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.runner import BaselineSet, SweepRecord, evaluate_spec

#: Grid points per work item.  Large enough to amortize pipe and
#: memoization overhead, small enough to load-balance a skewed grid.
DEFAULT_CHUNK_SIZE = 8


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_JOBS``, then cores.

    Raises :class:`ValueError` for a non-positive or unparseable count.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# -- worker side --------------------------------------------------------------
#
# Module-level so it pickles under both fork and spawn start methods.
# _init_worker runs once per worker process; _WORKER_STATE is therefore
# per-process, never shared.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    profile: SuiteProfile,
    cache_dir: Optional[str],
    mpl_nominals: Tuple[int, ...],
) -> None:
    _WORKER_STATE["profile"] = profile
    _WORKER_STATE["cache_dir"] = cache_dir
    _WORKER_STATE["mpl_nominals"] = mpl_nominals
    _WORKER_STATE["benchmarks"] = {}


def _benchmark_context(benchmark: str):
    """Per-worker memoized (branch trace, baselines) for a benchmark."""
    contexts: Dict = _WORKER_STATE["benchmarks"]  # type: ignore[assignment]
    if benchmark not in contexts:
        from repro.workloads.suite import load_traces

        profile: SuiteProfile = _WORKER_STATE["profile"]  # type: ignore[assignment]
        cache_dir = _WORKER_STATE["cache_dir"]
        branch_trace, call_loop = load_traces(
            benchmark, scale=profile.workload_scale, cache_dir=cache_dir
        )
        baselines = BaselineSet(
            call_loop,
            profile,
            _WORKER_STATE["mpl_nominals"],  # type: ignore[arg-type]
            name=benchmark,
        )
        contexts[benchmark] = (branch_trace, baselines)
    return contexts[benchmark]


def _evaluate_chunk(benchmark: str, specs: Sequence[ConfigSpec]) -> List[Dict]:
    """Evaluate one work item; return flat record rows (JSON-safe)."""
    branch_trace, baselines = _benchmark_context(benchmark)
    profile: SuiteProfile = _WORKER_STATE["profile"]  # type: ignore[assignment]
    rows: List[Dict] = []
    for spec in specs:
        for record in evaluate_spec(branch_trace, baselines, spec, profile):
            rows.append(record.to_row())
    return rows


# -- parent side --------------------------------------------------------------


@dataclass
class _Chunk:
    """One submitted work item and its place in the deterministic order."""

    index: int
    benchmark: str
    specs: List[ConfigSpec]


@dataclass
class _Progress:
    """Wall-clock accounting for the progress/ETA report."""

    total_configs: int
    started: float = field(default_factory=time.time)
    done_configs: int = 0
    benchmark_configs: Dict[str, int] = field(default_factory=dict)
    benchmark_started: Dict[str, float] = field(default_factory=dict)

    def note(self, profile_name: str, benchmark: str, configs: int,
             benchmark_finished: bool) -> None:
        now = time.time()
        self.benchmark_started.setdefault(benchmark, now)
        self.done_configs += configs
        self.benchmark_configs[benchmark] = (
            self.benchmark_configs.get(benchmark, 0) + configs
        )
        if not benchmark_finished:
            return
        elapsed = now - self.started
        rate = self.done_configs / elapsed if elapsed > 0 else float("inf")
        remaining = self.total_configs - self.done_configs
        eta = remaining / rate if rate > 0 else 0.0
        bench_configs = self.benchmark_configs[benchmark]
        bench_elapsed = now - self.benchmark_started[benchmark]
        print(
            f"[sweep:{profile_name}] {benchmark}: {bench_configs} configs "
            f"in {bench_elapsed:.1f}s ({rate:.1f} configs/s overall, "
            f"{self.done_configs}/{self.total_configs} done, eta {eta:.0f}s)",
            file=sys.stderr,
        )


class ParallelSweepExecutor:
    """Fan sweep work items over a process pool, delivering in order.

    Args:
        profile: the suite profile workers evaluate under.
        cache_dir: the suite trace cache directory workers load from
            (must already contain every trace — the parent's
            ``load_suite`` guarantees this).
        mpl_nominals: nominal MPLs each grid point is scored at.
        jobs: worker count (``None`` → :func:`resolve_jobs`).
        chunk_size: grid points per work item (``None`` → a size that
            gives each worker several items per benchmark, capped at
            :data:`DEFAULT_CHUNK_SIZE`).
    """

    def __init__(
        self,
        profile: SuiteProfile,
        cache_dir,
        mpl_nominals: Sequence[int],
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.cache_dir = cache_dir
        self.mpl_nominals = tuple(mpl_nominals)
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size

    def _chunk_specs(self, specs: Sequence[ConfigSpec]) -> List[List[ConfigSpec]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # ~4 items per worker per benchmark for load balance.
            size = max(1, min(DEFAULT_CHUNK_SIZE, -(-len(specs) // (self.jobs * 4))))
        return [list(specs[i : i + size]) for i in range(0, len(specs), size)]

    def run(
        self,
        work: Sequence[Tuple[str, Sequence[ConfigSpec]]],
        on_chunk: Callable[[str, List[SweepRecord], bool], None],
        progress: bool = False,
    ) -> int:
        """Evaluate every (benchmark, missing-spec) batch in ``work``.

        ``on_chunk(benchmark, records, benchmark_finished)`` is invoked
        strictly in submission order — benchmark-major, spec-order —
        regardless of worker completion order, so the caller can append
        records to the JSONL cache as they arrive and still end up with
        a byte-identical file to a serial run.  Returns the number of
        grid points evaluated.
        """
        chunks: List[_Chunk] = []
        for benchmark, specs in work:
            for piece in self._chunk_specs(list(specs)):
                chunks.append(_Chunk(len(chunks), benchmark, piece))
        if not chunks:
            return 0
        total_configs = sum(len(c.specs) for c in chunks)
        tracker = _Progress(total_configs)
        last_chunk_of_benchmark = {c.benchmark: c.index for c in chunks}

        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(
                self.profile,
                str(self.cache_dir) if self.cache_dir is not None else None,
                self.mpl_nominals,
            ),
        ) as pool:
            futures = {
                pool.submit(_evaluate_chunk, chunk.benchmark, chunk.specs): chunk
                for chunk in chunks
            }
            buffered: Dict[int, List[Dict]] = {}
            next_index = 0
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    buffered[futures[future].index] = future.result()
                while next_index in buffered:
                    chunk = chunks[next_index]
                    rows = buffered.pop(next_index)
                    records = [SweepRecord.from_row(row) for row in rows]
                    benchmark_finished = (
                        last_chunk_of_benchmark[chunk.benchmark] == chunk.index
                    )
                    on_chunk(chunk.benchmark, records, benchmark_finished)
                    if progress:
                        tracker.note(
                            self.profile.name,
                            chunk.benchmark,
                            len(chunk.specs),
                            benchmark_finished,
                        )
                    next_index += 1
        return total_configs
