"""Multiprocess sweep execution.

The paper's evaluation is >10,000 detector instantiations (Section 4);
each (benchmark, grid point) cell is independent, so the sweep is
embarrassingly parallel.  This module fans (benchmark, spec-chunk) work
items out over a :class:`~concurrent.futures.ProcessPoolExecutor` while
preserving the serial sweep's observable behavior exactly:

* **Workers load traces from the on-disk cache, not the pipe.**  The
  parent materializes every trace before the pool starts (a cache
  miss runs the workload once); workers then call
  ``load_traces``/:meth:`BaselineSet.for_benchmark` themselves, so the
  only things pickled across the pipe are small ``ConfigSpec`` values
  outbound and flat record rows inbound.
* **Per-worker memoization.**  Each worker process keeps one
  ``(branch trace, BaselineSet)`` pair per benchmark it has seen, so the
  expensive oracle solve is paid at most ``jobs`` times per benchmark,
  and chunking keeps that amortized over many grid points.
* **Single-pass banks.**  A work item is a trace name plus a slice of
  grid points; the worker evaluates the slice as one
  :class:`~repro.core.bank.DetectorBank` pass over the trace (see
  :func:`repro.experiments.runner.evaluate_bank`), decoding and
  chunking the trace once per batch instead of once per grid point.
* **Two delivery modes.**  The default (:meth:`ParallelSweepExecutor.
  run_store`) is barrier-free: workers write each completed chunk as an
  atomic content-addressed file in the chunk store
  (:mod:`repro.experiments.store`) the moment it finishes — record rows
  never cross the pipe, completion order does not matter, and a
  deterministic compaction step folds the chunks into the JSONL cache
  in plan order afterwards (byte-identical to a serial run).  Chunks
  already in the store are *reused* (that is the resume path: an
  interrupted run costs only its missing chunk set), and chunks leased
  by another executor sharing the results directory are skipped and
  awaited.  The legacy mode (:meth:`ParallelSweepExecutor.run`) keeps
  the ordered-delivery barrier: results are re-ordered on receipt and
  appended by the parent in submission order — the ``store=False``
  escape hatch and the bench baseline.
* **Progress/ETA.**  With ``progress=True`` a per-benchmark line
  (configs evaluated, wall time, configs/s) plus a running ETA for the
  whole sweep is logged at INFO on the ``repro.sweep`` logger (the CLI
  routes it to stderr; see :mod:`repro.obs.logsetup`).  The ETA weights
  remaining configs by their benchmark's trace length, so skewed grids
  (one 10x-longer trace still pending) do not produce the wild
  misestimates a flat configs/s extrapolation gives.
* **Per-worker accounting.**  Every chunk result carries its worker's
  pid, wall time and record count, plus a cumulative snapshot of the
  worker's process-local metrics registry (trace reads, cache hits).
  After :meth:`ParallelSweepExecutor.run` the aggregation is available
  as :attr:`worker_stats`/:attr:`worker_metrics` — the sum of
  per-worker record counts equals the records delivered, which is the
  invariant the run manifest records and ``repro obs summary`` checks.
* **Opt-in chunk profiling.**  With ``profiling=True`` each chunk is
  wrapped in a :class:`~repro.obs.profiling.ChunkProfiler` (wall time +
  ``tracemalloc`` peak); profiles come back in :attr:`chunk_profiles`.

Worker count resolution order: explicit ``jobs`` argument, then the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.

The on-disk formats this executor relies on are specified in
``docs/formats.md``; the sweep lifecycle in ``docs/sweep.md``; the
metrics and manifest schema in ``docs/observability.md``.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.runner import BaselineSet, SweepRecord, evaluate_bank
from repro.obs.metrics import GLOBAL_METRICS
from repro.obs.profiling import ChunkProfiler

logger = logging.getLogger("repro.sweep")

#: The *floor* on grid points per work item.  Large enough to amortize
#: pipe and memoization overhead; the auto size grows past it on huge
#: grids (see :meth:`ParallelSweepExecutor._chunk_specs`).
DEFAULT_CHUNK_SIZE = 8

#: Auto chunk sizing targets about this many work items per worker per
#: benchmark: enough slack for load balancing, few enough chunks that
#: per-item overhead stays amortized on paper-scale grids.
TARGET_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_JOBS``, then cores.

    Raises :class:`ValueError` for a non-positive or unparseable count.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# -- worker side --------------------------------------------------------------
#
# Module-level so it pickles under both fork and spawn start methods.
# _init_worker runs once per worker process; _WORKER_STATE is therefore
# per-process, never shared.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    profile: SuiteProfile,
    cache_dir: Optional[str],
    mpl_nominals: Tuple[int, ...],
    profiling: bool = False,
    bank: bool = True,
    kernels: Optional[bool] = None,
    batched: Optional[bool] = None,
    mmap: Optional[bool] = None,
) -> None:
    _WORKER_STATE["profile"] = profile
    _WORKER_STATE["cache_dir"] = cache_dir
    _WORKER_STATE["mpl_nominals"] = mpl_nominals
    _WORKER_STATE["benchmarks"] = {}
    _WORKER_STATE["profiling"] = profiling
    _WORKER_STATE["bank"] = bank
    _WORKER_STATE["kernels"] = kernels
    _WORKER_STATE["batched"] = batched
    _WORKER_STATE["mmap"] = mmap
    # A forked worker inherits the parent's accumulated counts; reset so
    # the snapshots shipped back are purely this worker's own activity.
    GLOBAL_METRICS.reset()


def _benchmark_context(benchmark: str):
    """Per-worker memoized (branch trace, baselines) for a benchmark."""
    contexts: Dict = _WORKER_STATE["benchmarks"]  # type: ignore[assignment]
    if benchmark not in contexts:
        from repro.workloads.suite import load_traces

        profile: SuiteProfile = _WORKER_STATE["profile"]  # type: ignore[assignment]
        cache_dir = _WORKER_STATE["cache_dir"]
        # mmap (default on) maps the cached trace and its dense-code
        # sidecar read-only, so all workers share one physical copy of
        # each through the OS page cache instead of a heap copy apiece.
        branch_trace, call_loop = load_traces(
            benchmark,
            scale=profile.workload_scale,
            cache_dir=cache_dir,
            mmap=_WORKER_STATE.get("mmap"),  # type: ignore[arg-type]
        )
        baselines = BaselineSet(
            call_loop,
            profile,
            _WORKER_STATE["mpl_nominals"],  # type: ignore[arg-type]
            name=benchmark,
        )
        contexts[benchmark] = (branch_trace, baselines)
    return contexts[benchmark]


def _evaluate_chunk(benchmark: str, specs: Sequence[ConfigSpec]) -> Dict:
    """Evaluate one work item; return rows plus this worker's accounting.

    The result is ``{"rows": [...], "stats": {...}}`` where ``stats``
    carries the worker pid, this chunk's wall time / config / record
    counts, the optional :class:`ChunkProfiler` memory peak, and a
    cumulative snapshot of the worker's process-local metrics registry
    (the parent keeps the latest snapshot per pid and merges them).
    """
    branch_trace, baselines = _benchmark_context(benchmark)
    profile: SuiteProfile = _WORKER_STATE["profile"]  # type: ignore[assignment]
    bank = bool(_WORKER_STATE.get("bank", True))
    kernels = _WORKER_STATE.get("kernels")  # Optional[bool]; None = env default
    batched = _WORKER_STATE.get("batched")  # Optional[bool]; None = env default
    profiler = (
        ChunkProfiler(f"{benchmark}[{len(specs)} specs]")
        if _WORKER_STATE.get("profiling")
        else None
    )
    started = time.perf_counter()
    if profiler is not None:
        with profiler:
            records = evaluate_bank(
                branch_trace, baselines, specs, profile, bank=bank,
                kernels=kernels, batched=batched,
            )
    else:
        records = evaluate_bank(
            branch_trace, baselines, specs, profile, bank=bank,
            kernels=kernels, batched=batched,
        )
    rows: List[Dict] = [record.to_row() for record in records]
    wall = time.perf_counter() - started
    # Per-chunk wall time lands in the worker's process-local histogram;
    # the cumulative snapshot below ships it home, where the parent's
    # latest-per-pid merge folds it into the manifest (histograms merge
    # associatively, so worker order does not matter).
    GLOBAL_METRICS.histogram("sweep.job_seconds").observe(wall)
    stats: Dict = {
        "pid": os.getpid(),
        "wall_seconds": wall,
        "configs": len(specs),
        "records": len(rows),
        "peak_bytes": profiler.profile.peak_bytes if profiler is not None else None,
        "metrics": GLOBAL_METRICS.snapshot(),
    }
    return {"rows": rows, "stats": stats}


def _evaluate_store_chunk(
    benchmark: str,
    specs: Sequence[ConfigSpec],
    key: str,
    fingerprint: str,
    cache_dir: str,
    profile_name: str,
) -> Dict:
    """Evaluate one work item and persist it as a chunk file, in-worker.

    The barrier-free counterpart of :func:`_evaluate_chunk`: the worker
    serializes its own records to canonical cache lines and writes the
    content-addressed chunk atomically, so nothing but small accounting
    crosses the pipe and the parent never re-orders anything.  Returns
    ``{"key": ..., "stats": ...}`` with the same stats shape as the
    legacy path.
    """
    from repro.experiments.store import ChunkStore, cache_line

    branch_trace, baselines = _benchmark_context(benchmark)
    profile: SuiteProfile = _WORKER_STATE["profile"]  # type: ignore[assignment]
    bank = bool(_WORKER_STATE.get("bank", True))
    kernels = _WORKER_STATE.get("kernels")
    batched = _WORKER_STATE.get("batched")
    profiler = (
        ChunkProfiler(f"{benchmark}[{len(specs)} specs]")
        if _WORKER_STATE.get("profiling")
        else None
    )
    started = time.perf_counter()
    if profiler is not None:
        with profiler:
            records = evaluate_bank(
                branch_trace, baselines, specs, profile, bank=bank,
                kernels=kernels, batched=batched,
            )
    else:
        records = evaluate_bank(
            branch_trace, baselines, specs, profile, bank=bank,
            kernels=kernels, batched=batched,
        )
    lines = [cache_line(record, fingerprint) for record in records]
    store = ChunkStore(cache_dir, profile_name)
    store.write(
        key, benchmark=benchmark, fingerprint=fingerprint,
        configs=len(specs), lines=lines,
        worker={"pid": os.getpid()},
    )
    wall = time.perf_counter() - started
    GLOBAL_METRICS.histogram("sweep.job_seconds").observe(wall)
    GLOBAL_METRICS.histogram("sweep.chunk_seconds").observe(wall)
    GLOBAL_METRICS.counter("sweep.chunk_rows_written").inc(len(lines))
    stats: Dict = {
        "pid": os.getpid(),
        "wall_seconds": wall,
        "configs": len(specs),
        "records": len(lines),
        "peak_bytes": profiler.profile.peak_bytes if profiler is not None else None,
        "metrics": GLOBAL_METRICS.snapshot(),
    }
    return {"key": key, "stats": stats}


# -- parent side --------------------------------------------------------------


@dataclass
class _Chunk:
    """One submitted work item and its place in the deterministic order."""

    index: int
    benchmark: str
    specs: List[ConfigSpec]


@dataclass
class _Progress:
    """Wall-clock accounting for the progress/ETA report.

    All interval math uses the monotonic ``time.perf_counter`` clock;
    the report goes to the ``repro.sweep`` logger at INFO.

    The configs/s line stays in config units, but the ETA extrapolates
    in *weight* units — each completed config contributes its
    benchmark's trace length (``weight``) — because a config on a long
    trace costs proportionally more wall time than one on a short
    trace.  With ``total_weight`` 0 (no weights supplied) the ETA falls
    back to the flat configs/s extrapolation.
    """

    total_configs: int
    total_weight: float = 0.0
    started: float = field(default_factory=time.perf_counter)
    done_configs: int = 0
    done_weight: float = 0.0
    benchmark_configs: Dict[str, int] = field(default_factory=dict)
    benchmark_started: Dict[str, float] = field(default_factory=dict)

    def eta_seconds(self, now: Optional[float] = None) -> float:
        """Remaining wall time, extrapolated in weight units."""
        now = time.perf_counter() if now is None else now
        elapsed = now - self.started
        if self.total_weight > 0:
            done, total = self.done_weight, self.total_weight
        else:
            done, total = float(self.done_configs), float(self.total_configs)
        if elapsed <= 0 or done <= 0:
            return 0.0
        rate = done / elapsed
        return max(total - done, 0.0) / rate

    def note(self, profile_name: str, benchmark: str, configs: int,
             benchmark_finished: bool, weight: Optional[float] = None) -> None:
        now = time.perf_counter()
        self.benchmark_started.setdefault(benchmark, now)
        self.done_configs += configs
        self.done_weight += float(configs) if weight is None else weight
        self.benchmark_configs[benchmark] = (
            self.benchmark_configs.get(benchmark, 0) + configs
        )
        if not benchmark_finished:
            return
        elapsed = now - self.started
        rate = self.done_configs / elapsed if elapsed > 0 else float("inf")
        eta = self.eta_seconds(now)
        bench_configs = self.benchmark_configs[benchmark]
        bench_elapsed = now - self.benchmark_started[benchmark]
        logger.info(
            "[%s] %s: %d configs in %.1fs (%.1f configs/s overall, "
            "%d/%d done, eta %.0fs)",
            profile_name, benchmark, bench_configs, bench_elapsed, rate,
            self.done_configs, self.total_configs, eta,
        )


class ParallelSweepExecutor:
    """Fan sweep work items over a process pool, delivering in order.

    Args:
        profile: the suite profile workers evaluate under.
        cache_dir: the suite trace cache directory workers load from
            (must already contain every trace — the parent's
            ``load_suite`` guarantees this).
        mpl_nominals: nominal MPLs each grid point is scored at.
        jobs: worker count (``None`` → :func:`resolve_jobs`).
        chunk_size: grid points per work item (``None`` → adaptive:
            ``grid / (jobs × TARGET_CHUNKS_PER_WORKER)``, with
            :data:`DEFAULT_CHUNK_SIZE` as the floor — small grids keep
            the amortization floor, paper-scale grids grow the chunk so
            per-item overhead stays negligible).
        profiling: wrap each chunk in a :class:`ChunkProfiler`
            (wall time + tracemalloc peak); see :attr:`chunk_profiles`.

    After :meth:`run` returns, :attr:`worker_stats` holds one
    accounting entry per worker process, :attr:`worker_metrics` the
    latest cumulative metrics snapshot per worker, and
    :attr:`chunk_profiles` any chunk profiles collected.
    """

    def __init__(
        self,
        profile: SuiteProfile,
        cache_dir,
        mpl_nominals: Sequence[int],
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        profiling: bool = False,
        bank: bool = True,
        kernels: Optional[bool] = None,
        batched: Optional[bool] = None,
        mmap: Optional[bool] = None,
    ) -> None:
        self.profile = profile
        self.cache_dir = cache_dir
        self.mpl_nominals = tuple(mpl_nominals)
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.profiling = profiling
        self.bank = bank
        self.kernels = kernels
        self.batched = batched
        self.mmap = mmap
        self.worker_stats: List[Dict] = []
        self.worker_metrics: Dict[int, Dict] = {}
        self.chunk_profiles: List[Dict] = []
        #: The content-addressed plan of the last :meth:`run_store` call
        #: (``PlannedChunk`` values, in fold order); the caller hands it
        #: to :func:`repro.experiments.store.compact_chunks`.
        self.planned = []

    def _chunk_specs(self, specs: Sequence[ConfigSpec]) -> List[List[ConfigSpec]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # Adaptive: aim for TARGET_CHUNKS_PER_WORKER items per worker
            # per benchmark, but never shrink below the amortization
            # floor.  A 10,000-point grid on 8 workers gets ~313-spec
            # chunks; a quick 135-point grid keeps the floor of 8.
            size = max(
                DEFAULT_CHUNK_SIZE,
                -(-len(specs) // (self.jobs * TARGET_CHUNKS_PER_WORKER)),
            )
        return [list(specs[i : i + size]) for i in range(0, len(specs), size)]

    def run(
        self,
        work: Sequence[Tuple[str, Sequence[ConfigSpec]]],
        on_chunk: Callable[[str, List[SweepRecord], bool], None],
        progress: bool = False,
        benchmark_weights: Optional[Dict[str, float]] = None,
    ) -> int:
        """Evaluate every (benchmark, missing-spec) batch in ``work``.

        ``on_chunk(benchmark, records, benchmark_finished)`` is invoked
        strictly in submission order — benchmark-major, spec-order —
        regardless of worker completion order, so the caller can append
        records to the JSONL cache as they arrive and still end up with
        a byte-identical file to a serial run.  Returns the number of
        grid points evaluated.

        ``benchmark_weights`` (trace length per benchmark) steers the
        progress ETA; see :class:`_Progress`.
        """
        chunks: List[_Chunk] = []
        for benchmark, specs in work:
            for piece in self._chunk_specs(list(specs)):
                chunks.append(_Chunk(len(chunks), benchmark, piece))
        self.worker_stats = []
        self.worker_metrics = {}
        self.chunk_profiles = []
        if not chunks:
            return 0
        weights = benchmark_weights or {}
        total_configs = sum(len(c.specs) for c in chunks)
        total_weight = sum(
            len(c.specs) * weights.get(c.benchmark, 1.0) for c in chunks
        ) if weights else 0.0
        tracker = _Progress(total_configs, total_weight)
        last_chunk_of_benchmark = {c.benchmark: c.index for c in chunks}
        per_worker: Dict[int, Dict] = {}

        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(
                self.profile,
                str(self.cache_dir) if self.cache_dir is not None else None,
                self.mpl_nominals,
                self.profiling,
                self.bank,
                self.kernels,
                self.batched,
                self.mmap,
            ),
        ) as pool:
            futures = {
                pool.submit(_evaluate_chunk, chunk.benchmark, chunk.specs): chunk
                for chunk in chunks
            }
            buffered: Dict[int, Dict] = {}
            next_index = 0
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    buffered[futures[future].index] = future.result()
                while next_index in buffered:
                    chunk = chunks[next_index]
                    result = buffered.pop(next_index)
                    rows = result["rows"]
                    stats = result["stats"]
                    self._account(per_worker, chunk, stats)
                    records = [SweepRecord.from_row(row) for row in rows]
                    benchmark_finished = (
                        last_chunk_of_benchmark[chunk.benchmark] == chunk.index
                    )
                    on_chunk(chunk.benchmark, records, benchmark_finished)
                    if progress:
                        tracker.note(
                            self.profile.name,
                            chunk.benchmark,
                            len(chunk.specs),
                            benchmark_finished,
                            weight=(
                                len(chunk.specs) * weights.get(chunk.benchmark, 1.0)
                                if weights else None
                            ),
                        )
                    next_index += 1
        self.worker_stats = [per_worker[pid] for pid in sorted(per_worker)]
        return total_configs

    def run_store(
        self,
        work: Sequence[Tuple[str, Sequence[ConfigSpec]]],
        store,
        fingerprints: Dict[str, str],
        progress: bool = False,
        benchmark_weights: Optional[Dict[str, float]] = None,
        on_chunk_done: Optional[Callable[[object, str], None]] = None,
        lease_ttl: Optional[float] = None,
        poll_seconds: float = 0.2,
    ) -> Dict[str, int]:
        """Evaluate ``work`` barrier-free through the chunk store.

        The work is planned into content-addressed chunks
        (:func:`repro.experiments.store.plan_chunks`; the plan lands in
        :attr:`planned`).  For each planned chunk, in order:

        * a valid chunk file already in the store is **reused** — that
          is the resume path, and costs nothing but a read;
        * otherwise this executor tries to **claim** the chunk's lease;
          on success the chunk is submitted to the pool, whose worker
          evaluates it and writes the chunk file itself
          (:func:`_evaluate_store_chunk`) — completion order is
          irrelevant, so there is no head-of-line blocking;
        * a chunk leased by another executor sharing the directory is
          left to that executor and **awaited** at the end (with
          TTL-based steal if the other executor died).

        Returns ``{"planned", "reused", "evaluated", "external",
        "evaluated_configs", "evaluated_records"}``.  The caller runs
        :func:`~repro.experiments.store.compact_chunks` afterwards to
        fold the now-complete chunk set into the JSONL cache.
        """
        from repro.experiments.store import (
            DEFAULT_LEASE_TTL,
            chunk_folded,
            plan_chunks,
        )

        ttl = DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl
        planned = plan_chunks(
            work, fingerprints, self.profile.name, self.mpl_nominals,
            self._chunk_specs,
        )
        self.planned = planned
        self.worker_stats = []
        self.worker_metrics = {}
        self.chunk_profiles = []
        stats_out = {
            "planned": len(planned),
            "reused": 0,
            "evaluated": 0,
            "external": 0,
            "evaluated_configs": 0,
            "evaluated_records": 0,
        }
        if not planned:
            return stats_out
        weights = benchmark_weights or {}
        mine = []  # chunks this executor claimed
        external = []  # chunks another executor holds; awaited below
        for chunk in planned:
            if store.has(chunk.key):
                stats_out["reused"] += 1
                if on_chunk_done is not None:
                    on_chunk_done(chunk, "reused")
            elif store.claim(chunk.key, ttl=ttl):
                mine.append(chunk)
            else:
                external.append(chunk)
        total_configs = sum(len(c.specs) for c in mine)
        total_weight = sum(
            len(c.specs) * weights.get(c.benchmark, 1.0) for c in mine
        ) if weights else 0.0
        tracker = _Progress(total_configs, total_weight)
        per_worker: Dict[int, Dict] = {}
        remaining_chunks: Dict[str, int] = {}
        for chunk in mine:
            remaining_chunks[chunk.benchmark] = (
                remaining_chunks.get(chunk.benchmark, 0) + 1
            )
        if mine:
            with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(
                    self.profile,
                    str(self.cache_dir) if self.cache_dir is not None else None,
                    self.mpl_nominals,
                    self.profiling,
                    self.bank,
                    self.kernels,
                    self.batched,
                    self.mmap,
                ),
            ) as pool:
                futures = {
                    pool.submit(
                        _evaluate_store_chunk,
                        chunk.benchmark,
                        list(chunk.specs),
                        chunk.key,
                        chunk.fingerprint,
                        str(store.cache_dir),
                        self.profile.name,
                    ): chunk
                    for chunk in mine
                }
                pending = set(futures)
                try:
                    while pending:
                        finished, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        for future in finished:
                            chunk = futures[future]
                            result = future.result()
                            store.release(chunk.key)
                            stats = result["stats"]
                            self._account(
                                per_worker,
                                _Chunk(chunk.index, chunk.benchmark,
                                       list(chunk.specs)),
                                stats,
                            )
                            stats_out["evaluated"] += 1
                            stats_out["evaluated_configs"] += stats["configs"]
                            stats_out["evaluated_records"] += stats["records"]
                            if on_chunk_done is not None:
                                on_chunk_done(chunk, "evaluated")
                            if progress:
                                remaining_chunks[chunk.benchmark] -= 1
                                tracker.note(
                                    self.profile.name,
                                    chunk.benchmark,
                                    len(chunk.specs),
                                    remaining_chunks[chunk.benchmark] == 0,
                                    weight=(
                                        len(chunk.specs)
                                        * weights.get(chunk.benchmark, 1.0)
                                        if weights else None
                                    ),
                                )
                except BaseException:
                    # Leave claimed-but-unevaluated leases in place: the
                    # TTL lets a successor steal them, and any chunk
                    # files already written survive for the resume path.
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise
        # Await chunks another executor holds the lease on.  Normally
        # the other executor's chunk file just appears; if its lease
        # expires first (it died), steal the lease and redo the chunk
        # in a one-off worker.  A stolen chunk still counts as
        # "external" — the stats describe the plan's division of labor,
        # and the redo is accounted under evaluated_* like any other.
        stats_out["external"] = len(external)
        cache_path = store.cache_dir / f"sweep-{store.profile_name}.jsonl"
        for chunk in external:
            while not store.has(chunk.key):
                if store.claim(chunk.key, ttl=ttl):
                    if store.has(chunk.key):  # appeared during the steal
                        store.release(chunk.key)
                        break
                    if chunk_folded(chunk, cache_path):
                        # The other executor finished, compacted, and
                        # gc'd the file while we waited; its rows are
                        # already in the cache, so there is nothing to
                        # redo.
                        store.release(chunk.key)
                        break
                    logger.info(
                        "[%s] stealing expired lease on chunk %s (%s)",
                        self.profile.name, chunk.key, chunk.benchmark,
                    )
                    result = self._redo_chunk(chunk, store)
                    store.release(chunk.key)
                    stats = result["stats"]
                    self._account(
                        per_worker,
                        _Chunk(chunk.index, chunk.benchmark, list(chunk.specs)),
                        stats,
                    )
                    stats_out["evaluated"] += 1
                    stats_out["evaluated_configs"] += stats["configs"]
                    stats_out["evaluated_records"] += stats["records"]
                    break
                time.sleep(poll_seconds)
            if on_chunk_done is not None:
                on_chunk_done(chunk, "external")
        self.worker_stats = [per_worker[pid] for pid in sorted(per_worker)]
        return stats_out

    def _redo_chunk(self, chunk, store) -> Dict:
        """Re-evaluate one stolen chunk in a one-off worker process.

        A separate process (not inline) so the worker-side globals —
        ``_WORKER_STATE`` and the process-local metrics reset in
        ``_init_worker`` — never touch the parent's.
        """
        with ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_worker,
            initargs=(
                self.profile,
                str(self.cache_dir) if self.cache_dir is not None else None,
                self.mpl_nominals,
                self.profiling,
                self.bank,
                self.kernels,
                self.batched,
                self.mmap,
            ),
        ) as pool:
            return pool.submit(
                _evaluate_store_chunk,
                chunk.benchmark,
                list(chunk.specs),
                chunk.key,
                chunk.fingerprint,
                str(store.cache_dir),
                self.profile.name,
            ).result()

    def _account(self, per_worker: Dict[int, Dict], chunk: _Chunk, stats: Dict) -> None:
        """Fold one chunk's worker stats into the per-pid aggregation."""
        pid = stats["pid"]
        entry = per_worker.get(pid)
        if entry is None:
            entry = per_worker[pid] = {
                "pid": pid,
                "chunks": 0,
                "configs": 0,
                "records": 0,
                "wall_seconds": 0.0,
                "peak_bytes": None,
            }
        entry["chunks"] += 1
        entry["configs"] += stats["configs"]
        entry["records"] += stats["records"]
        entry["wall_seconds"] += stats["wall_seconds"]
        peak = stats.get("peak_bytes")
        if peak is not None:
            entry["peak_bytes"] = max(entry["peak_bytes"] or 0, peak)
            self.chunk_profiles.append(
                {
                    "label": f"{chunk.benchmark}:chunk-{chunk.index}",
                    "wall_seconds": stats["wall_seconds"],
                    "peak_bytes": peak,
                }
            )
        # Cumulative snapshot: keep the worker's latest.
        self.worker_metrics[pid] = stats.get("metrics", {})
