"""Client cost model and MPL selection — the paper's third future-work item.

Section 3.1 motivates the MPL with a cost argument ("if a client's
phase-based optimization requires an approximate cost of 100,000
branches, then employing this action for a phase that is only 50,000
branches long will result in a net loss"), and Section 7 asks "how to
set the MPL for a particular client".

:class:`ClientModel` makes the argument executable: a phase-guided
optimization client is (action cost, per-element speedup, per-element
mis-speculation penalty).  From those,

- :meth:`ClientModel.break_even_length` is the analytic minimum phase
  length that amortizes one action;
- :meth:`ClientModel.suggested_mpl` applies a safety factor (a phase
  must *profit*, not merely break even);
- :func:`sweep_mpl` measures the realized net benefit across candidate
  MPLs for a concrete detector on a concrete trace, so the analytic
  suggestion can be validated empirically (see
  ``benchmarks/test_client_model.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.baseline.oracle import solve_baseline
from repro.core.config import DetectorConfig
from repro.core.detector import DetectionResult
from repro.core.engine import run_detector
from repro.profiles.callloop import CallLoopTrace
from repro.profiles.trace import BranchTrace


@dataclass(frozen=True)
class ClientModel:
    """A phase-guided optimization client's cost structure.

    Attributes:
        action_cost: profile elements of overhead per phase start (e.g.
            a recompilation).
        speedup: fractional gain per element correctly specialized
            (detector P and oracle P).
        mis_penalty: fractional loss per element wrongly specialized
            (detector P, oracle T).
    """

    action_cost: float
    speedup: float
    mis_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.action_cost < 0:
            raise ValueError("action_cost must be non-negative")
        if self.speedup <= 0:
            raise ValueError("speedup must be positive")
        if self.mis_penalty < 0:
            raise ValueError("mis_penalty must be non-negative")

    @property
    def break_even_length(self) -> float:
        """Phase length at which one action exactly pays for itself."""
        return self.action_cost / self.speedup

    def suggested_mpl(self, safety_factor: float = 2.0) -> int:
        """An MPL recommendation: break-even length times a safety factor.

        The safety factor absorbs detection lateness (a detector covers
        only part of each phase) and scoring noise; 2.0 is a robust
        default (see the client-model bench).
        """
        if safety_factor < 1.0:
            raise ValueError("safety_factor must be at least 1")
        return max(1, round(self.break_even_length * safety_factor))

    def benefit(
        self,
        detected_states: np.ndarray,
        num_phase_starts: int,
        oracle_states: np.ndarray,
    ) -> float:
        """Net benefit (element-equivalents) of acting on this detection."""
        detected_states = np.asarray(detected_states, dtype=bool)
        oracle_states = np.asarray(oracle_states, dtype=bool)
        correct = float(np.logical_and(detected_states, oracle_states).sum())
        wrong = float(np.logical_and(detected_states, ~oracle_states).sum())
        return (
            self.speedup * correct
            - self.mis_penalty * wrong
            - self.action_cost * num_phase_starts
        )


@dataclass(frozen=True)
class MplOutcome:
    """Realized client benefit for one candidate MPL."""

    mpl: int
    benefit: float
    oracle_phases: int
    detected_phases: int
    percent_of_ideal: float


def sweep_mpl(
    branch_trace: BranchTrace,
    call_loop: CallLoopTrace,
    client: ClientModel,
    mpls: Sequence[int],
    config_for_mpl: Optional[Callable[[int], DetectorConfig]] = None,
) -> List[MplOutcome]:
    """Measure the client's net benefit across candidate MPLs.

    ``config_for_mpl`` builds the detector for each MPL; the default
    follows the paper's guidance (Adaptive TW, CW = MPL/2, threshold
    0.6).  The oracle is re-solved per MPL: the MPL defines which
    stability is worth acting on.
    """
    if config_for_mpl is None:
        def config_for_mpl(mpl: int) -> DetectorConfig:
            from repro.core.config import TrailingPolicy

            return DetectorConfig(
                cw_size=max(2, mpl // 2),
                trailing=TrailingPolicy.ADAPTIVE,
                threshold=0.6,
            )

    outcomes: List[MplOutcome] = []
    ideal = client.speedup * len(branch_trace)
    for mpl in mpls:
        oracle = solve_baseline(call_loop, mpl)
        result: DetectionResult = run_detector(branch_trace, config_for_mpl(mpl))
        value = client.benefit(
            result.states, len(result.detected_phases), oracle.states()
        )
        outcomes.append(
            MplOutcome(
                mpl=mpl,
                benefit=value,
                oracle_phases=oracle.num_phases,
                detected_phases=len(result.detected_phases),
                percent_of_ideal=100.0 * value / ideal if ideal else 0.0,
            )
        )
    return outcomes


def best_mpl(outcomes: Sequence[MplOutcome]) -> MplOutcome:
    """The empirically best MPL of a sweep."""
    if not outcomes:
        raise ValueError("no outcomes to choose from")
    return max(outcomes, key=lambda o: o.benefit)
