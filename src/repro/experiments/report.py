"""Fixed-width text rendering for tables and figure series."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_cell(value: object, precision: int = 3) -> str:
    """Format one cell: floats to ``precision``, everything else via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned fixed-width table.

    Numeric columns are right-aligned; text columns left-aligned.
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    numeric = [True] * columns
    for original in rows:
        for index, cell in enumerate(original):
            if not isinstance(cell, (int, float)):
                numeric[index] = False

    def _line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_line([str(h) for h in headers]))
    lines.append(_line(["-" * w for w in widths]))
    lines.extend(_line(row) for row in text_rows)
    return "\n".join(lines)


def nominal_label(value: int) -> str:
    """Render a nominal MPL/CW value the way the paper writes it (1K, 200K)."""
    if value % 1000 == 0 and value >= 1000:
        return f"{value // 1000}K"
    return str(value)
