"""Robustness study: detector accuracy under profile corruption.

An extension experiment beyond the paper: the oracle is always solved
on the *clean* call-loop trace (the ground truth does not change when
the collection channel is lossy), while the detector sees a perturbed
branch trace.  The study sweeps a corruption parameter and reports the
score degradation per detector family — quantifying which window policy
tolerates lossy profiles best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.baseline.oracle import solve_baseline
from repro.core.config import DetectorConfig, ModelKind, TrailingPolicy
from repro.core.engine import run_detector
from repro.profiles.callloop import CallLoopTrace
from repro.profiles.perturb import inject_noise
from repro.profiles.trace import BranchTrace
from repro.scoring.metric import score_states


@dataclass(frozen=True)
class RobustnessPoint:
    """Score of one detector at one corruption level."""

    detector: str
    noise_rate: float
    score: float
    correlation: float


def noise_robustness(
    branch_trace: BranchTrace,
    call_loop: CallLoopTrace,
    mpl: int,
    noise_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    detectors: Dict[str, DetectorConfig] = None,
    seed: int = 7,
) -> List[RobustnessPoint]:
    """Sweep noise injection rates; score each detector at each rate.

    The element-level noise model replaces a fraction of profile
    elements with never-seen elements, which depresses window
    similarity uniformly — the question is which policy's threshold
    margin absorbs it.
    """
    if detectors is None:
        cw = max(2, mpl // 2)
        detectors = default_robustness_detectors(cw)
    oracle_states = solve_baseline(call_loop, mpl).states()
    points: List[RobustnessPoint] = []
    for rate in noise_rates:
        corrupted = inject_noise(branch_trace, rate, seed=seed)
        for label, config in detectors.items():
            result = run_detector(corrupted, config)
            score = score_states(result.states, oracle_states)
            points.append(
                RobustnessPoint(
                    detector=label,
                    noise_rate=rate,
                    score=score.score,
                    correlation=score.correlation,
                )
            )
    return points


def default_robustness_detectors(cw: int) -> Dict[str, DetectorConfig]:
    """The study's detector set: both models under both skip-1 policies.

    The model contrast is the point of the study: unweighted
    (distinct-set) similarity dilutes as ``b / (b + r * cw)`` when a
    fraction ``r`` of window elements is unique noise, while weighted
    similarity only loses the noise's *mass* (~``r``).
    """
    return {
        "fixed-interval": DetectorConfig.fixed_interval(cw),
        "constant-unweighted": DetectorConfig(cw_size=cw, threshold=0.6),
        "adaptive-unweighted": DetectorConfig(
            cw_size=cw, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        ),
        "constant-weighted": DetectorConfig(
            cw_size=cw, model=ModelKind.WEIGHTED, threshold=0.6
        ),
        "adaptive-weighted": DetectorConfig(
            cw_size=cw,
            model=ModelKind.WEIGHTED,
            trailing=TrailingPolicy.ADAPTIVE,
            threshold=0.6,
        ),
    }


def degradation(points: Sequence[RobustnessPoint], detector: str) -> float:
    """Score lost between the cleanest and dirtiest rate for a detector."""
    own = sorted(
        (p for p in points if p.detector == detector), key=lambda p: p.noise_rate
    )
    if len(own) < 2:
        raise ValueError(f"need at least two rates for {detector!r}")
    return own[0].score - own[-1].score
