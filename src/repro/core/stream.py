"""Streaming detection: run a detector over a trace that never fully
materializes in memory.

The online setting the paper targets has no stored trace at all — the
VM hands the detector ``skipFactor`` elements at a time.  This module
provides the two glue layers a deployment needs:

- :class:`StreamingDetector` — buffers an arbitrary-chunk element feed
  and drives :class:`~repro.core.detector.PhaseDetector` exactly
  ``skipFactor`` elements per step (notifying an optional callback at
  every phase boundary);
- :func:`detect_stream` — detection over a binary trace file via
  :func:`repro.profiles.io.stream_trace`, with memory bounded by the
  chunk size plus the window state.

Both produce output identical to an in-memory ``run()`` (tested).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import DetectedPhase, DetectionResult, PhaseDetector
from repro.core.state import PhaseState

#: Callback signature: (event, position) with event "start" or "end".
BoundaryCallback = Callable[[str, int], None]


class StreamingDetector:
    """Chunk-buffering front end for the reference detector.

    Feed chunks of any size with :meth:`feed`; call :meth:`finish` at
    end of stream.  States are accumulated per element; boundary events
    fire as soon as the detector commits them (a "start" fires on the
    step that enters P — necessarily after the true start, as the paper
    discusses).
    """

    def __init__(
        self,
        config: DetectorConfig,
        on_boundary: Optional[BoundaryCallback] = None,
    ) -> None:
        self.config = config
        self.detector = PhaseDetector(config)
        self._buffer: List[int] = []
        self._states = bytearray()
        self._position = 0
        self._in_phase = False
        self._on_boundary = on_boundary

    @property
    def position(self) -> int:
        """Number of elements consumed so far."""
        return self._position

    def feed(self, chunk: Union[Sequence[int], np.ndarray]) -> None:
        """Consume one chunk of profile elements (any length)."""
        if isinstance(chunk, np.ndarray):
            chunk = chunk.tolist()
        self._buffer.extend(chunk)
        skip = self.config.skip_factor
        while len(self._buffer) >= skip:
            group = self._buffer[:skip]
            del self._buffer[:skip]
            self._step(group)

    def _step(self, group: List[int]) -> None:
        state = self.detector.process_profile(group)
        in_phase = state is PhaseState.PHASE
        self._states.extend(b"\x01" * len(group) if in_phase else b"\x00" * len(group))
        if self._on_boundary is not None:
            if in_phase and not self._in_phase:
                self._on_boundary("start", self._position)
            elif self._in_phase and not in_phase:
                self._on_boundary("end", self._position)
        self._in_phase = in_phase
        self._position += len(group)

    def finish(self) -> DetectionResult:
        """Flush any partial step and return the full result."""
        if self._buffer:
            self._step(list(self._buffer))
            self._buffer.clear()
        phases: List[DetectedPhase] = self.detector.finish(self._position)
        if self._in_phase and self._on_boundary is not None:
            self._on_boundary("end", self._position)
            self._in_phase = False
        states = np.frombuffer(bytes(self._states), dtype=np.uint8).astype(bool)
        return DetectionResult(
            states=states, detected_phases=phases, config=self.config
        )


def detect_stream(
    source: Union[str, Iterable[np.ndarray]],
    config: DetectorConfig,
    chunk_size: int = 1 << 14,
    on_boundary: Optional[BoundaryCallback] = None,
) -> DetectionResult:
    """Detect phases over a streamed trace.

    ``source`` is either a path to a binary trace file (streamed via
    :func:`repro.profiles.io.stream_trace`) or any iterable of element
    arrays/lists.
    """
    if isinstance(source, (str,)) or hasattr(source, "__fspath__"):
        from repro.profiles.io import stream_trace

        chunks: Iterable = stream_trace(source, chunk_size=chunk_size)
    else:
        chunks = source
    streaming = StreamingDetector(config, on_boundary=on_boundary)
    for chunk in chunks:
        streaming.feed(chunk)
    return streaming.finish()
