"""Streaming detection: run a detector over a trace that never fully
materializes in memory.

The online setting the paper targets has no stored trace at all — the
VM hands the detector ``skipFactor`` elements at a time.  This module
provides the two glue layers a deployment needs:

- :class:`StreamingDetector` — buffers an arbitrary-chunk element feed
  and drives a :class:`~repro.core.decision.DecisionEngine` (whatever
  family the config names; the windowed
  :class:`~repro.core.runtime.DetectorRuntime` by default) exactly
  ``skipFactor`` elements per step (notifying an optional callback at
  every phase boundary);
- :func:`detect_stream` — detection over a binary trace file via
  :func:`repro.profiles.io.stream_trace`, with memory bounded by the
  chunk size plus the window state.

Both produce output identical to an in-memory ``run()`` (tested).  A
stream can also be suspended and resumed: :meth:`StreamingDetector.checkpoint`
wraps the runtime's versioned checkpoint with the stream's own state
(pending buffer, per-element states so far) for bit-identical
continuation — see ``docs/formats.md``.

Streaming always uses the incremental runtime paths: the array-native
kernels of :mod:`repro.core.kernels` need the whole trace up front for
the per-trace dense remap, which a stream by definition does not have.
Because the kernels are bit-identical, a checkpoint taken after a
kernel ``run()`` restores into a stream (and vice versa) seamlessly.
"""

from __future__ import annotations

import base64
import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.decision import (
    CheckpointError,
    DecisionEngine,
    DetectedPhase,
    DetectionResult,
    build_engine,
    restore_engine,
)

#: Callback signature: (event, position) with event "start" or "end".
BoundaryCallback = Callable[[str, int], None]


class StreamingDetector:
    """Chunk-buffering front end for the unified detector runtime.

    Feed chunks of any size with :meth:`feed`; call :meth:`finish` at
    end of stream.  States are accumulated per element; boundary events
    fire as soon as the detector commits them (a "start" fires on the
    step that enters P — necessarily after the true start, as the paper
    discusses).
    """

    def __init__(
        self,
        config: DetectorConfig,
        on_boundary: Optional[BoundaryCallback] = None,
        runtime: Optional[DecisionEngine] = None,
        observer=None,
        metrics=None,
    ) -> None:
        self.config = config
        self.runtime = (
            runtime
            if runtime is not None
            else build_engine(config, observer=observer, metrics=metrics)
        )
        self._buffer: List[int] = []
        self._states = bytearray()
        self._position = 0
        self._in_phase = False
        self._on_boundary = on_boundary

    @property
    def position(self) -> int:
        """Number of elements consumed so far."""
        return self._position

    @property
    def elements_fed(self) -> int:
        """Elements handed to :meth:`feed` so far (consumed + pending buffer)."""
        return self._position + len(self._buffer)

    def feed(self, chunk: Union[Sequence[int], np.ndarray]) -> None:
        """Consume one chunk of profile elements (any length)."""
        if isinstance(chunk, np.ndarray):
            chunk = chunk.tolist()
        self._buffer.extend(chunk)
        skip = self.config.skip_factor
        whole = (len(self._buffer) // skip) * skip
        if whole:
            groups = [self._buffer[start : start + skip] for start in range(0, whole, skip)]
            del self._buffer[:whole]
            self._advance(groups, whole)

    def _advance(self, groups: List[List[int]], length: int) -> None:
        base = self._position
        self._states.extend(bytes(length))
        self.runtime.advance(groups, self._states, base)
        self._position += length
        if self._on_boundary is not None:
            # Every element of a group shares its step's state, so the
            # byte transitions in the freshly written region are exactly
            # the boundary positions (position *before* the group).
            states = self._states
            in_phase = self._in_phase
            for start in range(base, self._position, len(groups[0])):
                group_in_phase = states[start] != 0
                if group_in_phase and not in_phase:
                    self._on_boundary("start", start)
                elif in_phase and not group_in_phase:
                    self._on_boundary("end", start)
                in_phase = group_in_phase
            self._in_phase = in_phase
        else:
            self._in_phase = self._states[-1] != 0

    def finish(self) -> DetectionResult:
        """Flush any partial step and return the full result."""
        if self._buffer:
            tail = list(self._buffer)
            self._buffer.clear()
            self._advance([tail], len(tail))
        phases: List[DetectedPhase] = self.runtime.finish(self._position)
        if self._in_phase and self._on_boundary is not None:
            self._on_boundary("end", self._position)
            self._in_phase = False
        states = np.frombuffer(bytes(self._states), dtype=np.uint8).astype(bool)
        return DetectionResult(
            states=states, detected_phases=phases, config=self.config
        )

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Serialize detector + stream state (see ``docs/formats.md``).

        The returned dict is the runtime's versioned checkpoint plus a
        ``stream`` section holding the pending sub-step buffer and the
        per-element states emitted so far (bit-packed, base64).
        """
        data = self.runtime.checkpoint()
        bits = np.frombuffer(bytes(self._states), dtype=np.uint8)
        data["stream"] = {
            "position": self._position,
            "in_phase": self._in_phase,
            "buffer": [int(element) for element in self._buffer],
            "states": base64.b64encode(np.packbits(bits).tobytes()).decode("ascii"),
        }
        return data

    @classmethod
    def restore(
        cls,
        data: Dict[str, object],
        on_boundary: Optional[BoundaryCallback] = None,
        observer=None,
        metrics=None,
    ) -> "StreamingDetector":
        """Rebuild a streaming detector from a :meth:`checkpoint` dict.

        Accepts both checkpoint schemas: v1 rebuilds the windowed
        runtime, v2 dispatches on the ``family`` tag (see
        :func:`repro.core.decision.restore_engine`).
        """
        runtime = restore_engine(data, observer=observer, metrics=metrics)
        stream_data = data.get("stream")
        if not isinstance(stream_data, dict):
            raise CheckpointError("checkpoint has no stream section")
        streaming = cls(runtime.config, on_boundary=on_boundary, runtime=runtime)
        streaming._position = int(stream_data["position"])
        streaming._in_phase = bool(stream_data["in_phase"])
        streaming._buffer = [int(element) for element in stream_data["buffer"]]
        packed = np.frombuffer(
            base64.b64decode(stream_data["states"]), dtype=np.uint8
        )
        bits = np.unpackbits(packed)[: streaming._position]
        streaming._states = bytearray(bits.tobytes())
        return streaming


def detect_stream(
    source: Union[str, os.PathLike, Iterable[np.ndarray]],
    config: DetectorConfig,
    chunk_size: int = 1 << 14,
    on_boundary: Optional[BoundaryCallback] = None,
) -> DetectionResult:
    """Detect phases over a streamed trace.

    ``source`` is either a path to a binary trace file — ``str`` or any
    :class:`os.PathLike` — streamed via
    :func:`repro.profiles.io.stream_trace`, or any iterable of element
    arrays/lists.
    """
    if isinstance(source, (str, os.PathLike)):
        from repro.profiles.io import stream_trace

        chunks: Iterable = stream_trace(os.fspath(source), chunk_size=chunk_size)
    else:
        chunks = source
    streaming = StreamingDetector(config, on_boundary=on_boundary)
    for chunk in chunks:
        streaming.feed(chunk)
    return streaming.finish()
