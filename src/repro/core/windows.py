"""Window bookkeeping shared by the similarity models.

The model keeps two adjacent windows over the element stream: the
current window (CW) holds the most recently consumed elements and the
trailing window (TW) the elements before them.  Elements flow
stream → CW → TW → discard; with the Adaptive TW policy in phase, the
TW stops discarding and grows to hold the whole phase.

The windows are always contiguous and end at the read position, so the
absolute trace offset of the TW's left edge is derivable — that is what
the anchor-corrected phase starts of Figure 8 use.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List

from repro.core.config import AnchorPolicy, ResizePolicy


class WindowPair:
    """The CW/TW buffers plus multiset counts, with change hooks.

    Subclasses (the similarity models) override the ``_on_*`` hooks to
    maintain their aggregates incrementally.
    """

    def __init__(self, cw_capacity: int, tw_capacity: int) -> None:
        if cw_capacity <= 0 or tw_capacity <= 0:
            raise ValueError("window capacities must be positive")
        self.cw_capacity = cw_capacity
        self.tw_capacity = tw_capacity
        self._cw: Deque[int] = deque()
        self._tw: Deque[int] = deque()
        self.cw_counts: Dict[int, int] = {}
        self.tw_counts: Dict[int, int] = {}
        #: Total elements consumed since the start of the trace.
        self.consumed = 0
        #: True once both windows have filled (cleared by :meth:`clear_and_seed`).
        self.filled = False
        #: True while the Adaptive TW is growing (in phase).
        self.growing = False
        #: Optional observability sink (anything with ``emit(event)``);
        #: None — the default — costs nothing beyond this attribute.
        self.observer = None

    # -- hooks ---------------------------------------------------------------

    def _on_cw_add(self, element: int, new_count: int) -> None:
        """Called after ``element``'s CW count becomes ``new_count``."""

    def _on_cw_remove(self, element: int, new_count: int) -> None:
        """Called after ``element``'s CW count becomes ``new_count``."""

    def _on_tw_add(self, element: int, new_count: int) -> None:
        """Called after ``element``'s TW count becomes ``new_count``."""

    def _on_tw_remove(self, element: int, new_count: int) -> None:
        """Called after ``element``'s TW count becomes ``new_count``."""

    # -- primitive moves -------------------------------------------------------

    def _cw_add(self, element: int) -> None:
        self._cw.append(element)
        count = self.cw_counts.get(element, 0) + 1
        self.cw_counts[element] = count
        self._on_cw_add(element, count)

    def _cw_pop_left(self) -> int:
        element = self._cw.popleft()
        count = self.cw_counts[element] - 1
        if count:
            self.cw_counts[element] = count
        else:
            del self.cw_counts[element]
        self._on_cw_remove(element, count)
        return element

    def _tw_add(self, element: int) -> None:
        self._tw.append(element)
        count = self.tw_counts.get(element, 0) + 1
        self.tw_counts[element] = count
        self._on_tw_add(element, count)

    def _tw_pop_left(self) -> int:
        element = self._tw.popleft()
        count = self.tw_counts[element] - 1
        if count:
            self.tw_counts[element] = count
        else:
            del self.tw_counts[element]
        self._on_tw_remove(element, count)
        return element

    # -- streaming ---------------------------------------------------------------

    def push(self, elements: Iterable[int]) -> None:
        """Consume ``elements``: fill/slide the windows one element at a time."""
        for element in elements:
            self.consumed += 1
            self._cw_add(element)
            if len(self._cw) > self.cw_capacity:
                self._tw_add(self._cw_pop_left())
                if not self.growing and len(self._tw) > self.tw_capacity:
                    self._tw_pop_left()
        if (
            not self.filled
            and len(self._tw) >= self.tw_capacity
            and len(self._cw) >= self.cw_capacity
        ):
            self.filled = True

    def clear_and_seed(self, seed_elements: List[int]) -> None:
        """Flush both windows and restart the CW with ``seed_elements``.

        Called at phase end (Figure 3's ``clearWindows``): the CW is
        re-initialized with the last ``skipFactor`` profile elements.
        ``consumed`` is not altered — the seed elements were already
        counted when they streamed in.
        """
        self._cw.clear()
        self._tw.clear()
        self.cw_counts.clear()
        self.tw_counts.clear()
        self.filled = False
        self.growing = False
        self._reset_aggregates()
        for element in seed_elements[-self.cw_capacity :]:
            self._cw_add(element)
        if self.observer is not None:
            self.observer.emit(
                {
                    "ev": "window_flush",
                    "step": self.consumed,
                    "seeded": min(len(seed_elements), self.cw_capacity),
                }
            )

    def _reset_aggregates(self) -> None:
        """Reset model aggregates after a flush (hook for subclasses)."""

    # -- geometry ---------------------------------------------------------------

    @property
    def cw_length(self) -> int:
        return len(self._cw)

    @property
    def tw_length(self) -> int:
        return len(self._tw)

    @property
    def tw_start_abs(self) -> int:
        """Absolute trace offset of the TW's leftmost element."""
        return self.consumed - len(self._cw) - len(self._tw)

    # -- anchoring (Section 5) ------------------------------------------------------

    def anchor_index(self, policy: AnchorPolicy) -> int:
        """Find the anchor point inside the TW.

        Noisy elements are those in the TW but not in the CW.  RN
        anchors one element right of the rightmost noisy element; LNN
        anchors at the leftmost non-noisy element.  With no noisy
        elements both anchor at 0; with only noisy elements both anchor
        at the TW's end (an empty phase prefix).
        """
        cw_counts = self.cw_counts
        if policy is AnchorPolicy.RN:
            anchor = 0
            for index, element in enumerate(self._tw):
                if element not in cw_counts:
                    anchor = index + 1
            return anchor
        for index, element in enumerate(self._tw):
            if element in cw_counts:
                return index
        return len(self._tw)

    def anchor_and_resize(
        self, anchor_policy: AnchorPolicy, resize_policy: ResizePolicy, adaptive: bool
    ) -> int:
        """Anchor the TW at phase start; return the anchor's absolute offset.

        For the Adaptive TW the windows are resized per ``resize_policy``
        and the TW switches to growth mode.  For the Constant TW this
        only computes the anchor position (used for corrected
        boundaries); the windows are untouched.
        """
        anchor = self.anchor_index(anchor_policy)
        anchor_abs = self.tw_start_abs + anchor
        if not adaptive:
            return anchor_abs
        moved = 0
        if resize_policy is ResizePolicy.SLIDE:
            # Drop TW[:anchor]; refill the TW from the CW's left so its
            # left boundary lands on the anchor point.  The CW shrinks
            # and refills as the stream continues.
            for _ in range(anchor):
                self._tw_pop_left()
            moved = max(0, min(anchor, len(self._cw) - 1))
            for _ in range(moved):
                self._tw_add(self._cw_pop_left())
        else:  # MOVE: shrink the TW from the left; CW unaffected.
            for _ in range(anchor):
                self._tw_pop_left()
        self.growing = True
        if self.observer is not None:
            self.observer.emit(
                {
                    "ev": "tw_resize",
                    "step": self.consumed,
                    "anchor": anchor,
                    "dropped": anchor,
                    "moved": moved,
                    "policy": resize_policy.value,
                }
            )
        return anchor_abs
