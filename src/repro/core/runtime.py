"""The unified incremental windowed-detector runtime.

Every way this codebase runs a windowed detector — the readable
reference :class:`~repro.core.detector.PhaseDetector`, the optimized
:func:`~repro.core.engine.run_detector`, the chunk-buffering
:class:`~repro.core.stream.StreamingDetector`, and the multi-config
:class:`~repro.core.bank.DetectorBank` — is a thin front over one
:class:`DetectorRuntime`.  The runtime owns the full detector state
(windows, counts, analyzer statistics, the open-phase record) and
advances it ``skipFactor`` elements at a time, which is exactly the
online contract of the paper's Figure 3 loop: the VM hands the detector
one profile group per step.

:class:`DetectorRuntime` is the windowed-grid implementation of the
generic :class:`~repro.core.decision.DecisionEngine` — phase
bookkeeping, decision records, and the chunked drivers live in
:mod:`repro.core.decision` and are shared with the non-windowed
families in :mod:`repro.comparators`.  Two equivalent execution paths
share the runtime's state:

- :meth:`DetectorRuntime.step` — the reference path, structured like
  the paper's pseudo-code on top of the pluggable
  :class:`~repro.core.models.SimilarityModel` /
  :class:`~repro.core.analyzers.Analyzer` components.  This is the path
  custom components (extensions, metered models) go through, and it
  returns a :class:`StepOutcome` carrying the similarity value the
  decision actually used.
- :meth:`DetectorRuntime.advance` — the optimized path: the former
  engine loop, inlining the per-element window/count bookkeeping with
  everything hot in local variables.  It operates directly on the
  standard model's deques and count dicts and syncs all scalar state
  back on exit, so the two paths interleave freely and a checkpoint
  taken after either is identical.  Rare events (phase entry anchoring,
  window flushes) are delegated to the same
  :class:`~repro.core.windows.WindowPair` methods the reference path
  uses.  :meth:`DetectorRuntime.advance_flat` is the same loop
  specialized for ``skipFactor == 1`` lanes (each element its own
  group), which lets the bank's lockstep lanes skip per-element group
  lists entirely.

Whole-trace runs additionally route through the array-native kernels of
:mod:`repro.core.kernels` when the configuration qualifies — dense
element codes over flat count buffers, or a fully vectorized pass for
non-adaptive windows — producing bit-identical results (same states,
phases, similarity values, and checkpoints) at a fraction of the cost.

The runtime's state is serializable: :meth:`DetectorRuntime.checkpoint`
returns a JSON-safe dict (the versioned **v1** windowed schema, see
``docs/formats.md``) from which :meth:`DetectorRuntime.restore` resumes
with bit-identical continuation — same states, same phases, same event
stream as an uninterrupted run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.analyzers import (
    Analyzer,
    AverageAnalyzer,
    ThresholdAnalyzer,
    build_analyzer,
)
from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.decision import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CHECKPOINT_VERSION_FAMILY,
    WINDOWED_FAMILY,
    CheckpointError,
    DecisionEngine,
    DetectedPhase,
    DetectionResult,
    PhaseDecision,
    PhaseTracker,
    StepOutcome,
    validate_checkpoint,
)
from repro.core.models import (
    SimilarityModel,
    UnweightedSetModel,
    WeightedSetModel,
    build_model,
)
from repro.core.state import PhaseState
from repro.profiles.trace import BranchTrace

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CHECKPOINT_VERSION_FAMILY",
    "SEGMENT_ELEMENTS",
    "CheckpointError",
    "DecisionEngine",
    "DetectedPhase",
    "DetectionResult",
    "DetectorRuntime",
    "PhaseDecision",
    "PhaseTracker",
    "StepOutcome",
    "validate_checkpoint",
]

#: Elements per fused :meth:`DetectorRuntime.run` segment — bounds the
#: transient group-list memory without measurable sync overhead.
SEGMENT_ELEMENTS = 1 << 16


class DetectorRuntime(DecisionEngine):
    """One windowed detector's full incremental state plus the two ways
    to advance it.

    Args:
        config: the detector configuration.
        observer: optional observability sink (anything with an
            ``emit(event: dict)`` method — see :mod:`repro.obs`); the
            default ``None`` keeps both paths free of event
            construction.
        model: optional replacement similarity model (extensions); any
            non-standard component routes :meth:`advance` through the
            reference :meth:`step` path.
        analyzer: optional replacement analyzer, same rules.
        metrics: optional metrics registry (anything with a
            ``histogram(name)`` accessor whose result has
            ``observe(seconds)`` — see :mod:`repro.obs.metrics`); when
            set, every :meth:`advance` chunk records its wall time in
            the ``runtime.advance_seconds`` histogram.  The default
            ``None`` costs one branch per chunk, never per element.
    """

    family = WINDOWED_FAMILY

    def __init__(
        self,
        config: DetectorConfig,
        observer=None,
        model: Optional[SimilarityModel] = None,
        analyzer: Optional[Analyzer] = None,
        metrics=None,
    ) -> None:
        super().__init__(config, observer=observer, metrics=metrics)
        self.model: SimilarityModel = model if model is not None else build_model(config)
        self.analyzer: Analyzer = analyzer if analyzer is not None else build_analyzer(config)
        self._adaptive = config.trailing is TrailingPolicy.ADAPTIVE
        self.model.observer = observer  # windows emit tw_resize/window_flush

    # -- observer plumbing -----------------------------------------------------

    @property
    def observer(self):
        return self._observer

    @observer.setter
    def observer(self, value) -> None:
        self._observer = value
        self.model.observer = value
        self.tracker.observer = value

    # -- derived views ---------------------------------------------------------

    @property
    def consumed(self) -> int:
        """Total profile elements consumed since the start of the stream."""
        return self.model.consumed

    def fused_capable(self) -> bool:
        """True when :meth:`advance` may use the optimized inline path.

        Requires the exact standard component classes: subclasses and
        wrappers (metered models, extension analyzers) carry their own
        state the inline loop cannot maintain, so they take the
        reference path.
        """
        return type(self.model) in (UnweightedSetModel, WeightedSetModel) and type(
            self.analyzer
        ) in (ThresholdAnalyzer, AverageAnalyzer)

    # -- the reference path ----------------------------------------------------

    def step(self, elements: Sequence[int]) -> StepOutcome:
        """Consume one ``skipFactor`` group via the pluggable components.

        This is the framework's ``processProfile`` entry point,
        structured exactly like the paper's pseudo-code.  The returned
        state applies to every element passed in.
        """
        elements = list(elements)
        model = self.model
        analyzer = self.analyzer
        model.push(elements)

        observer = self._observer
        if not model.filled:
            new_state = PhaseState.TRANSITION
            similarity: Optional[float] = None
        else:
            similarity = model.similarity()
            if observer is not None:
                step = model.consumed
                observer.emit(
                    {
                        "ev": "similarity",
                        "step": step,
                        "value": similarity,
                        "cw": model.cw_length,
                        "tw": model.tw_length,
                    }
                )
                bar = analyzer.effective_bar(self.state)
            new_state = analyzer.process_value(similarity, self.state)
            if observer is not None:
                observer.emit(
                    {
                        "ev": "decision",
                        "step": step,
                        "state": "P" if new_state.is_phase() else "T",
                        "value": similarity,
                        "bar": bar,
                    }
                )

        entered = False
        closed: Optional[DetectedPhase] = None
        if self.state.is_transition() and new_state.is_phase():
            # Start phase: anchor the TW and reset analyzer statistics.
            anchor_abs = model.anchor_and_resize(
                self.config.anchor, self.config.resize, self._adaptive
            )
            analyzer.reset_stats(similarity if similarity is not None else 0.0)
            detected_start = model.consumed - len(elements)
            self.tracker.enter(model.consumed, detected_start, anchor_abs)
            entered = True
        elif self.state.is_phase() and new_state.is_transition():
            # End phase: record it (while the stats are live), then
            # flush the windows and reseed the CW.
            closed = self._close(model.consumed - len(elements))
            model.clear_and_seed(elements)
            analyzer.clear()
        elif self.state.is_phase():
            # In phase: track statistics.
            if similarity is not None:
                analyzer.update_stats(similarity)

        self.state = new_state
        return StepOutcome(new_state, similarity, entered, closed)

    def _close(self, end: int) -> DetectedPhase:
        stats = self.analyzer.stats
        mean = stats.total / stats.count if stats.count else 0.0
        return self.tracker.exit(self.model.consumed, end, mean)

    # -- the optimized path ----------------------------------------------------

    def _advance_groups(
        self, groups: Sequence[Sequence[int]], states: bytearray, base: int
    ) -> None:
        """With the standard components this runs the optimized inline
        loop; otherwise it loops :meth:`step`."""
        if self.fused_capable():
            self._advance_fused(groups, states, base)
        else:
            super()._advance_groups(groups, states, base)

    def _advance_elements(
        self, elements: Sequence[int], states: bytearray, base: int
    ) -> None:
        if self.fused_capable():
            self._advance_fused_single(elements, states, base)
        else:
            super()._advance_elements(elements, states, base)

    def _advance_fused(
        self, groups: Sequence[Sequence[int]], states: bytearray, base: int
    ) -> None:
        """The optimized loop (the former engine, see module docstring).

        Key techniques:

        - similarity aggregates are maintained incrementally: the
          unweighted model's distinct/shared counters always; the
          weighted model's scaled numerator
          ``S = sum_e min(cw_e * |TW|, tw_e * |CW|)`` whenever both
          window lengths are at their steady-state capacities (count
          deltas are then exact with fixed lengths).  When lengths move
          — initial fill, post-anchor refill, Adaptive TW growth — the
          numerator is recomputed over the CW's distinct elements,
          which in-phase is small because the content is repetitive;
        - everything hot is a local variable, synced back to the model
          and analyzer objects on exit (and around the rare transition
          calls into :class:`~repro.core.windows.WindowPair`).
        """
        config = self.config
        model = self.model
        analyzer = self.analyzer
        tracker = self.tracker
        observer = self._observer
        emit = observer.emit if observer is not None else None

        cw_cap = model.cw_capacity
        tw_cap = model.tw_capacity
        adaptive = self._adaptive
        weighted = type(model) is WeightedSetModel
        threshold_analyzer = type(analyzer) is ThresholdAnalyzer
        threshold = analyzer.threshold if threshold_analyzer else 0.0
        delta = 0.0 if threshold_analyzer else analyzer.delta
        enter_threshold = 0.0 if threshold_analyzer else analyzer.enter_threshold
        anchor_policy = config.anchor
        resize_policy = config.resize

        cw = model._cw
        tw = model._tw
        cw_counts = model.cw_counts
        tw_counts = model.tw_counts
        consumed = model.consumed
        filled = model.filled
        growing = model.growing
        in_phase = self.state is PhaseState.PHASE

        stats = analyzer.stats
        stat_total = stats.total
        stat_count = stats.count
        stat_min = stats.minimum
        stat_max = stats.maximum

        # Unweighted aggregates (always maintained; they are cheap).
        distinct_cw = len(cw_counts)
        shared = 0
        for element in cw_counts:
            if element in tw_counts:
                shared += 1
        # Weighted aggregate; valid only when s_dirty is False.
        s_num = 0
        s_dirty = True

        cw_append = cw.append
        cw_popleft = cw.popleft
        tw_append = tw.append
        tw_popleft = tw.popleft
        cw_counts_get = cw_counts.get
        tw_counts_get = tw_counts.get

        offset = base
        for group in groups:
            group_len = len(group)

            # The incremental weighted numerator is exact only while both
            # windows sit at their steady-state lengths for the whole group.
            steady_w = (
                weighted
                and not s_dirty
                and filled
                and not growing
                and len(cw) == cw_cap
                and len(tw) == tw_cap
            )
            if weighted and not steady_w:
                s_dirty = True

            # ---- push the group through the windows --------------------------
            for element in group:
                consumed += 1
                # CW add
                cw_append(element)
                count = cw_counts_get(element, 0) + 1
                cw_counts[element] = count
                if count == 1:
                    distinct_cw += 1
                    if element in tw_counts:
                        shared += 1
                if steady_w:
                    tw_count = tw_counts_get(element, 0)
                    if tw_count:
                        s_num += min(count * tw_cap, tw_count * cw_cap) - min(
                            (count - 1) * tw_cap, tw_count * cw_cap
                        )
                if len(cw) > cw_cap:
                    # CW evict -> TW add
                    old = cw_popleft()
                    old_count = cw_counts[old] - 1
                    if old_count:
                        cw_counts[old] = old_count
                    else:
                        del cw_counts[old]
                        distinct_cw -= 1
                        if old in tw_counts:
                            shared -= 1
                    old_tw = tw_counts_get(old, 0)
                    if steady_w and old_tw:
                        s_num += min(old_count * tw_cap, old_tw * cw_cap) - min(
                            (old_count + 1) * tw_cap, old_tw * cw_cap
                        )
                    tw_append(old)
                    tw_counts[old] = old_tw + 1
                    if old_tw == 0 and old_count:
                        shared += 1
                    if steady_w and old_count:
                        s_num += min(old_count * tw_cap, (old_tw + 1) * cw_cap) - min(
                            old_count * tw_cap, old_tw * cw_cap
                        )
                    if not growing and len(tw) > tw_cap:
                        dead = tw_popleft()
                        dead_count = tw_counts[dead] - 1
                        if dead_count:
                            tw_counts[dead] = dead_count
                        else:
                            del tw_counts[dead]
                            if dead in cw_counts:
                                shared -= 1
                        if steady_w:
                            dead_cw = cw_counts_get(dead, 0)
                            if dead_cw:
                                s_num += min(
                                    dead_cw * tw_cap, dead_count * cw_cap
                                ) - min(dead_cw * tw_cap, (dead_count + 1) * cw_cap)

            if not filled and len(tw) >= tw_cap and len(cw) >= cw_cap:
                filled = True

            # ---- similarity + analyzer ---------------------------------------
            if not filled:
                new_in_phase = False
                similarity = 0.0
            else:
                if weighted:
                    cw_len = len(cw)
                    tw_len = len(tw)
                    if s_dirty:
                        s_num = 0
                        for element, count in cw_counts.items():
                            tw_count = tw_counts_get(element)
                            if tw_count is not None:
                                s_num += min(count * tw_len, tw_count * cw_len)
                        if cw_len == cw_cap and tw_len == tw_cap:
                            s_dirty = False
                    similarity = s_num / (cw_len * tw_len) if cw_len and tw_len else 0.0
                else:
                    similarity = shared / distinct_cw if distinct_cw else 0.0
                if threshold_analyzer:
                    new_in_phase = similarity >= threshold
                elif in_phase and stat_count:
                    new_in_phase = similarity >= (stat_total / stat_count) - delta
                else:
                    new_in_phase = similarity >= enter_threshold
                if emit is not None:
                    emit(
                        {
                            "ev": "similarity",
                            "step": consumed,
                            "value": similarity,
                            "cw": len(cw),
                            "tw": len(tw),
                        }
                    )
                    if threshold_analyzer:
                        bar = threshold
                    elif in_phase and stat_count:
                        bar = (stat_total / stat_count) - delta
                    else:
                        bar = enter_threshold
                    emit(
                        {
                            "ev": "decision",
                            "step": consumed,
                            "state": "P" if new_in_phase else "T",
                            "value": similarity,
                            "bar": bar,
                        }
                    )

            # ---- state transitions (Figure 3) --------------------------------
            if not in_phase and new_in_phase:
                # Start phase: sync the model and delegate anchoring (and
                # the Adaptive resize + tw_resize event) to the windows.
                model.consumed = consumed
                model.filled = filled
                model.growing = growing
                if not weighted:
                    model._distinct_cw = distinct_cw
                    model._shared = shared
                anchor_abs = model.anchor_and_resize(
                    anchor_policy, resize_policy, adaptive
                )
                growing = model.growing
                distinct_cw = len(cw_counts)
                shared = 0
                for element in cw_counts:
                    if element in tw_counts:
                        shared += 1
                s_dirty = True
                analyzer.reset_stats(similarity)
                stat_total = stats.total
                stat_count = stats.count
                stat_min = stats.minimum
                stat_max = stats.maximum
                tracker.enter(consumed, consumed - group_len, anchor_abs)
            elif in_phase and not new_in_phase:
                # End phase: record it, then flush windows and reseed the CW.
                phase_mean = stat_total / stat_count if stat_count else 0.0
                tracker.exit(consumed, consumed - group_len, phase_mean)
                model.consumed = consumed
                if not weighted:
                    model._distinct_cw = distinct_cw
                    model._shared = shared
                model.clear_and_seed(list(group))
                analyzer.clear()
                filled = False
                growing = False
                distinct_cw = len(cw_counts)
                shared = 0
                s_num = 0
                s_dirty = True
                stat_total = stats.total
                stat_count = stats.count
                stat_min = stats.minimum
                stat_max = stats.maximum
            elif in_phase:
                stat_total += similarity
                stat_count += 1
                if similarity < stat_min:
                    stat_min = similarity
                if similarity > stat_max:
                    stat_max = similarity

            if new_in_phase:
                states[offset : offset + group_len] = b"\x01" * group_len

            in_phase = new_in_phase
            offset += group_len

        # ---- sync everything back so the paths interleave freely -------------
        model.consumed = consumed
        model.filled = filled
        model.growing = growing
        if not weighted:
            model._distinct_cw = distinct_cw
            model._shared = shared
        stats.total = stat_total
        stats.count = stat_count
        stats.minimum = stat_min
        stats.maximum = stat_max
        self.state = PhaseState.PHASE if in_phase else PhaseState.TRANSITION

    def _advance_fused_single(
        self, elements: Sequence[int], states: bytearray, base: int
    ) -> None:
        """:meth:`_advance_fused` specialized for ``skipFactor == 1``.

        Bit-identical to the group loop with every element wrapped in
        its own singleton group (the single-element equivalence test
        pins this), but iterates the flat element list the bank's
        skip-1 lanes share — no group lists, no inner loop, and
        single-byte state stores.  Same arithmetic in the same order,
        so states, similarity floats, events, and checkpoints are
        unchanged.
        """
        config = self.config
        model = self.model
        analyzer = self.analyzer
        tracker = self.tracker
        observer = self._observer
        emit = observer.emit if observer is not None else None

        cw_cap = model.cw_capacity
        tw_cap = model.tw_capacity
        adaptive = self._adaptive
        weighted = type(model) is WeightedSetModel
        threshold_analyzer = type(analyzer) is ThresholdAnalyzer
        threshold = analyzer.threshold if threshold_analyzer else 0.0
        delta = 0.0 if threshold_analyzer else analyzer.delta
        enter_threshold = 0.0 if threshold_analyzer else analyzer.enter_threshold
        anchor_policy = config.anchor
        resize_policy = config.resize

        cw = model._cw
        tw = model._tw
        cw_counts = model.cw_counts
        tw_counts = model.tw_counts
        consumed = model.consumed
        filled = model.filled
        growing = model.growing
        in_phase = self.state is PhaseState.PHASE

        stats = analyzer.stats
        stat_total = stats.total
        stat_count = stats.count
        stat_min = stats.minimum
        stat_max = stats.maximum

        distinct_cw = len(cw_counts)
        shared = 0
        for element in cw_counts:
            if element in tw_counts:
                shared += 1
        s_num = 0
        s_dirty = True

        cw_append = cw.append
        cw_popleft = cw.popleft
        tw_append = tw.append
        tw_popleft = tw.popleft
        cw_counts_get = cw_counts.get
        tw_counts_get = tw_counts.get

        offset = base
        for element in elements:
            steady_w = (
                weighted
                and not s_dirty
                and filled
                and not growing
                and len(cw) == cw_cap
                and len(tw) == tw_cap
            )
            if weighted and not steady_w:
                s_dirty = True

            # ---- push the element through the windows ------------------------
            consumed += 1
            cw_append(element)
            count = cw_counts_get(element, 0) + 1
            cw_counts[element] = count
            if count == 1:
                distinct_cw += 1
                if element in tw_counts:
                    shared += 1
            if steady_w:
                tw_count = tw_counts_get(element, 0)
                if tw_count:
                    s_num += min(count * tw_cap, tw_count * cw_cap) - min(
                        (count - 1) * tw_cap, tw_count * cw_cap
                    )
            if len(cw) > cw_cap:
                old = cw_popleft()
                old_count = cw_counts[old] - 1
                if old_count:
                    cw_counts[old] = old_count
                else:
                    del cw_counts[old]
                    distinct_cw -= 1
                    if old in tw_counts:
                        shared -= 1
                old_tw = tw_counts_get(old, 0)
                if steady_w and old_tw:
                    s_num += min(old_count * tw_cap, old_tw * cw_cap) - min(
                        (old_count + 1) * tw_cap, old_tw * cw_cap
                    )
                tw_append(old)
                tw_counts[old] = old_tw + 1
                if old_tw == 0 and old_count:
                    shared += 1
                if steady_w and old_count:
                    s_num += min(old_count * tw_cap, (old_tw + 1) * cw_cap) - min(
                        old_count * tw_cap, old_tw * cw_cap
                    )
                if not growing and len(tw) > tw_cap:
                    dead = tw_popleft()
                    dead_count = tw_counts[dead] - 1
                    if dead_count:
                        tw_counts[dead] = dead_count
                    else:
                        del tw_counts[dead]
                        if dead in cw_counts:
                            shared -= 1
                    if steady_w:
                        dead_cw = cw_counts_get(dead, 0)
                        if dead_cw:
                            s_num += min(
                                dead_cw * tw_cap, dead_count * cw_cap
                            ) - min(dead_cw * tw_cap, (dead_count + 1) * cw_cap)

            if not filled and len(tw) >= tw_cap and len(cw) >= cw_cap:
                filled = True

            # ---- similarity + analyzer ---------------------------------------
            if not filled:
                new_in_phase = False
                similarity = 0.0
            else:
                if weighted:
                    cw_len = len(cw)
                    tw_len = len(tw)
                    if s_dirty:
                        s_num = 0
                        for cw_element, count in cw_counts.items():
                            tw_count = tw_counts_get(cw_element)
                            if tw_count is not None:
                                s_num += min(count * tw_len, tw_count * cw_len)
                        if cw_len == cw_cap and tw_len == tw_cap:
                            s_dirty = False
                    similarity = s_num / (cw_len * tw_len) if cw_len and tw_len else 0.0
                else:
                    similarity = shared / distinct_cw if distinct_cw else 0.0
                if threshold_analyzer:
                    new_in_phase = similarity >= threshold
                elif in_phase and stat_count:
                    new_in_phase = similarity >= (stat_total / stat_count) - delta
                else:
                    new_in_phase = similarity >= enter_threshold
                if emit is not None:
                    emit(
                        {
                            "ev": "similarity",
                            "step": consumed,
                            "value": similarity,
                            "cw": len(cw),
                            "tw": len(tw),
                        }
                    )
                    if threshold_analyzer:
                        bar = threshold
                    elif in_phase and stat_count:
                        bar = (stat_total / stat_count) - delta
                    else:
                        bar = enter_threshold
                    emit(
                        {
                            "ev": "decision",
                            "step": consumed,
                            "state": "P" if new_in_phase else "T",
                            "value": similarity,
                            "bar": bar,
                        }
                    )

            # ---- state transitions (Figure 3) --------------------------------
            if not in_phase and new_in_phase:
                model.consumed = consumed
                model.filled = filled
                model.growing = growing
                if not weighted:
                    model._distinct_cw = distinct_cw
                    model._shared = shared
                anchor_abs = model.anchor_and_resize(
                    anchor_policy, resize_policy, adaptive
                )
                growing = model.growing
                distinct_cw = len(cw_counts)
                shared = 0
                for cw_element in cw_counts:
                    if cw_element in tw_counts:
                        shared += 1
                s_dirty = True
                analyzer.reset_stats(similarity)
                stat_total = stats.total
                stat_count = stats.count
                stat_min = stats.minimum
                stat_max = stats.maximum
                tracker.enter(consumed, consumed - 1, anchor_abs)
            elif in_phase and not new_in_phase:
                phase_mean = stat_total / stat_count if stat_count else 0.0
                tracker.exit(consumed, consumed - 1, phase_mean)
                model.consumed = consumed
                if not weighted:
                    model._distinct_cw = distinct_cw
                    model._shared = shared
                model.clear_and_seed([element])
                analyzer.clear()
                filled = False
                growing = False
                distinct_cw = len(cw_counts)
                shared = 0
                s_num = 0
                s_dirty = True
                stat_total = stats.total
                stat_count = stats.count
                stat_min = stats.minimum
                stat_max = stats.maximum
            elif in_phase:
                stat_total += similarity
                stat_count += 1
                if similarity < stat_min:
                    stat_min = similarity
                if similarity > stat_max:
                    stat_max = similarity

            if new_in_phase:
                states[offset] = 1

            in_phase = new_in_phase
            offset += 1

        # ---- sync everything back so the paths interleave freely -------------
        model.consumed = consumed
        model.filled = filled
        model.growing = growing
        if not weighted:
            model._distinct_cw = distinct_cw
            model._shared = shared
        stats.total = stat_total
        stats.count = stat_count
        stats.minimum = stat_min
        stats.maximum = stat_max
        self.state = PhaseState.PHASE if in_phase else PhaseState.TRANSITION

    # -- whole-trace driving ---------------------------------------------------

    def run(
        self,
        trace: BranchTrace,
        record_similarity: bool = False,
        fused: Optional[bool] = None,
        kernels: Optional[bool] = None,
    ) -> DetectionResult:
        """Run this runtime over a whole trace from its current state.

        ``fused=None`` picks the optimized path whenever the components
        allow it; ``fused=False`` forces the reference :meth:`step` loop
        (what :class:`~repro.core.detector.PhaseDetector` uses, keeping
        the two paths independently testable).  ``record_similarity``
        collects the per-step similarity values the decisions used
        (reference path only).

        When the fused path is selected, the array-native kernels of
        :mod:`repro.core.kernels` take over whenever this runtime and
        the configuration qualify (fresh runtime, standard components,
        no observer; see ``docs/performance.md``), producing
        bit-identical results faster.  ``kernels=False`` — or the
        ``REPRO_KERNELS=0`` environment variable — forces the legacy
        fused loop; ``kernels=None`` (the default) consults the
        environment.
        """
        data = trace.array
        total = int(data.size)
        skip = self.config.skip_factor
        observer = self._observer
        if observer is not None:
            observer.emit(
                {
                    "ev": "run_begin",
                    "step": 0,
                    "trace": trace.name,
                    "elements": total,
                    "config": self.config.describe(),
                }
            )
        use_fused = self.fused_capable() if fused is None else fused
        if record_similarity or not use_fused:
            states, similarities = self._run_reference(data, total, skip, record_similarity)
        else:
            similarities = None
            states = self._run_kernel(trace, kernels)
            if states is None:
                states = self._run_fused(data, total, skip)
        # For a fresh runtime consumed == total; a restored runtime closes
        # its final phase at the absolute stream position instead.
        phases = self.finish(self.model.consumed)
        if observer is not None:
            observer.emit(
                {
                    "ev": "run_end",
                    "step": total,
                    "phases": len(phases),
                    "elements": total,
                }
            )
        return DetectionResult(
            states=states,
            detected_phases=phases,
            config=self.config,
            similarity_values=similarities,
        )

    def _run_reference(self, data, total: int, skip: int, record_similarity: bool):
        states = np.zeros(total, dtype=bool)
        similarities = np.full(total, np.nan) if record_similarity else None
        elements = data.tolist()
        for start in range(0, total, skip):
            group = elements[start : start + skip]
            outcome = self.step(group)
            group_len = len(group)
            if outcome.state.is_phase():
                states[start : start + group_len] = True
            if similarities is not None and outcome.similarity is not None:
                similarities[start : start + group_len] = outcome.similarity
        return states, similarities

    def _run_kernel(
        self, trace: BranchTrace, kernels: Optional[bool]
    ) -> Optional[np.ndarray]:
        """Run via :mod:`repro.core.kernels` if enabled and eligible.

        Returns the state array, or ``None`` when the kernels are
        disabled or this runtime does not qualify (non-standard
        components, an attached observer, or a restored/partially
        consumed runtime) — the caller then falls back to
        :meth:`_run_fused`.
        """
        # Imported lazily: kernels.py imports this module for
        # DetectedPhase, so a top-level import would be circular.
        from repro.core import kernels as kernel_mod

        path = kernel_mod.kernel_path(self, kernels)
        if path == "vectorized":
            return kernel_mod.run_vectorized(self, trace)
        if path == "dense":
            return kernel_mod.run_dense(self, trace)
        return None

    def _run_fused(self, data, total: int, skip: int) -> np.ndarray:
        buffer = bytearray(total)
        elements = data.tolist()
        segment = skip * max(1, SEGMENT_ELEMENTS // skip)
        base = 0
        while base < total:
            stop = min(base + segment, total)
            groups = [elements[start : start + skip] for start in range(base, stop, skip)]
            self._advance_fused(groups, buffer, base)
            base = stop
        return np.frombuffer(bytes(buffer), dtype=np.uint8).astype(bool)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Serialize the full detector state as a JSON-safe dict.

        The windowed grid keeps its original **v1** schema (``version``
        = :data:`CHECKPOINT_VERSION`, documented in ``docs/formats.md``)
        — byte-for-byte what it wrote before the decision-layer split —
        so existing checkpoints and their consumers are untouched.
        :meth:`restore` resumes with bit-identical continuation.  Only
        the standard model/analyzer components are serializable —
        custom components raise :class:`CheckpointError`.
        """
        if not self.fused_capable():
            raise CheckpointError(
                "checkpointing requires the standard model/analyzer components, "
                f"got {type(self.model).__name__}/{type(self.analyzer).__name__}"
            )
        model = self.model
        stats = self.analyzer.stats
        tracker = self.tracker
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "config": self.config.to_dict(),
            "consumed": model.consumed,
            "state": self.state.value,
            "filled": model.filled,
            "growing": model.growing,
            "cw": [int(element) for element in model._cw],
            "tw": [int(element) for element in model._tw],
            "stats": {
                "count": stats.count,
                "total": stats.total,
                "minimum": stats.minimum,
                "maximum": stats.maximum,
            },
            "open_phase": (
                [tracker.open_detected, tracker.open_corrected]
                if tracker.open
                else None
            ),
            "phases": [
                [p.detected_start, p.corrected_start, p.end, p.mean_similarity]
                for p in tracker.phases
            ],
        }

    @classmethod
    def restore(
        cls, data: Dict[str, object], observer=None, metrics=None
    ) -> "DetectorRuntime":
        """Rebuild a runtime from a :meth:`checkpoint` dict (schema v1).

        Family (v2) checkpoints belong to their engines — route them
        through :func:`repro.core.decision.restore_engine` instead.
        """
        validate_checkpoint(data)
        if data.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{cls.__name__} reads windowed checkpoints "
                f"(version {CHECKPOINT_VERSION}), got version "
                f"{data.get('version')!r} — use "
                "repro.core.decision.restore_engine for family checkpoints"
            )
        config = DetectorConfig.from_dict(data["config"])  # type: ignore[arg-type]
        runtime = cls(config, observer=observer, metrics=metrics)
        model = runtime.model
        # Replay the windows through the add hooks so the model's
        # incremental aggregates are rebuilt exactly (TW first: the
        # shared count is attributed on the CW side).
        for element in data["tw"]:  # type: ignore[union-attr]
            model._tw_add(int(element))
        for element in data["cw"]:  # type: ignore[union-attr]
            model._cw_add(int(element))
        model.consumed = int(data["consumed"])  # type: ignore[arg-type]
        model.filled = bool(data["filled"])
        model.growing = bool(data["growing"])
        stats_data: Dict[str, object] = data["stats"]  # type: ignore[assignment]
        stats = runtime.analyzer.stats
        stats.count = int(stats_data["count"])  # type: ignore[arg-type]
        stats.total = float(stats_data["total"])  # type: ignore[arg-type]
        stats.minimum = float(stats_data["minimum"])  # type: ignore[arg-type]
        stats.maximum = float(stats_data["maximum"])  # type: ignore[arg-type]
        runtime.state = PhaseState(data["state"])
        tracker = runtime.tracker
        open_phase = data.get("open_phase")
        if open_phase is not None:
            tracker.open_detected = int(open_phase[0])  # type: ignore[index]
            tracker.open_corrected = int(open_phase[1])  # type: ignore[index]
        tracker.phases = [
            DetectedPhase(int(p[0]), int(p[1]), int(p[2]), float(p[3]))
            for p in data["phases"]  # type: ignore[union-attr]
        ]
        return runtime
