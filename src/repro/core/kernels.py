"""Array-native detector kernels.

The sweep machinery runs >10,000 detector instantiations over
million-element traces, and the per-element Python bookkeeping in
:meth:`~repro.core.runtime.DetectorRuntime._advance_fused` — dict
lookups keyed by packed int64 profile elements, deque rotation — is the
dominant cost of every sweep.  This module applies the standard move of
scalable online change-point systems (NEWMA, FOCuS): constant-size
numeric state over *densely remapped* element IDs, so the hot loop
indexes flat count buffers instead of hashing, plus a fully vectorized
whole-trace fast path for the configurations whose window state never
depends on analyzer decisions mid-stream.

Three cooperating pieces:

**Dense remapping** — :meth:`BranchTrace.dense_codes` maps the trace's
packed int64 elements to contiguous small ints (``codes``) once per
trace via one cached ``np.unique`` pass.  Every lane of a
:class:`~repro.core.bank.DetectorBank` pass shares the same remap, the
same way the bank already shares the trace decode.

**Flat count buffers** — :class:`DenseAdvancer` re-implements the fused
loop's CW/TW bookkeeping on preallocated per-code count lists plus
scalar intersection/weight accumulators.  Because elements flow
stream → CW → TW → discard, both windows are always *contiguous slices
of the trace*; the advancer therefore keeps no window deques at all —
just two lengths and the shared codes list — and evicts by position
arithmetic.  In the steady state (both windows at capacity) it walks
three parallel slices (incoming, CW→TW, TW→discard) in lockstep with
zero per-element index math.  All similarity aggregates are maintained
with the exact integer updates of the reference path, so every
similarity value is bit-identical.

**Vectorized whole-trace fast path** — :func:`run_vectorized` computes
similarity series with sliding-window array operations and derives
states and phases in one pass.  It covers every standard-component
configuration with the Threshold analyzer: Constant *and* Adaptive
trailing windows, unweighted *and* weighted models, any window
geometry.  The key observations:

- With a Constant TW, at any *filled* step the windows are pure
  functions of stream position (CW = the last ``cwSize`` elements,
  TW = the ``twSize`` before them), regardless of earlier phase
  entries/exits.  Entries do not move Constant windows, and the
  post-exit flush only shifts the *refill origin* — which affects when
  steps are filled, never the similarity value of a filled step.
- The unweighted similarity series reduces to two interval-stabbing
  counts over per-element previous-occurrence links: an element
  occurrence ``i`` is a distinct CW member for window starts
  ``l ∈ (max(prev[i], i-cwSize), i]``, and an adjacent occurrence pair
  ``(prev[i], i)`` puts its element in both windows for
  ``l ∈ (max(prev[i], i-cwSize), min(i, prev[i]+twSize)]``.  Both are
  O(n) with difference arrays.
- The weighted similarity is a pure integer sum
  ``Σ_e min(cw_e·|TW|, tw_e·|CW|)`` — order-independent, so it
  vectorizes for *any* geometry via blockwise occurrence matrices
  (one ``np.add.at`` scatter per block of steps, cell-budgeted).  The
  Fixed-Interval geometry (skip = CW = TW) keeps a leaner whole-block
  path, optionally compiled with numba (:mod:`repro.core._weighted_numba`,
  opt-in via ``REPRO_NUMBA=1``, soft-falls back to NumPy).
- The Adaptive TW *does* have analyzer→window feedback (the entry
  resize pins the TW to the anchor; in-phase the TW grows), but the
  feedback is episode-local: between phases the windows follow Constant
  geometry from the last flush origin, and within a phase the pinned
  TW boundary and refill/slide regimes are pure functions of the entry
  step.  :func:`run_vectorized` therefore walks phase *episodes* —
  constant-series scans to find each entry, then a segment-local
  vectorized in-phase scan (``_scan_phase_unweighted`` /
  ``_scan_phase_weighted``) to find the exit.

**Batched bank advancement** — :class:`SharedTraceKernels` caches
prev-occurrence links, skip-group boundaries, and whole similarity
series per window *signature* ``(weighted, cw, tw, skip)``, so a
:class:`~repro.core.bank.DetectorBank` whose members differ only by
threshold or anchor/resize policy computes each series once.
:func:`run_bank_batched` drives every vectorized member through one
shared cache (:func:`bank_batching_enabled` / ``REPRO_BANK_BATCHED=0``
to disable).

The detector's decision sequence is then replayed over the precomputed
series in *episodes*: scan for the next phase entry/exit with array
searches, and on each exit restart the filled-mask origin at the flush
point.  Phases, anchor-corrected starts, per-phase mean similarity and
the final runtime state (windows, analyzer statistics) are
reconstructed so that checkpoints taken after a vectorized run are
bit-identical to the incremental paths' — the config-matrix equivalence
suite in ``tests/core/test_kernels.py`` and the fuzz suite in
``tests/properties/test_kernel_properties.py`` pin states, phases,
similarity series, event streams and checkpoints against the reference
path, and the ``kernel-equivalence`` CI job byte-compares sweep caches
produced with kernels on vs. off.

Kernels are on by default wherever they apply (see the eligibility
predicates); set ``REPRO_KERNELS=0`` or pass ``kernels=False`` through
:func:`~repro.core.engine.run_detector` / the sweep stack to force the
legacy paths.  See ``docs/performance.md`` for eligibility rules and
measured speedups.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.core.analyzers import ThresholdAnalyzer
from repro.core.config import AnchorPolicy, ResizePolicy, TrailingPolicy
from repro.core.models import UnweightedSetModel, WeightedSetModel
from repro.core.state import PhaseState

__all__ = [
    "kernels_enabled",
    "bank_batching_enabled",
    "kernel_path",
    "dense_eligible",
    "vectorized_eligible",
    "DenseAdvancer",
    "run_dense",
    "run_vectorized",
    "SharedTraceKernels",
    "run_bank_batched",
]


def kernels_enabled() -> bool:
    """True unless the ``REPRO_KERNELS`` environment variable disables
    kernels (``0``/``false``/``off``/``no``)."""
    return os.environ.get("REPRO_KERNELS", "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def _fresh(runtime) -> bool:
    """True when ``runtime`` has consumed nothing (kernel paths assume
    stream position == trace position, which only holds from a cold
    start; restored runtimes take the legacy fused path)."""
    model = runtime.model
    return (
        model.consumed == 0
        and not model._cw
        and not model._tw
        and runtime.state is PhaseState.TRANSITION
        and not runtime.tracker.open
        and not runtime.tracker.phases
    )


def dense_eligible(runtime) -> bool:
    """True when :class:`DenseAdvancer` may drive ``runtime`` over a trace.

    Requires the exact standard components (same rule as
    :meth:`~repro.core.runtime.DetectorRuntime.fused_capable`), no
    observer (observed runs take the legacy fused path, which emits the
    canonical event stream), and a fresh runtime.
    """
    return runtime.fused_capable() and runtime.observer is None and _fresh(runtime)


def vectorized_eligible(runtime) -> bool:
    """True when :func:`run_vectorized` may run ``runtime`` over a trace.

    The vectorized path covers every standard-component configuration
    with the Threshold analyzer: Constant *and* Adaptive trailing
    windows, unweighted *and* weighted models, any window geometry.
    The Constant TW has no analyzer→window feedback at all; the
    Adaptive TW's only feedback (the entry resize, the in-phase growth)
    is replayed per phase episode with segment-local array work.  Only
    the Average analyzer — whose decision bar tracks in-phase
    statistics step by step — keeps the incremental dense path.
    """
    if not dense_eligible(runtime):
        return False
    return type(runtime.analyzer) is ThresholdAnalyzer


def bank_batching_enabled() -> bool:
    """True unless ``REPRO_BANK_BATCHED`` disables the batched bank
    advancer (``0``/``false``/``off``/``no``)."""
    return os.environ.get("REPRO_BANK_BATCHED", "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def kernel_path(engine, kernels: Optional[bool] = None) -> str:
    """Which kernel path drives ``engine`` over a whole trace.

    Returns ``"vectorized"``, ``"dense"``, or ``"legacy"`` — the single
    dispatch rule shared by :meth:`DetectorRuntime._run_kernel
    <repro.core.runtime.DetectorRuntime>` and the bank's member
    partition.  ``kernels=None`` consults ``REPRO_KERNELS``; non-window
    engines (``fused_capable()`` is False) always report ``"legacy"``.
    """
    if kernels is None:
        kernels = kernels_enabled()
    if not kernels:
        return "legacy"
    if vectorized_eligible(engine):
        return "vectorized"
    if dense_eligible(engine):
        return "dense"
    return "legacy"


# ---------------------------------------------------------------------------
# Flat count buffers: the dense incremental advancer
# ---------------------------------------------------------------------------


class DenseAdvancer:
    """The fused loop on flat count buffers over dense element codes.

    One advancer drives one :class:`~repro.core.runtime.DetectorRuntime`
    over one trace.  It mirrors ``_advance_fused`` decision for decision
    — same integer aggregates, same float operations in the same order —
    but replaces the per-element dict/deque bookkeeping with:

    - ``cw_count``/``tw_count``: per-code occurrence counts in plain
      Python lists (flat buffers indexed by dense code — no hashing);
    - implicit windows: both windows are contiguous trace slices, so
      only their lengths are tracked and evictions read the shared
      codes list by position;
    - a steady-state inner loop that walks the incoming / CW→TW /
      TW→discard slices in lockstep (zero index arithmetic per element).

    Model/analyzer/tracker objects are untouched during the pass; call
    :meth:`finalize` once at the end to sync every piece of state back
    so checkpoints and path interleavings behave exactly as with the
    legacy loop.  Rare events (phase entry anchoring and resizing, the
    phase-exit window flush) are computed inline on the flat state with
    the same semantics as :class:`~repro.core.windows.WindowPair`.
    """

    def __init__(self, runtime, codes: List[int], n_codes: int, data) -> None:
        if not dense_eligible(runtime):
            raise ValueError("runtime is not eligible for the dense kernel")
        self.runtime = runtime
        self.codes = codes
        self.n_codes = n_codes
        self.data = data  # the raw int64 trace array (for state sync-back)
        config = runtime.config
        self.skip = config.skip_factor
        self.cw_cap = config.cw_size
        self.tw_cap = config.effective_tw_size
        self.adaptive = config.trailing is TrailingPolicy.ADAPTIVE
        self.anchor_policy = config.anchor
        self.resize_policy = config.resize
        self.weighted = type(runtime.model) is WeightedSetModel
        analyzer = runtime.analyzer
        self.threshold_analyzer = type(analyzer) is ThresholdAnalyzer
        self.threshold = analyzer.threshold if self.threshold_analyzer else 0.0
        self.delta = 0.0 if self.threshold_analyzer else analyzer.delta
        self.enter_threshold = (
            0.0 if self.threshold_analyzer else analyzer.enter_threshold
        )
        # Flat per-code buffers (the whole point).
        self.cw_count = [0] * n_codes
        self.tw_count = [0] * n_codes
        self._seen = bytearray(n_codes)  # scratch for dedup scans
        # Sparse set of the CW's distinct codes (weighted model only):
        # compact list + per-code position, so the scaled-numerator
        # recompute iterates O(distinct) codes like the legacy dict —
        # not the whole O(cw_len) window slice.  Maintained by the
        # general loop; steady groups invalidate it (they keep the
        # numerator incrementally and never read it).
        self.cw_set: List[int] = []
        self.cw_set_pos = [0] * n_codes if self.weighted else []
        self.cw_set_valid = True
        # Scalar state, mirroring the legacy loop's locals.
        self.consumed = 0
        self.cw_len = 0
        self.tw_len = 0
        self.filled = False
        self.growing = False
        self.in_phase = False
        self.distinct_cw = 0
        self.shared = 0
        self.s_num = 0
        self.s_dirty = True
        self.stat_total = 0.0
        self.stat_count = 0
        self.stat_min = 1.0
        self.stat_max = 0.0
        self._finalized = False

    # -- rare events ----------------------------------------------------------

    def _anchor_and_resize(self) -> int:
        """Inline ``WindowPair.anchor_and_resize`` on the flat state."""
        codes = self.codes
        cw_count = self.cw_count
        tw_count = self.tw_count
        tw_len = self.tw_len
        tw_start = self.consumed - self.cw_len - tw_len
        if self.anchor_policy is AnchorPolicy.RN:
            anchor = 0
            for index in range(tw_len):
                if cw_count[codes[tw_start + index]] == 0:
                    anchor = index + 1
        else:  # LNN
            anchor = tw_len
            for index in range(tw_len):
                if cw_count[codes[tw_start + index]] > 0:
                    anchor = index
                    break
        anchor_abs = tw_start + anchor
        if not self.adaptive:
            return anchor_abs
        # Drop TW[:anchor] ...
        for index in range(anchor):
            tw_count[codes[tw_start + index]] -= 1
        self.tw_len = tw_len - anchor
        if self.resize_policy is ResizePolicy.SLIDE:
            # ... then refill the TW from the CW's left (windows stay
            # contiguous: the TW's right edge chases the CW's left edge).
            moved = max(0, min(anchor, self.cw_len - 1))
            cw_start = self.consumed - self.cw_len
            for index in range(moved):
                code = codes[cw_start + index]
                cw_count[code] -= 1
                tw_count[code] += 1
            self.cw_len -= moved
            self.tw_len += moved
        self.growing = True
        return anchor_abs

    def _recount_cw(self) -> None:
        """Recompute distinct/shared from the CW slice (after resizes)."""
        codes = self.codes
        cw_count = self.cw_count
        tw_count = self.tw_count
        seen = self._seen
        distinct = 0
        shared = 0
        start = self.consumed - self.cw_len
        for pos in range(start, self.consumed):
            code = codes[pos]
            if not seen[code]:
                seen[code] = 1
                distinct += 1
                if tw_count[code] > 0:
                    shared += 1
        for pos in range(start, self.consumed):
            seen[codes[pos]] = 0
        self.distinct_cw = distinct
        self.shared = shared

    def _rebuild_cw_set(self) -> None:
        """Rebuild the sparse distinct-CW-code set from the CW slice."""
        codes = self.codes
        seen = self._seen
        cw_set = self.cw_set
        del cw_set[:]
        append = cw_set.append
        cw_set_pos = self.cw_set_pos
        start = self.consumed - self.cw_len
        for pos in range(start, self.consumed):
            code = codes[pos]
            if not seen[code]:
                seen[code] = 1
                cw_set_pos[code] = len(cw_set)
                append(code)
        for code in cw_set:
            seen[code] = 0
        self.cw_set_valid = True

    def _clear_and_seed(self, group_len: int) -> None:
        """Inline ``clear_and_seed``: flush both windows, reseed the CW
        with the last ``min(group_len, cw_cap)`` stream elements."""
        codes = self.codes
        span = self.cw_len + self.tw_len
        if span * 2 < self.n_codes:
            # Only window members have nonzero counts; clear selectively.
            cw_count = self.cw_count
            tw_count = self.tw_count
            for pos in range(self.consumed - span, self.consumed):
                code = codes[pos]
                cw_count[code] = 0
                tw_count[code] = 0
        else:
            self.cw_count = [0] * self.n_codes
            self.tw_count = [0] * self.n_codes
        cw_count = self.cw_count
        seed_len = min(group_len, self.cw_cap)
        self.cw_len = seed_len
        self.tw_len = 0
        distinct = 0
        if self.weighted:
            cw_set = self.cw_set
            del cw_set[:]
            cw_set_pos = self.cw_set_pos
            for pos in range(self.consumed - seed_len, self.consumed):
                code = codes[pos]
                count = cw_count[code] + 1
                cw_count[code] = count
                if count == 1:
                    distinct += 1
                    cw_set_pos[code] = len(cw_set)
                    cw_set.append(code)
            self.cw_set_valid = True
        else:
            for pos in range(self.consumed - seed_len, self.consumed):
                code = codes[pos]
                count = cw_count[code] + 1
                cw_count[code] = count
                if count == 1:
                    distinct += 1
        self.distinct_cw = distinct
        self.shared = 0
        self.s_num = 0
        self.s_dirty = True
        self.filled = False
        self.growing = False
        self.stat_total = 0.0
        self.stat_count = 0
        self.stat_min = 1.0
        self.stat_max = 0.0

    # -- the hot loop ---------------------------------------------------------

    def advance(self, start: int, stop: int, states: bytearray) -> None:
        """Advance over ``codes[start:stop]`` in ``skipFactor`` groups.

        ``states`` must hold zero bytes for every element in the range;
        in-phase groups are marked with ``\\x01`` (positions are trace
        positions — dense runs always start from a fresh runtime).
        Mirrors ``DetectorRuntime._advance_fused`` decision for decision.
        """
        codes = self.codes
        skip = self.skip
        cw_cap = self.cw_cap
        tw_cap = self.tw_cap
        weighted = self.weighted
        threshold_analyzer = self.threshold_analyzer
        threshold = self.threshold
        delta = self.delta
        enter_threshold = self.enter_threshold
        tracker = self.runtime.tracker

        cw_count = self.cw_count
        tw_count = self.tw_count
        consumed = self.consumed
        cw_len = self.cw_len
        tw_len = self.tw_len
        filled = self.filled
        growing = self.growing
        in_phase = self.in_phase
        distinct_cw = self.distinct_cw
        shared = self.shared
        s_num = self.s_num
        s_dirty = self.s_dirty
        cw_set = self.cw_set
        cw_set_pos = self.cw_set_pos
        cw_set_valid = self.cw_set_valid
        stat_total = self.stat_total
        stat_count = self.stat_count
        stat_min = self.stat_min
        stat_max = self.stat_max

        group_start = start
        while group_start < stop:
            group_end = min(group_start + skip, stop)
            group_len = group_end - group_start

            # The incremental weighted numerator is exact only while both
            # windows sit at their steady-state lengths for the whole group.
            steady = (
                filled and not growing and cw_len == cw_cap and tw_len == tw_cap
            )
            steady_w = weighted and not s_dirty and steady
            if weighted and not steady_w:
                s_dirty = True
            if weighted and steady:
                # Steady loops don't maintain the sparse distinct set
                # (the numerator is incremental there); mark it stale.
                cw_set_valid = False

            # ---- push the group through the windows ----------------------
            if steady_w:
                # Steady state, weighted: three parallel slices (incoming,
                # CW->TW eviction, TW discard) walked in lockstep, with the
                # exact scaled-numerator updates of the reference loop.
                for code, old, dead in zip(
                    codes[group_start:group_end],
                    codes[group_start - cw_cap : group_end - cw_cap],
                    codes[group_start - cw_cap - tw_cap : group_end - cw_cap - tw_cap],
                ):
                    # CW add
                    count = cw_count[code] + 1
                    cw_count[code] = count
                    if count == 1:
                        distinct_cw += 1
                        if tw_count[code] > 0:
                            shared += 1
                    tw_c = tw_count[code]
                    if tw_c:
                        s_num += min(count * tw_cap, tw_c * cw_cap) - min(
                            (count - 1) * tw_cap, tw_c * cw_cap
                        )
                    # CW evict -> TW add
                    old_count = cw_count[old] - 1
                    cw_count[old] = old_count
                    if old_count == 0:
                        distinct_cw -= 1
                        if tw_count[old] > 0:
                            shared -= 1
                    old_tw = tw_count[old]
                    if old_tw:
                        s_num += min(old_count * tw_cap, old_tw * cw_cap) - min(
                            (old_count + 1) * tw_cap, old_tw * cw_cap
                        )
                    tw_count[old] = old_tw + 1
                    if old_tw == 0 and old_count:
                        shared += 1
                    if old_count:
                        s_num += min(old_count * tw_cap, (old_tw + 1) * cw_cap) - min(
                            old_count * tw_cap, old_tw * cw_cap
                        )
                    # TW discard
                    dead_count = tw_count[dead] - 1
                    tw_count[dead] = dead_count
                    if dead_count == 0 and cw_count[dead] > 0:
                        shared -= 1
                    dead_cw = cw_count[dead]
                    if dead_cw:
                        s_num += min(dead_cw * tw_cap, dead_count * cw_cap) - min(
                            dead_cw * tw_cap, (dead_count + 1) * cw_cap
                        )
                consumed = group_end
            elif steady:
                # Steady state, unweighted aggregates only.
                for code, old, dead in zip(
                    codes[group_start:group_end],
                    codes[group_start - cw_cap : group_end - cw_cap],
                    codes[group_start - cw_cap - tw_cap : group_end - cw_cap - tw_cap],
                ):
                    count = cw_count[code] + 1
                    cw_count[code] = count
                    if count == 1:
                        distinct_cw += 1
                        if tw_count[code] > 0:
                            shared += 1
                    old_count = cw_count[old] - 1
                    cw_count[old] = old_count
                    if old_count == 0:
                        distinct_cw -= 1
                        if tw_count[old] > 0:
                            shared -= 1
                    old_tw = tw_count[old]
                    tw_count[old] = old_tw + 1
                    if old_tw == 0 and old_count:
                        shared += 1
                    dead_count = tw_count[dead] - 1
                    tw_count[dead] = dead_count
                    if dead_count == 0 and cw_count[dead] > 0:
                        shared -= 1
                consumed = group_end
            elif weighted:
                # Fill / post-anchor refill / Adaptive growth, weighted:
                # the general per-element loop with explicit length
                # tracking, also maintaining the sparse distinct set the
                # scaled-numerator recompute iterates.
                if not cw_set_valid:
                    self.consumed = consumed
                    self.cw_len = cw_len
                    self._rebuild_cw_set()
                    cw_set_valid = True
                for pos in range(group_start, group_end):
                    code = codes[pos]
                    consumed += 1
                    count = cw_count[code] + 1
                    cw_count[code] = count
                    cw_len += 1
                    if count == 1:
                        distinct_cw += 1
                        if tw_count[code] > 0:
                            shared += 1
                        cw_set_pos[code] = len(cw_set)
                        cw_set.append(code)
                    if cw_len > cw_cap:
                        old = codes[consumed - cw_len]
                        old_count = cw_count[old] - 1
                        cw_count[old] = old_count
                        cw_len -= 1
                        if old_count == 0:
                            distinct_cw -= 1
                            if tw_count[old] > 0:
                                shared -= 1
                            last = cw_set.pop()
                            if last != old:
                                slot = cw_set_pos[old]
                                cw_set[slot] = last
                                cw_set_pos[last] = slot
                        old_tw = tw_count[old]
                        tw_count[old] = old_tw + 1
                        tw_len += 1
                        if old_tw == 0 and old_count:
                            shared += 1
                        if not growing and tw_len > tw_cap:
                            dead = codes[consumed - cw_len - tw_len]
                            dead_count = tw_count[dead] - 1
                            tw_count[dead] = dead_count
                            tw_len -= 1
                            if dead_count == 0 and cw_count[dead] > 0:
                                shared -= 1
                if not filled and tw_len >= tw_cap and cw_len >= cw_cap:
                    filled = True
            else:
                # Fill / post-anchor refill / Adaptive growth: the general
                # per-element loop with explicit length tracking.
                for pos in range(group_start, group_end):
                    code = codes[pos]
                    consumed += 1
                    count = cw_count[code] + 1
                    cw_count[code] = count
                    cw_len += 1
                    if count == 1:
                        distinct_cw += 1
                        if tw_count[code] > 0:
                            shared += 1
                    if cw_len > cw_cap:
                        old = codes[consumed - cw_len]
                        old_count = cw_count[old] - 1
                        cw_count[old] = old_count
                        cw_len -= 1
                        if old_count == 0:
                            distinct_cw -= 1
                            if tw_count[old] > 0:
                                shared -= 1
                        old_tw = tw_count[old]
                        tw_count[old] = old_tw + 1
                        tw_len += 1
                        if old_tw == 0 and old_count:
                            shared += 1
                        if not growing and tw_len > tw_cap:
                            dead = codes[consumed - cw_len - tw_len]
                            dead_count = tw_count[dead] - 1
                            tw_count[dead] = dead_count
                            tw_len -= 1
                            if dead_count == 0 and cw_count[dead] > 0:
                                shared -= 1
                if not filled and tw_len >= tw_cap and cw_len >= cw_cap:
                    filled = True

            # ---- similarity + analyzer -----------------------------------
            if not filled:
                new_in_phase = False
                similarity = 0.0
            else:
                if weighted:
                    if s_dirty:
                        if not cw_set_valid:
                            self.consumed = consumed
                            self.cw_len = cw_len
                            self._rebuild_cw_set()
                            cw_set_valid = True
                        s_num = 0
                        for code in cw_set:
                            tw_c = tw_count[code]
                            if tw_c:
                                s_num += min(cw_count[code] * tw_len, tw_c * cw_len)
                        if cw_len == cw_cap and tw_len == tw_cap:
                            s_dirty = False
                    similarity = (
                        s_num / (cw_len * tw_len) if cw_len and tw_len else 0.0
                    )
                else:
                    similarity = shared / distinct_cw if distinct_cw else 0.0
                if threshold_analyzer:
                    new_in_phase = similarity >= threshold
                elif in_phase and stat_count:
                    new_in_phase = similarity >= (stat_total / stat_count) - delta
                else:
                    new_in_phase = similarity >= enter_threshold

            # ---- state transitions (Figure 3) ----------------------------
            if not in_phase and new_in_phase:
                self.consumed = consumed
                self.cw_len = cw_len
                self.tw_len = tw_len
                self.growing = growing
                anchor_abs = self._anchor_and_resize()
                cw_len = self.cw_len
                tw_len = self.tw_len
                growing = self.growing
                self._recount_cw()
                distinct_cw = self.distinct_cw
                shared = self.shared
                s_dirty = True
                if weighted:
                    # The Adaptive resize may have moved CW elements out.
                    cw_set_valid = False
                stat_count = 1
                stat_total = similarity
                stat_min = similarity if similarity < 1.0 else 1.0
                stat_max = similarity if similarity > 0.0 else 0.0
                tracker.enter(consumed, consumed - group_len, anchor_abs)
            elif in_phase and not new_in_phase:
                phase_mean = stat_total / stat_count if stat_count else 0.0
                tracker.exit(consumed, consumed - group_len, phase_mean)
                self.consumed = consumed
                self.cw_len = cw_len
                self.tw_len = tw_len
                self._clear_and_seed(group_len)
                cw_count = self.cw_count
                tw_count = self.tw_count
                cw_len = self.cw_len
                tw_len = self.tw_len
                cw_set_valid = self.cw_set_valid
                filled = False
                growing = False
                distinct_cw = self.distinct_cw
                shared = self.shared
                s_num = 0
                s_dirty = True
                stat_total = 0.0
                stat_count = 0
                stat_min = 1.0
                stat_max = 0.0
            elif in_phase:
                stat_total += similarity
                stat_count += 1
                if similarity < stat_min:
                    stat_min = similarity
                if similarity > stat_max:
                    stat_max = similarity

            if new_in_phase:
                states[group_start:group_end] = b"\x01" * group_len

            in_phase = new_in_phase
            group_start = group_end

        # ---- sync the scalars back ---------------------------------------
        self.consumed = consumed
        self.cw_len = cw_len
        self.tw_len = tw_len
        self.filled = filled
        self.growing = growing
        self.in_phase = in_phase
        self.distinct_cw = distinct_cw
        self.shared = shared
        self.s_num = s_num
        self.s_dirty = s_dirty
        self.cw_set_valid = cw_set_valid
        self.stat_total = stat_total
        self.stat_count = stat_count
        self.stat_min = stat_min
        self.stat_max = stat_max

    # -- state sync-back ------------------------------------------------------

    def finalize(self) -> None:
        """Rebuild the runtime's model/analyzer state from the flat state.

        After this, a checkpoint of the runtime is bit-identical to one
        taken after the legacy paths consumed the same stream, and the
        legacy paths can continue from it.  Call exactly once, after the
        last :meth:`advance`.
        """
        if self._finalized:
            raise RuntimeError("DenseAdvancer.finalize() called twice")
        self._finalized = True
        runtime = self.runtime
        model = runtime.model
        consumed = self.consumed
        cw_start = consumed - self.cw_len
        tw_start = cw_start - self.tw_len
        # Replay through the add hooks (TW first, like restore) so the
        # model's own incremental aggregates are rebuilt exactly.
        for element in self.data[tw_start:cw_start].tolist():
            model._tw_add(element)
        for element in self.data[cw_start:consumed].tolist():
            model._cw_add(element)
        model.consumed = consumed
        model.filled = self.filled
        model.growing = self.growing
        stats = runtime.analyzer.stats
        stats.total = self.stat_total
        stats.count = self.stat_count
        stats.minimum = self.stat_min
        stats.maximum = self.stat_max
        runtime.state = PhaseState.PHASE if self.in_phase else PhaseState.TRANSITION


def run_dense(
    runtime,
    trace,
    codes: Optional[List[int]] = None,
    n_codes: Optional[int] = None,
) -> np.ndarray:
    """Run ``runtime`` over ``trace`` with the dense advancer.

    Returns the bool state array; phases land in ``runtime.tracker`` and
    the runtime's model/analyzer state is left exactly as the legacy
    paths would leave it (the caller still runs ``runtime.finish``).

    ``codes``/``n_codes`` let a :class:`~repro.core.bank.DetectorBank`
    pass share one materialized dense-code list across all of its
    members; by default they come from ``trace.dense_codes()``.
    """
    data = trace.array
    total = int(data.size)
    if codes is None or n_codes is None:
        codes, n_codes = trace.dense_code_list()
    advancer = DenseAdvancer(runtime, codes, n_codes, data)
    buffer = bytearray(total)
    advancer.advance(0, total, buffer)
    advancer.finalize()
    return np.frombuffer(bytes(buffer), dtype=np.uint8).astype(bool)


# ---------------------------------------------------------------------------
# The vectorized whole-trace fast path
# ---------------------------------------------------------------------------


def _prev_occurrence(codes: np.ndarray) -> np.ndarray:
    """``prev[i]`` = index of the previous occurrence of ``codes[i]``
    (or -1).  One stable argsort; equal codes stay in index order."""
    order = np.argsort(codes, kind="stable").astype(np.int64)
    prev = np.full(codes.size, -1, dtype=np.int64)
    if codes.size > 1:
        same = codes[order[1:]] == codes[order[:-1]]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def _unweighted_window_counts(
    prev: np.ndarray, cwc: int, twc: int, total: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(distinct, shared)`` per window start via interval stabbing.

    For a window start ``l`` (CW = ``codes[l : l+cwc]``, TW =
    ``codes[l-twc : l]``), an occurrence ``i`` is a *distinct CW member*
    exactly for ``l`` in ``(max(prev[i], i-cwc), i]`` — it lies in the
    CW and no earlier occurrence does.  It is additionally *shared with
    the TW* when its predecessor lies in the TW: ``l <= prev[i]+twc``.
    Both per-``l`` counts accumulate in O(n) with difference arrays.
    Valid ``l`` range: ``0 .. total-cwc`` (``distinct`` is exact over
    the whole range; ``shared`` assumes the Constant twc-deep TW).
    """
    window_starts = total - cwc + 1  # valid l: 0 .. total-cwc
    idx = np.arange(total, dtype=np.int64)
    lo = np.maximum(prev, idx - cwc) + 1
    hi = np.minimum(idx, total - cwc)
    ok = lo <= hi
    add = np.bincount(lo[ok], minlength=window_starts + 1)
    rem = np.bincount(hi[ok] + 1, minlength=window_starts + 1)
    distinct = np.cumsum(add[:window_starts] - rem[:window_starts])
    has_prev = prev >= 0
    lo2 = lo[has_prev]
    hi2 = np.minimum(hi[has_prev], prev[has_prev] + twc)
    ok2 = lo2 <= hi2
    add2 = np.bincount(lo2[ok2], minlength=window_starts + 1)
    rem2 = np.bincount(hi2[ok2] + 1, minlength=window_starts + 1)
    shared = np.cumsum(add2[:window_starts] - rem2[:window_starts])
    return distinct, shared


def _unweighted_sims(
    codes: np.ndarray,
    cwc: int,
    twc: int,
    step_ends: np.ndarray,
    total: int,
    prev: Optional[np.ndarray] = None,
    counts: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """Per-step unweighted similarity values via interval stabbing.

    Entries for geometrically unfilled steps are left at 0.0 (callers
    never consult them — the episode walk gates on the filled mask).
    ``prev``/``counts`` let callers share the previous-occurrence links
    and the per-window-start count arrays across uses.
    """
    n_steps = step_ends.size
    sims = np.zeros(n_steps, dtype=np.float64)
    if total < cwc + twc:
        return sims
    if counts is None:
        if prev is None:
            prev = _prev_occurrence(codes)
        counts = _unweighted_window_counts(prev, cwc, twc, total)
    distinct, shared = counts
    starts = step_ends - cwc
    valid = starts >= twc
    lv = starts[valid]
    # int64/int64 true division == Python int/int (both correctly rounded)
    sims[valid] = shared[lv] / distinct[lv]
    return sims


def _fixed_interval_sims(
    codes: np.ndarray, n_codes: int, size: int, step_ends: np.ndarray, total: int
) -> np.ndarray:
    """Per-step weighted similarity for the Fixed-Interval geometry
    (skip = CW = TW = ``size``): at every full-group step the windows
    are whole consecutive blocks, so per-block multiset minima come
    from one sorted ``(block, code)`` count pass.  Only the trace's
    final group can be partial; its windows are computed directly.
    """
    n_steps = step_ends.size
    sims = np.zeros(n_steps, dtype=np.float64)
    if total < 2 * size:
        return sims
    n_full = total // size
    blocks = np.arange(n_full * size, dtype=np.int64) // size
    keys = blocks * n_codes + codes[: n_full * size]
    ukeys, ucounts = np.unique(keys, return_counts=True)
    target = ukeys - n_codes  # the same code in the previous block
    pos = np.searchsorted(ukeys, target)
    pos_c = np.minimum(pos, ukeys.size - 1)
    matched = ukeys[pos_c] == target
    minima = np.where(matched, np.minimum(ucounts, ucounts[pos_c]), 0)
    per_block = np.zeros(n_full, dtype=np.int64)
    np.add.at(per_block, ukeys // n_codes, minima)
    denominator = size * size
    full = (step_ends % size == 0) & (step_ends >= 2 * size)
    pair = step_ends[full] // size - 1
    sims[full] = (per_block[pair] * size) / denominator
    if int(step_ends[-1]) % size != 0:
        cw_counts = np.bincount(codes[total - size : total], minlength=n_codes)
        tw_counts = np.bincount(
            codes[total - 2 * size : total - size], minlength=n_codes
        )
        s_num = int(np.minimum(cw_counts, tw_counts).sum()) * size
        sims[-1] = s_num / denominator
    return sims


#: Cell budget for the per-block occurrence matrices of the weighted
#: blockwise kernels ((span+1) x distinct int64 cells, ~16 MiB).
_OCC_CELL_LIMIT = 1 << 21

#: Step granularity of the blockwise scans (both the weighted numerator
#: blocks and the adaptive in-phase exit scan).
_BLOCK_STEPS = 256


def _occurrence_matrix(
    codes: np.ndarray, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(occ, uniq)`` for the span ``codes[lo:hi]``.

    ``occ[p - lo, j]`` counts occurrences of ``uniq[j]`` in
    ``codes[lo:p]`` — cumulative per-code occurrence counts, so any
    window count over the span is one row difference.
    """
    seg = codes[lo:hi]
    uniq, local = np.unique(seg, return_inverse=True)
    occ = np.zeros((seg.size + 1, uniq.size), dtype=np.int64)
    occ[np.arange(seg.size) + 1, local] = 1
    np.cumsum(occ, axis=0, out=occ)
    return occ, uniq


def _weighted_constant_snums(
    codes: np.ndarray, n_codes: int, cwc: int, twc: int, ends: np.ndarray
) -> np.ndarray:
    """Weighted similarity numerators at Constant-TW filled steps.

    For each step end ``c`` in ``ends`` (every entry must satisfy
    ``c >= cwc + twc``) the numerator is ``sum_e min(cw_e*twc,
    tw_e*cwc)`` over the step's CW/TW slices — a pure *integer* sum, so
    any evaluation order reproduces the fused loop's value exactly.
    Default path: per-block occurrence matrices and one ``np.minimum``
    reduction over the block's sparse code set.  With ``REPRO_NUMBA``
    set and numba importable, one compiled incremental sweep replaces
    the blocks (soft-failing back to NumPy otherwise — see
    :mod:`repro.core._weighted_numba`).
    """
    from repro.core._weighted_numba import load_kernel

    out = np.empty(ends.size, dtype=np.int64)
    if ends.size == 0:
        return out
    compiled = load_kernel()
    if compiled is not None:
        compiled(codes, n_codes, cwc, twc, ends, out)
        return out
    n = int(ends.size)
    b0 = 0
    while b0 < n:
        take = min(_BLOCK_STEPS, n - b0)
        while True:
            b1 = b0 + take
            lo = int(ends[b0]) - cwc - twc
            hi = int(ends[b1 - 1])
            occ, _ = _occurrence_matrix(codes, lo, hi)
            if take == 1 or occ.size <= _OCC_CELL_LIMIT:
                break
            take = max(1, take // 2)
        c_rel = ends[b0:b1] - lo
        mid = occ[c_rel - cwc]
        cw = occ[c_rel] - mid
        tw = mid - occ[c_rel - cwc - twc]
        out[b0:b1] = np.minimum(cw * twc, tw * cwc).sum(axis=1)
        b0 = b1
    return out


def _weighted_general_sims(
    codes: np.ndarray,
    n_codes: int,
    cwc: int,
    twc: int,
    step_ends: np.ndarray,
    total: int,
) -> np.ndarray:
    """Per-step weighted similarity for any Constant-TW geometry.

    Same contract as :func:`_unweighted_sims`: values at geometrically
    filled steps (``c >= cwc + twc``), zeros elsewhere.
    """
    n_steps = step_ends.size
    sims = np.zeros(n_steps, dtype=np.float64)
    if total < cwc + twc:
        return sims
    valid = step_ends >= cwc + twc
    ends = step_ends[valid]
    snums = _weighted_constant_snums(codes, n_codes, cwc, twc, ends)
    # one exact int64/int division, bit-identical to the fused loop's
    sims[valid] = snums / (cwc * twc)
    return sims


class SharedTraceKernels:
    """Per-trace cache of the arrays the vectorized walks consume.

    One instance per ``(trace, bank pass)``: dense codes, previous-
    occurrence links, per-skip step boundaries and — keyed by
    ``(weighted, cw, tw, skip)`` — the full constant-geometry similarity
    series plus its per-window-start count arrays.  The batched bank
    advancer (:func:`run_bank_batched`) funnels every lane through one
    instance, so lanes that share a window signature share the expensive
    series computation and differ only in their cheap episode walks.
    """

    def __init__(self, trace) -> None:
        self.trace = trace
        self.data = trace.array
        self.total = int(self.data.size)
        self._codes: Optional[Tuple[np.ndarray, int]] = None
        self._step_ends: dict = {}
        self._series: dict = {}

    def codes(self) -> Tuple[np.ndarray, int]:
        """``(codes, n_codes)`` from the trace's cached dense remap."""
        if self._codes is None:
            codes, values = self.trace.dense_codes()
            self._codes = (codes, int(values.size))
        return self._codes

    def prev(self) -> np.ndarray:
        """Previous-occurrence links (cached on the trace itself)."""
        return self.trace.prev_links()

    def step_ends(self, skip: int) -> np.ndarray:
        """Element offsets at which each skip-group step ends."""
        cached = self._step_ends.get(skip)
        if cached is None:
            n_steps = (self.total + skip - 1) // skip
            cached = np.minimum(
                np.arange(1, n_steps + 1, dtype=np.int64) * skip, self.total
            )
            self._step_ends[skip] = cached
        return cached

    def series(
        self, weighted: bool, cwc: int, twc: int, skip: int
    ) -> Tuple[np.ndarray, Optional[Tuple[np.ndarray, np.ndarray]]]:
        """``(sims, counts)`` for a constant-geometry window signature.

        ``sims`` is the per-step similarity series at geometrically
        filled steps (zeros elsewhere); ``counts`` is the unweighted
        paths' ``(distinct, shared)`` per-window-start pair (``None``
        for weighted signatures or traces too short to fill).  Cached —
        every lane with the same signature, including adaptive lanes
        (whose transition regimes are constant-geometry), reuses it.
        """
        key = (weighted, cwc, twc, skip)
        cached = self._series.get(key)
        if cached is None:
            codes, n_codes = self.codes()
            ends = self.step_ends(skip)
            if weighted:
                if skip == cwc and twc == cwc:
                    sims = _fixed_interval_sims(codes, n_codes, cwc, ends, self.total)
                else:
                    sims = _weighted_general_sims(
                        codes, n_codes, cwc, twc, ends, self.total
                    )
                counts = None
            else:
                counts = (
                    _unweighted_window_counts(self.prev(), cwc, twc, self.total)
                    if self.total >= cwc + twc
                    else None
                )
                sims = _unweighted_sims(
                    codes, cwc, twc, ends, self.total, counts=counts
                )
            cached = (sims, counts)
            self._series[key] = cached
        return cached


def run_vectorized(
    runtime, trace, shared: Optional[SharedTraceKernels] = None
) -> np.ndarray:
    """Run ``runtime`` over ``trace`` with the vectorized fast path.

    Computes similarity series up front, then replays the detector's
    decision sequence in episodes: find the next phase entry among
    filled steps, find its exit, restart the filled-mask origin at the
    flush point.  Constant-TW configs walk one precomputed series
    (:func:`_walk_constant`); Adaptive-TW configs additionally scan each
    phase's resized-window regime blockwise (:func:`_walk_adaptive`).
    Phases (with anchor-corrected starts and exact mean similarities)
    land in ``runtime.tracker`` and the final model/analyzer state is
    reconstructed bit-identically; the caller still runs
    ``runtime.finish``.  Returns the bool state array.

    ``shared`` optionally supplies a :class:`SharedTraceKernels` cache
    so bank lanes reuse per-trace/per-signature arrays.
    """
    if not vectorized_eligible(runtime):
        raise ValueError("runtime is not eligible for the vectorized kernel")
    if shared is None:
        shared = SharedTraceKernels(trace)
    if runtime.config.trailing is TrailingPolicy.ADAPTIVE:
        return _walk_adaptive(runtime, shared)
    return _walk_constant(runtime, shared)


def _walk_constant(runtime, shared: SharedTraceKernels) -> np.ndarray:
    """Episode walk for Constant-TW configs (all geometries/models)."""
    from repro.core.runtime import DetectedPhase

    config = runtime.config
    skip = config.skip_factor
    cwc = config.cw_size
    twc = config.effective_tw_size
    fill_span = cwc + twc
    threshold = runtime.analyzer.threshold
    data = shared.data
    total = shared.total
    states = np.zeros(total, dtype=bool)
    if total == 0:
        return states
    codes, _ = shared.codes()
    step_ends = shared.step_ends(skip)
    sims, _ = shared.series(
        type(runtime.model) is WeightedSetModel, cwc, twc, skip
    )
    decisions = sims >= threshold
    phase_steps = np.flatnonzero(decisions)
    gap_steps = np.flatnonzero(~decisions)

    tracker = runtime.tracker
    rn_anchor = config.anchor is AnchorPolicy.RN
    origin = 0
    cursor = 0
    open_entry = -1
    while True:
        first_filled = int(np.searchsorted(step_ends, origin + fill_span))
        if first_filled < cursor:
            first_filled = cursor
        hit = int(np.searchsorted(phase_steps, first_filled))
        if hit >= phase_steps.size:
            break
        entry = int(phase_steps[hit])
        c_entry = int(step_ends[entry])
        entry_len = c_entry - (int(step_ends[entry - 1]) if entry else 0)
        detected_start = c_entry - entry_len
        # Anchor over the entry step's windows (Constant trailing: the
        # windows themselves are untouched).
        cw_slice = codes[c_entry - cwc : c_entry]
        tw_slice = codes[c_entry - fill_span : c_entry - cwc]
        in_cw = np.isin(tw_slice, cw_slice)
        if rn_anchor:
            noisy = np.flatnonzero(~in_cw)
            anchor = int(noisy[-1]) + 1 if noisy.size else 0
        else:
            hits = np.flatnonzero(in_cw)
            anchor = int(hits[0]) if hits.size else twc
        anchor_abs = (c_entry - fill_span) + anchor
        corrected = anchor_abs if anchor_abs < detected_start else detected_start
        drop = int(np.searchsorted(gap_steps, entry + 1))
        if drop >= gap_steps.size:
            open_entry = entry
            tracker.open_detected = detected_start
            tracker.open_corrected = corrected
            states[detected_start:total] = True
            break
        exit_step = int(gap_steps[drop])
        c_exit = int(step_ends[exit_step])
        exit_len = c_exit - int(step_ends[exit_step - 1])
        end = c_exit - exit_len
        phase_sims = sims[entry:exit_step]
        # cumsum is a sequential left-to-right accumulation — the same
        # addition order as the incremental paths' running total.
        phase_total = float(np.cumsum(phase_sims)[-1])
        mean = phase_total / int(phase_sims.size)
        tracker.phases.append(DetectedPhase(detected_start, corrected, end, mean))
        states[detected_start:end] = True
        origin = c_exit - min(exit_len, cwc)
        cursor = exit_step + 1

    # ---- reconstruct the final incremental state -------------------------
    model = runtime.model
    since_origin = total - origin
    cw_len = since_origin if since_origin < cwc else cwc
    tw_len = since_origin - cwc
    if tw_len < 0:
        tw_len = 0
    elif tw_len > twc:
        tw_len = twc
    cw_start = total - cw_len
    tw_start = cw_start - tw_len
    for element in data[tw_start:cw_start].tolist():
        model._tw_add(element)
    for element in data[cw_start:total].tolist():
        model._cw_add(element)
    model.consumed = total
    model.filled = since_origin >= fill_span
    model.growing = False
    if open_entry >= 0:
        phase_sims = sims[open_entry:]
        stats = runtime.analyzer.stats
        stats.count = int(phase_sims.size)
        stats.total = float(np.cumsum(phase_sims)[-1])
        low = float(np.min(phase_sims))
        high = float(np.max(phase_sims))
        stats.minimum = low if low < 1.0 else 1.0
        stats.maximum = high if high > 0.0 else 0.0
        runtime.state = PhaseState.PHASE
    else:
        runtime.state = PhaseState.TRANSITION
    return states


def _walk_adaptive(runtime, shared: SharedTraceKernels) -> np.ndarray:
    """Episode walk for Adaptive-TW configs.

    Outside phases the Adaptive detector is indistinguishable from the
    Constant one (the TW only grows while in phase), so transition
    regimes reuse the cached constant-geometry series for entry search
    and entry similarity.  Each phase entry then fixes the episode's
    resized-window geometry exactly: with anchor offset ``anchor``
    (computed over the pre-resize windows, as the reference path does),
    the TW's left edge pins at ``A = anchor_abs`` for the whole phase
    and the CW's left edge starts at ``L = c_entry - cwc + moved``
    (``moved = min(anchor, cwc-1)`` for SLIDE, 0 for MOVE).  At any
    later step end ``c`` the windows are pure slice functions of
    ``(A, L, c)``: ``cw_start = max(L, c - cwc)``, CW =
    ``[cw_start, c)``, TW = ``[A, cw_start)``.  The per-episode scans
    (:func:`_scan_phase_unweighted` / :func:`_scan_phase_weighted`)
    vectorize those similarities blockwise with early exit at the first
    below-threshold step, after which the flush restores constant
    geometry and the next episode begins.
    """
    from repro.core.runtime import DetectedPhase

    config = runtime.config
    skip = config.skip_factor
    cwc = config.cw_size
    twc = config.effective_tw_size
    fill_span = cwc + twc
    threshold = runtime.analyzer.threshold
    data = shared.data
    total = shared.total
    states = np.zeros(total, dtype=bool)
    if total == 0:
        return states
    codes, n_codes = shared.codes()
    step_ends = shared.step_ends(skip)
    n_steps = int(step_ends.size)
    weighted = type(runtime.model) is WeightedSetModel
    sims, counts = shared.series(weighted, cwc, twc, skip)
    phase_steps = np.flatnonzero(sims >= threshold)
    prev = None if weighted else shared.prev()
    distinct_all = counts[0] if counts is not None else None
    base_counts = np.zeros(n_codes, dtype=np.int64) if weighted else None

    tracker = runtime.tracker
    rn_anchor = config.anchor is AnchorPolicy.RN
    slide = config.resize is ResizePolicy.SLIDE
    origin = 0
    cursor = 0
    open_phase = None
    while True:
        first_filled = int(np.searchsorted(step_ends, origin + fill_span))
        if first_filled < cursor:
            first_filled = cursor
        hit = int(np.searchsorted(phase_steps, first_filled))
        if hit >= phase_steps.size:
            break
        entry = int(phase_steps[hit])
        c_entry = int(step_ends[entry])
        entry_len = c_entry - (int(step_ends[entry - 1]) if entry else 0)
        detected_start = c_entry - entry_len
        # Anchor over the entry step's pre-resize windows (the reference
        # path anchors before anchor_and_resize mutates them).
        cw_slice = codes[c_entry - cwc : c_entry]
        tw_slice = codes[c_entry - fill_span : c_entry - cwc]
        in_cw = np.isin(tw_slice, cw_slice)
        if rn_anchor:
            noisy = np.flatnonzero(~in_cw)
            anchor = int(noisy[-1]) + 1 if noisy.size else 0
        else:
            hits = np.flatnonzero(in_cw)
            anchor = int(hits[0]) if hits.size else twc
        anchor_abs = (c_entry - fill_span) + anchor
        corrected = anchor_abs if anchor_abs < detected_start else detected_start
        moved = min(anchor, cwc - 1) if slide else 0
        tw_left = anchor_abs
        cw_left = c_entry - cwc + moved
        entry_sim = float(sims[entry])
        if weighted:
            exit_step, episode_sims = _scan_phase_weighted(
                codes, n_codes, base_counts, step_ends, entry, entry_sim,
                tw_left, cw_left, cwc, threshold, n_steps,
            )
        else:
            exit_step, episode_sims = _scan_phase_unweighted(
                codes, prev, distinct_all, step_ends, entry, entry_sim,
                tw_left, cw_left, cwc, threshold, total, n_steps,
            )
        if exit_step < 0:
            open_phase = (tw_left, cw_left, episode_sims)
            tracker.open_detected = detected_start
            tracker.open_corrected = corrected
            states[detected_start:total] = True
            break
        c_exit = int(step_ends[exit_step])
        exit_len = c_exit - int(step_ends[exit_step - 1])
        end = c_exit - exit_len
        # cumsum is a sequential left-to-right accumulation — the same
        # addition order as the incremental paths' running total.
        phase_total = float(np.cumsum(episode_sims)[-1])
        mean = phase_total / int(episode_sims.size)
        tracker.phases.append(DetectedPhase(detected_start, corrected, end, mean))
        states[detected_start:end] = True
        origin = c_exit - min(exit_len, cwc)
        cursor = exit_step + 1

    # ---- reconstruct the final incremental state -------------------------
    model = runtime.model
    if open_phase is not None:
        tw_left, cw_left, episode_sims = open_phase
        cw_start = max(cw_left, total - cwc)
        for element in data[tw_left:cw_start].tolist():
            model._tw_add(element)
        for element in data[cw_start:total].tolist():
            model._cw_add(element)
        model.consumed = total
        model.filled = True
        model.growing = True
        stats = runtime.analyzer.stats
        stats.count = int(episode_sims.size)
        stats.total = float(np.cumsum(episode_sims)[-1])
        low = float(np.min(episode_sims))
        high = float(np.max(episode_sims))
        stats.minimum = low if low < 1.0 else 1.0
        stats.maximum = high if high > 0.0 else 0.0
        runtime.state = PhaseState.PHASE
    else:
        since_origin = total - origin
        cw_len = since_origin if since_origin < cwc else cwc
        tw_len = since_origin - cwc
        if tw_len < 0:
            tw_len = 0
        elif tw_len > twc:
            tw_len = twc
        cw_start = total - cw_len
        tw_start = cw_start - tw_len
        for element in data[tw_start:cw_start].tolist():
            model._tw_add(element)
        for element in data[cw_start:total].tolist():
            model._cw_add(element)
        model.consumed = total
        model.filled = since_origin >= fill_span
        model.growing = False
        runtime.state = PhaseState.TRANSITION
    return states


def _scan_phase_unweighted(
    codes: np.ndarray,
    prev: np.ndarray,
    distinct_all: np.ndarray,
    step_ends: np.ndarray,
    entry: int,
    entry_sim: float,
    tw_left: int,
    cw_left: int,
    cwc: int,
    threshold: float,
    total: int,
    n_steps: int,
) -> Tuple[int, np.ndarray]:
    """Blockwise in-phase unweighted similarities for one episode.

    Geometry per step end ``c``: CW = ``[max(L, c-cwc), c)``, TW =
    ``[A, max(L, c-cwc))`` with ``A = tw_left``, ``L = cw_left``.  Two
    regimes:

    - *refill* (``c <= L + cwc``): the CW is still refilling from
      ``L``.  An occurrence ``i`` in ``[L, c)`` is a distinct CW member
      iff ``prev[i] < L`` (its element's first CW occurrence), and
      shared with the TW iff additionally ``prev[i] >= A`` — its latest
      earlier occurrence is the TW's membership witness.  Both counts
      are prefix sums over ``prev[L : L+cwc]``, computed once per
      episode.
    - *slide* (``c > L + cwc``): the CW is the plain trailing window at
      start ``l = c - cwc``, so ``distinct(l)`` is the globally shared
      per-window-start array, and ``shared(l)`` is the same interval-
      stabbing count as the constant path but with the unbounded-TW
      membership filter ``prev[i] >= A`` — accumulated per block with
      difference arrays.

    Returns ``(exit_step, episode_sims)`` where ``exit_step`` is the
    first step with similarity below ``threshold`` (or -1 if the phase
    stays open to the trace end) and ``episode_sims`` the in-phase
    similarities from ``entry`` up to (excluding) the exit.
    """
    parts = [np.array([entry_sim])]
    seg_prev = prev[cw_left : min(cw_left + cwc, total)]
    rep = seg_prev < cw_left
    d_cum = np.concatenate(([0], np.cumsum(rep)))
    s_cum = np.concatenate(([0], np.cumsum(rep & (seg_prev >= tw_left))))
    s = entry + 1
    while s < n_steps:
        b1 = min(s + _BLOCK_STEPS, n_steps)
        ends_blk = step_ends[s:b1]
        blk = np.empty(ends_blk.size, dtype=np.float64)
        refill = ends_blk <= cw_left + cwc
        if refill.any():
            r = ends_blk[refill] - cw_left
            # d_cum[r] >= 1 always: the CW's first element (offset
            # cw_left) trivially has prev < cw_left.
            blk[refill] = s_cum[r] / d_cum[r]
        if not refill.all():
            sl = ~refill
            ls = ends_blk[sl] - cwc
            l_min = int(ls[0])
            l_max = int(ls[-1])
            idx = np.arange(l_min, l_max + cwc, dtype=np.int64)
            p = prev[l_min : l_max + cwc]
            lo = np.maximum(p, idx - cwc) + 1
            np.maximum(lo, l_min, out=lo)
            hi = np.minimum(idx, l_max)
            ok = (p >= tw_left) & (lo <= hi)
            width = l_max - l_min + 1
            add = np.bincount(lo[ok] - l_min, minlength=width + 1)
            rem = np.bincount(hi[ok] + 1 - l_min, minlength=width + 1)
            shared_l = np.cumsum(add[:width] - rem[:width])
            blk[sl] = shared_l[ls - l_min] / distinct_all[ls]
        bad = np.flatnonzero(blk < threshold)
        if bad.size:
            cut = int(bad[0])
            if cut:
                parts.append(blk[:cut])
            return s + cut, np.concatenate(parts)
        parts.append(blk)
        s = b1
    return -1, np.concatenate(parts)


def _scan_phase_weighted(
    codes: np.ndarray,
    n_codes: int,
    base_counts: np.ndarray,
    step_ends: np.ndarray,
    entry: int,
    entry_sim: float,
    tw_left: int,
    cw_left: int,
    cwc: int,
    threshold: float,
    n_steps: int,
) -> Tuple[int, np.ndarray]:
    """Blockwise in-phase weighted similarities for one episode.

    Same geometry as :func:`_scan_phase_unweighted`.  The growing TW's
    per-code counts split as ``tw_e = base_counts[e] + occ[cw_start]``:
    ``base_counts`` (a reusable per-code vector, advanced as the CW's
    left edge passes elements into the TW for good) covers
    ``[A, block_lo)`` and the block's cumulative occurrence matrix
    covers the rest, so each block is one ``np.minimum`` reduction over
    its local code set — a code absent from the block has ``cw_e = 0``
    and contributes nothing, which keeps the restriction exact.  The
    numerator ``sum_e min(cw_e * tw_len, tw_e * cw_len)`` is a pure
    integer sum, so any evaluation order is bit-exact; the single
    float division matches the fused loop's.  ``base_counts`` must
    arrive all-zero and is re-zeroed (sparsely) before returning.
    """
    parts = [np.array([entry_sim])]
    covered = tw_left
    exit_step = -1
    s = entry + 1
    while s < n_steps:
        take = min(_BLOCK_STEPS, n_steps - s)
        while True:
            b1 = s + take
            ends_blk = step_ends[s:b1]
            cw_start = np.maximum(cw_left, ends_blk - cwc)
            p_lo = int(cw_start[0])
            p_cov = int(ends_blk[-1])
            occ, uniq = _occurrence_matrix(codes, p_lo, p_cov)
            if take == 1 or occ.size <= _OCC_CELL_LIMIT:
                break
            take = max(1, take // 2)
        if covered < p_lo:
            base_counts += np.bincount(
                codes[covered:p_lo], minlength=n_codes
            )
            covered = p_lo
        cw_len = ends_blk - cw_start
        tw_len = cw_start - tw_left
        start_rows = occ[cw_start - p_lo]
        cw_e = occ[ends_blk - p_lo] - start_rows
        tw_e = base_counts[uniq][None, :] + start_rows
        snum = np.minimum(
            cw_e * tw_len[:, None], tw_e * cw_len[:, None]
        ).sum(axis=1)
        denom = cw_len * tw_len
        blk = np.divide(
            snum, denom, out=np.zeros(snum.size, dtype=np.float64),
            where=denom > 0,
        )
        bad = np.flatnonzero(blk < threshold)
        if bad.size:
            cut = int(bad[0])
            if cut:
                parts.append(blk[:cut])
            exit_step = s + cut
            break
        parts.append(blk)
        s = b1
    if covered > tw_left:
        base_counts[np.unique(codes[tw_left:covered])] = 0
    return exit_step, np.concatenate(parts)


def run_bank_batched(
    runtimes, trace, histogram=None
) -> List[np.ndarray]:
    """Advance all vectorized-eligible bank ``runtimes`` over ``trace``.

    One :class:`SharedTraceKernels` instance funnels every lane's series
    computation: the dense-code decode, previous-occurrence links, step
    boundaries and each distinct ``(weighted, cw, tw, skip)`` similarity
    series are computed once and shared, so N lanes cost one series pass
    per window signature plus N cheap episode walks — instead of N full
    passes.  Lane order, per-lane results and checkpoints are exactly
    those of per-lane :func:`run_vectorized` calls (the sharing is a
    pure cache).  ``histogram`` optionally receives one per-lane
    duration observation, matching the bank's per-member timing.
    """
    shared = SharedTraceKernels(trace)
    states: List[np.ndarray] = []
    for runtime in runtimes:
        started = time.perf_counter() if histogram is not None else 0.0
        result = run_vectorized(runtime, trace, shared=shared)
        if histogram is not None:
            histogram.observe(time.perf_counter() - started)
        states.append(result)
    return states
