"""Optimized detector entry point.

:func:`run_detector` runs one configuration over a whole trace on the
unified :class:`~repro.core.runtime.DetectorRuntime`, letting it use the
optimized fused path (the inlined window/count loop described in
:mod:`repro.core.runtime`).  Output is identical to the reference
:class:`~repro.core.detector.PhaseDetector` — verified by the
equivalence tests in ``tests/core/`` — at several times the speed; this
is what the experiment sweeps call.  For many configurations over one
trace, prefer :class:`~repro.core.bank.DetectorBank`, which decodes and
chunks the trace once.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DetectorConfig
from repro.core.decision import DetectionResult, build_engine
from repro.profiles.trace import BranchTrace

__all__ = ["run_detector"]


def run_detector(
    trace: BranchTrace,
    config: DetectorConfig,
    observer=None,
    kernels: Optional[bool] = None,
) -> DetectionResult:
    """Run ``config`` over ``trace`` with the optimized runtime path.

    The engine is whatever ``config.family`` names (the windowed
    :class:`~repro.core.runtime.DetectorRuntime` by default — see
    :func:`repro.core.decision.build_engine`).

    ``observer`` is an optional observability sink (see
    :mod:`repro.obs`); it receives the identical event stream the
    reference :class:`~repro.core.detector.PhaseDetector` emits.  The
    default ``None`` keeps the hot loop free of event construction —
    the only added cost is one ``is not None`` test per step.

    ``kernels`` controls the array-native kernels of
    :mod:`repro.core.kernels` (``None`` consults ``REPRO_KERNELS``;
    they apply only to unobserved windowed runs and produce
    bit-identical results; other families ignore the flag).  Windowed
    Threshold-analyzer configs — Constant *and* Adaptive trailing,
    unweighted *and* weighted, any geometry — take the vectorized
    whole-trace path; Average-analyzer configs take the incremental
    dense path (see ``docs/performance.md`` for the eligibility
    matrix).
    """
    return build_engine(config, observer=observer).run(trace, kernels=kernels)
