"""Optimized detector engine.

Runs one detector configuration over a whole trace in a single
monolithic loop with inlined window/count bookkeeping.  Produces output
identical to :class:`repro.core.detector.PhaseDetector` (verified by
equivalence tests in ``tests/core/test_engine_equivalence.py``) at
several times the speed — this is what the experiment sweeps call.

Key techniques:

- similarity aggregates are maintained incrementally: the unweighted
  model's distinct/shared counters always; the weighted model's scaled
  numerator ``S = sum_e min(cw_e * |TW|, tw_e * |CW|)`` whenever both
  window lengths are at their steady-state capacities (count deltas are
  then exact with fixed lengths).  When lengths move — initial fill,
  post-anchor refill, Adaptive TW growth — the numerator is recomputed
  over the CW's distinct elements, which in-phase is small because the
  content is repetitive;
- states are accumulated in a bytearray and bulk-converted;
- everything hot is a local variable.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.core.config import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.detector import DetectedPhase, DetectionResult
from repro.profiles.trace import BranchTrace


def run_detector(
    trace: BranchTrace, config: DetectorConfig, observer=None
) -> DetectionResult:
    """Run ``config`` over ``trace`` with the optimized engine.

    ``observer`` is an optional observability sink (see
    :mod:`repro.obs`); it receives the identical event stream the
    reference :class:`~repro.core.detector.PhaseDetector` emits.  The
    default ``None`` keeps the hot loop free of event construction —
    the only added cost is one ``is not None`` test per step.
    """
    total = int(trace.array.size)
    elements: List[int] = trace.array.tolist()
    emit = observer.emit if observer is not None else None
    if emit is not None:
        emit(
            {
                "ev": "run_begin",
                "step": 0,
                "trace": trace.name,
                "elements": total,
                "config": config.describe(),
            }
        )

    cw_cap = config.cw_size
    tw_cap = config.effective_tw_size
    skip = config.skip_factor
    adaptive = config.trailing is TrailingPolicy.ADAPTIVE
    weighted = config.model is ModelKind.WEIGHTED
    anchor_rn = config.anchor is AnchorPolicy.RN
    resize_slide = config.resize is ResizePolicy.SLIDE
    threshold_analyzer = config.analyzer is AnalyzerKind.THRESHOLD
    threshold = config.threshold
    delta = config.delta
    enter_threshold = config.enter_threshold

    cw: deque = deque()
    tw: deque = deque()
    cw_counts: dict = {}
    tw_counts: dict = {}

    # Unweighted aggregates (always maintained; they are cheap).
    distinct_cw = 0
    shared = 0
    # Weighted aggregate; valid only when s_dirty is False.
    s_num = 0
    s_dirty = True

    filled = False
    growing = False
    in_phase = False
    stat_total = 0.0  # analyzer running stats for the current phase
    stat_count = 0

    states = bytearray(total)
    phases: List[DetectedPhase] = []
    open_detected = -1
    open_corrected = -1
    consumed = 0

    cw_append = cw.append
    cw_popleft = cw.popleft
    tw_append = tw.append
    tw_popleft = tw.popleft
    cw_counts_get = cw_counts.get
    tw_counts_get = tw_counts.get

    position = 0
    while position < total:
        group = elements[position : position + skip]
        group_len = len(group)

        # The incremental weighted numerator is exact only while both
        # windows sit at their steady-state lengths for the whole group.
        steady_w = (
            weighted
            and not s_dirty
            and filled
            and not growing
            and len(cw) == cw_cap
            and len(tw) == tw_cap
        )
        if weighted and not steady_w:
            s_dirty = True

        # ---- push the group through the windows ------------------------------
        for element in group:
            consumed += 1
            # CW add
            cw_append(element)
            count = cw_counts_get(element, 0) + 1
            cw_counts[element] = count
            if count == 1:
                distinct_cw += 1
                if element in tw_counts:
                    shared += 1
            if steady_w:
                tw_count = tw_counts_get(element, 0)
                if tw_count:
                    s_num += min(count * tw_cap, tw_count * cw_cap) - min(
                        (count - 1) * tw_cap, tw_count * cw_cap
                    )
            if len(cw) > cw_cap:
                # CW evict -> TW add
                old = cw_popleft()
                old_count = cw_counts[old] - 1
                if old_count:
                    cw_counts[old] = old_count
                else:
                    del cw_counts[old]
                    distinct_cw -= 1
                    if old in tw_counts:
                        shared -= 1
                old_tw = tw_counts_get(old, 0)
                if steady_w and old_tw:
                    s_num += min(old_count * tw_cap, old_tw * cw_cap) - min(
                        (old_count + 1) * tw_cap, old_tw * cw_cap
                    )
                tw_append(old)
                tw_counts[old] = old_tw + 1
                if old_tw == 0 and old_count:
                    shared += 1
                if steady_w and old_count:
                    s_num += min(old_count * tw_cap, (old_tw + 1) * cw_cap) - min(
                        old_count * tw_cap, old_tw * cw_cap
                    )
                if not growing and len(tw) > tw_cap:
                    dead = tw_popleft()
                    dead_count = tw_counts[dead] - 1
                    if dead_count:
                        tw_counts[dead] = dead_count
                    else:
                        del tw_counts[dead]
                        if dead in cw_counts:
                            shared -= 1
                    if steady_w:
                        dead_cw = cw_counts_get(dead, 0)
                        if dead_cw:
                            s_num += min(dead_cw * tw_cap, dead_count * cw_cap) - min(
                                dead_cw * tw_cap, (dead_count + 1) * cw_cap
                            )

        if not filled and len(tw) >= tw_cap and len(cw) >= cw_cap:
            filled = True

        # ---- similarity + analyzer -------------------------------------------
        if not filled:
            new_in_phase = False
            similarity = 0.0
        else:
            if weighted:
                cw_len = len(cw)
                tw_len = len(tw)
                if s_dirty:
                    s_num = 0
                    for element, count in cw_counts.items():
                        tw_count = tw_counts_get(element)
                        if tw_count is not None:
                            s_num += min(count * tw_len, tw_count * cw_len)
                    if cw_len == cw_cap and tw_len == tw_cap:
                        s_dirty = False
                similarity = s_num / (cw_len * tw_len) if cw_len and tw_len else 0.0
            else:
                similarity = shared / distinct_cw if distinct_cw else 0.0
            if threshold_analyzer:
                new_in_phase = similarity >= threshold
            elif in_phase and stat_count:
                new_in_phase = similarity >= (stat_total / stat_count) - delta
            else:
                new_in_phase = similarity >= enter_threshold
            if emit is not None:
                emit(
                    {
                        "ev": "similarity",
                        "step": consumed,
                        "value": similarity,
                        "cw": len(cw),
                        "tw": len(tw),
                    }
                )
                if threshold_analyzer:
                    bar = threshold
                elif in_phase and stat_count:
                    bar = (stat_total / stat_count) - delta
                else:
                    bar = enter_threshold
                emit(
                    {
                        "ev": "decision",
                        "step": consumed,
                        "state": "P" if new_in_phase else "T",
                        "value": similarity,
                        "bar": bar,
                    }
                )

        # ---- state transitions (Figure 3) --------------------------------------
        if not in_phase and new_in_phase:
            # Start phase: anchor (and resize, if adaptive) the TW.
            tw_start_abs = consumed - len(cw) - len(tw)
            if anchor_rn:
                anchor = 0
                index = 0
                for element in tw:
                    if element not in cw_counts:
                        anchor = index + 1
                    index += 1
            else:
                anchor = len(tw)
                index = 0
                for element in tw:
                    if element in cw_counts:
                        anchor = index
                        break
                    index += 1
            anchor_abs = tw_start_abs + anchor
            moved_total = 0
            if adaptive:
                for _ in range(anchor):
                    dead = tw_popleft()
                    dead_count = tw_counts[dead] - 1
                    if dead_count:
                        tw_counts[dead] = dead_count
                    else:
                        del tw_counts[dead]
                        if dead in cw_counts:
                            shared -= 1
                if resize_slide:
                    moved_total = max(0, min(anchor, len(cw) - 1))
                    for _ in range(moved_total):
                        moved = cw_popleft()
                        moved_count = cw_counts[moved] - 1
                        if moved_count:
                            cw_counts[moved] = moved_count
                        else:
                            del cw_counts[moved]
                            distinct_cw -= 1
                            if moved in tw_counts:
                                shared -= 1
                        tw_append(moved)
                        tw_count = tw_counts_get(moved, 0) + 1
                        tw_counts[moved] = tw_count
                        if tw_count == 1 and moved in cw_counts:
                            shared += 1
                growing = True
                s_dirty = True
            stat_total = similarity
            stat_count = 1
            detected_start = consumed - group_len
            open_detected = detected_start
            open_corrected = anchor_abs if anchor_abs < detected_start else detected_start
            if emit is not None:
                if adaptive:
                    emit(
                        {
                            "ev": "tw_resize",
                            "step": consumed,
                            "anchor": anchor,
                            "dropped": anchor,
                            "moved": moved_total,
                            "policy": config.resize.value,
                        }
                    )
                emit(
                    {
                        "ev": "phase_enter",
                        "step": consumed,
                        "detected_start": open_detected,
                        "corrected_start": open_corrected,
                        "anchor": anchor_abs,
                    }
                )
        elif in_phase and not new_in_phase:
            # End phase: record it, then flush windows and reseed the CW.
            phase_mean = stat_total / stat_count if stat_count else 0.0
            phases.append(
                DetectedPhase(
                    open_detected,
                    open_corrected,
                    consumed - group_len,
                    phase_mean,
                )
            )
            if emit is not None:
                emit(
                    {
                        "ev": "phase_exit",
                        "step": consumed,
                        "detected_start": open_detected,
                        "corrected_start": open_corrected,
                        "end": consumed - group_len,
                        "mean_similarity": phase_mean,
                    }
                )
            open_detected = -1
            cw.clear()
            tw.clear()
            cw_counts.clear()
            tw_counts.clear()
            distinct_cw = 0
            shared = 0
            s_num = 0
            s_dirty = True
            filled = False
            growing = False
            for element in group[-cw_cap:]:
                cw_append(element)
                count = cw_counts_get(element, 0) + 1
                cw_counts[element] = count
                if count == 1:
                    distinct_cw += 1
            if emit is not None:
                emit(
                    {
                        "ev": "window_flush",
                        "step": consumed,
                        "seeded": min(group_len, cw_cap),
                    }
                )
            stat_total = 0.0
            stat_count = 0
        elif in_phase:
            stat_total += similarity
            stat_count += 1

        if new_in_phase:
            states[consumed - group_len : consumed] = b"\x01" * group_len

        in_phase = new_in_phase
        position += skip

    if in_phase and open_detected >= 0:
        phase_mean = stat_total / stat_count if stat_count else 0.0
        phases.append(
            DetectedPhase(open_detected, open_corrected, total, phase_mean)
        )
        if emit is not None:
            emit(
                {
                    "ev": "phase_exit",
                    "step": total,
                    "detected_start": open_detected,
                    "corrected_start": open_corrected,
                    "end": total,
                    "mean_similarity": phase_mean,
                }
            )

    if emit is not None:
        emit(
            {
                "ev": "run_end",
                "step": total,
                "phases": len(phases),
                "elements": total,
            }
        )

    state_array = np.frombuffer(bytes(states), dtype=np.uint8).astype(bool)
    return DetectionResult(states=state_array, detected_phases=phases, config=config)
