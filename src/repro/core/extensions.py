"""Additional models and analyzers beyond the paper's grid.

Section 7 opens with "In addition to investigating further other
algorithms for phase detection...".  The paper evaluates two corners of
the model design space — *asymmetric unweighted* and *symmetric
weighted*.  This module fills in the other two corners plus a smoother
analyzer, demonstrating how the framework extends:

- :class:`JaccardSetModel` — **symmetric unweighted**: the Jaccard
  index of the two windows' distinct-element sets.
- :class:`AsymmetricWeightedModel` — **asymmetric weighted**: the
  fraction of the CW's *mass* whose per-element relative weight is
  covered by the TW (biased toward the CW like the paper's unweighted
  model, frequency-sensitive like its weighted one).
- :class:`EwmaAnalyzer` — an exponentially-weighted moving-average
  analyzer: like the Average analyzer but forgetting old values, so a
  slowly drifting phase does not accumulate a stale mean.

All three are drop-in: build a detector with
:func:`build_extended_detector` or plug them into
:class:`~repro.core.detector.PhaseDetector` manually.
"""

from __future__ import annotations

from typing import Optional

from repro.core.analyzers import Analyzer
from repro.core.config import DetectorConfig
from repro.core.detector import PhaseDetector
from repro.core.models import SimilarityModel
from repro.core.state import PhaseState


class JaccardSetModel(SimilarityModel):
    """Symmetric unweighted similarity: |CW ∩ TW| / |CW ∪ TW| (distinct).

    Unlike the paper's asymmetric working-set model, elements unique to
    the *trailing* window also lower the similarity — useful when a
    client cares about behavior disappearing, not only appearing.
    """

    def __init__(self, cw_capacity: int, tw_capacity: int) -> None:
        self._distinct_cw = 0
        self._distinct_tw = 0
        self._shared = 0
        super().__init__(cw_capacity, tw_capacity)

    def _reset_aggregates(self) -> None:
        self._distinct_cw = 0
        self._distinct_tw = 0
        self._shared = 0

    def _on_cw_add(self, element: int, new_count: int) -> None:
        if new_count == 1:
            self._distinct_cw += 1
            if element in self.tw_counts:
                self._shared += 1

    def _on_cw_remove(self, element: int, new_count: int) -> None:
        if new_count == 0:
            self._distinct_cw -= 1
            if element in self.tw_counts:
                self._shared -= 1

    def _on_tw_add(self, element: int, new_count: int) -> None:
        if new_count == 1:
            self._distinct_tw += 1
            if element in self.cw_counts:
                self._shared += 1

    def _on_tw_remove(self, element: int, new_count: int) -> None:
        if new_count == 0:
            self._distinct_tw -= 1
            if element in self.cw_counts:
                self._shared -= 1

    def similarity(self) -> float:
        union = self._distinct_cw + self._distinct_tw - self._shared
        if union == 0:
            return 0.0
        return self._shared / union


class AsymmetricWeightedModel(SimilarityModel):
    """Asymmetric weighted similarity.

    ``sum_e min(w_cw(e), w_tw(e)) / sum_e w_cw(e)`` over the CW's
    elements — i.e. the fraction of the CW's weight distribution the TW
    covers.  Because ``sum_e w_cw(e) = 1`` this reduces to the paper's
    symmetric sum, but the *bias* differs: mass the TW has beyond the
    CW's (the ``d`` element of the paper's example) never matters, and
    neither does TW-relative dilution of shared mass below the CW's —
    we renormalize the TW to its restriction to the CW's support.
    """

    def similarity(self) -> float:
        cw_length = len(self._cw)
        tw_length = len(self._tw)
        if cw_length == 0 or tw_length == 0:
            return 0.0
        tw_counts = self.tw_counts
        # TW mass restricted to the CW's support.
        restricted = sum(
            tw_counts[element] for element in self.cw_counts if element in tw_counts
        )
        if restricted == 0:
            return 0.0
        total = 0.0
        for element, cw_count in self.cw_counts.items():
            tw_count = tw_counts.get(element)
            if tw_count is not None:
                total += min(cw_count * restricted, tw_count * cw_length)
        return total / (cw_length * restricted)


class EwmaAnalyzer(Analyzer):
    """P iff similarity >= (EWMA of recent in-phase values − delta).

    ``alpha`` controls the memory: 1.0 degenerates to "compare against
    the previous value", small alpha approaches the running average.
    Entry uses a fixed threshold like the Average analyzer.
    """

    def __init__(
        self, delta: float, alpha: float = 0.2, enter_threshold: float = 0.5
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= delta <= 1.0:
            raise ValueError(f"delta must be in [0, 1], got {delta}")
        if not 0.0 <= enter_threshold <= 1.0:
            raise ValueError(f"enter_threshold must be in [0, 1], got {enter_threshold}")
        super().__init__()
        self.delta = delta
        self.alpha = alpha
        self.enter_threshold = enter_threshold
        self._ewma: Optional[float] = None

    def effective_bar(self, current_state: PhaseState) -> float:
        if current_state.is_phase() and self._ewma is not None:
            return self._ewma - self.delta
        return self.enter_threshold

    def reset_stats(self, seed: float) -> None:
        super().reset_stats(seed)
        self._ewma = seed

    def update_stats(self, similarity: float) -> None:
        super().update_stats(similarity)
        assert self._ewma is not None
        self._ewma = (1 - self.alpha) * self._ewma + self.alpha * similarity

    def clear(self) -> None:
        super().clear()
        self._ewma = None


class HysteresisAnalyzer(Analyzer):
    """Dual-threshold analyzer: enter high, leave low.

    A classic debouncing design real VMs use: a phase starts only when
    similarity reaches ``enter_threshold`` but survives until it falls
    below the lower ``exit_threshold`` — short similarity dips inside a
    phase (warm-up jitter, an unrolled cold path) don't end it, while
    entry stays conservative.
    """

    def __init__(self, enter_threshold: float = 0.7, exit_threshold: float = 0.5) -> None:
        if not 0.0 <= exit_threshold <= enter_threshold <= 1.0:
            raise ValueError(
                "need 0 <= exit_threshold <= enter_threshold <= 1, got "
                f"exit={exit_threshold}, enter={enter_threshold}"
            )
        super().__init__()
        self.enter_threshold = enter_threshold
        self.exit_threshold = exit_threshold

    def effective_bar(self, current_state: PhaseState) -> float:
        if current_state.is_phase():
            return self.exit_threshold
        return self.enter_threshold


def build_extended_detector(
    config: DetectorConfig,
    model: Optional[SimilarityModel] = None,
    analyzer: Optional[Analyzer] = None,
) -> PhaseDetector:
    """A PhaseDetector with extension components swapped in.

    ``config`` still controls the window policy (and any component not
    overridden).
    """
    detector = PhaseDetector(config)
    if model is not None:
        detector.model = model
    if analyzer is not None:
        detector.analyzer = analyzer
    return detector
