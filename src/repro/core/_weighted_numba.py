"""Optional numba backend for the weighted symmetric min-sum kernel.

The blockwise NumPy path in :mod:`repro.core.kernels` computes the
weighted similarity numerators with per-block occurrence matrices; on
hosts that have `numba <https://numba.pydata.org>`_ installed the same
numerators can come from one compiled incremental sweep instead —
flat per-code count buffers advanced element by element, exactly the
integer min-delta updates of the fused loop, with none of the per-block
matrix allocation.

The backend is strictly opt-in and soft-failing:

- it is consulted only when the ``REPRO_NUMBA`` environment variable
  (or the ``--numba`` CLI flag, which sets it) is truthy;
- when numba is missing or fails to import/compile, :func:`load_kernel`
  returns ``None`` and the caller silently keeps the NumPy path —
  nothing is ever required to install numba (the test suite and CI run
  without it and exercise exactly this degradation).

Bit-identity is preserved by construction: the kernel produces the same
int64 numerators (integer arithmetic only — order-independent), and the
single float division stays in the caller, shared with the NumPy path.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = ["numba_requested", "load_kernel"]

_CACHE: dict = {"tried": False, "kernel": None}


def numba_requested() -> bool:
    """True when ``REPRO_NUMBA`` asks for the compiled backend
    (``1``/``true``/``on``/``yes``)."""
    return os.environ.get("REPRO_NUMBA", "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


def load_kernel() -> Optional[object]:
    """The compiled weighted-numerator kernel, or ``None``.

    ``None`` whenever ``REPRO_NUMBA`` is unset/falsy *or* numba is
    unavailable — the soft-fail contract.  The import/compile attempt
    runs at most once per process.
    """
    if not numba_requested():
        return None
    if _CACHE["tried"]:
        return _CACHE["kernel"]
    _CACHE["tried"] = True
    try:
        import numba
    except Exception:
        return None
    try:
        _CACHE["kernel"] = numba.njit(cache=False, nogil=True)(_snum_constant_py)
    except Exception:
        return None
    return _CACHE["kernel"]


def _reset_for_tests() -> None:
    """Drop the compile cache so tests can re-probe the environment."""
    _CACHE["tried"] = False
    _CACHE["kernel"] = None


def _snum_constant_py(codes, n_codes, cwc, twc, ends, out):
    """Weighted numerators at Constant-TW filled steps, incrementally.

    For each step end ``c`` in ``ends`` (every entry must satisfy
    ``c >= cwc + twc``), the windows are CW = ``codes[c-cwc:c]`` and
    TW = ``codes[c-cwc-twc:c-cwc]`` and the numerator is
    ``sum_e min(cw_e * twc, tw_e * cwc)``.  Three boundaries (TW left,
    CW left, CW right) sweep forward monotonically; every boundary move
    applies the fused loop's exact integer min-delta update, so the
    numerator is maintained — never recomputed — across steps.

    Written as a plain-Python function so it doubles as the compile
    target for :func:`load_kernel` (njit) and as a directly runnable
    reference in the numba-less test environment.
    """
    cw_count = np.zeros(n_codes, dtype=np.int64)
    tw_count = np.zeros(n_codes, dtype=np.int64)
    s_num = 0
    tw_lo = int(ends[0]) - cwc - twc
    cw_lo = tw_lo
    cw_hi = tw_lo
    for step in range(ends.shape[0]):
        c = int(ends[step])
        target_cw_hi = c
        target_cw_lo = c - cwc
        target_tw_lo = c - cwc - twc
        while cw_hi < target_cw_hi:
            code = codes[cw_hi]
            count = cw_count[code] + 1
            cw_count[code] = count
            tw_c = tw_count[code]
            if tw_c:
                s_num += min(count * twc, tw_c * cwc) - min(
                    (count - 1) * twc, tw_c * cwc
                )
            cw_hi += 1
        while cw_lo < target_cw_lo:
            code = codes[cw_lo]
            count = cw_count[code] - 1
            cw_count[code] = count
            tw_c = tw_count[code]
            if tw_c:
                s_num += min(count * twc, tw_c * cwc) - min(
                    (count + 1) * twc, tw_c * cwc
                )
            tw_count[code] = tw_c + 1
            if count:
                s_num += min(count * twc, (tw_c + 1) * cwc) - min(
                    count * twc, tw_c * cwc
                )
            cw_lo += 1
        while tw_lo < target_tw_lo:
            code = codes[tw_lo]
            tw_c = tw_count[code] - 1
            tw_count[code] = tw_c
            cw_c = cw_count[code]
            if cw_c:
                s_num += min(cw_c * twc, tw_c * cwc) - min(
                    cw_c * twc, (tw_c + 1) * cwc
                )
            tw_lo += 1
        out[step] = s_num
