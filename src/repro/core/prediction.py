"""Phase prediction on top of recurring-phase detection.

Section 6 distinguishes this paper's *detection* from the larger body
of *prediction* work (Sherwood et al., Duesterwald et al.): forecasting
which behavior comes next.  With recurring-phase ids
(:mod:`repro.core.recurrence`) in hand, the classic predictors become
one small module:

- :class:`LastPhasePredictor` — predicts the phase id seen last time
  (the "last value" predictor of Duesterwald et al.);
- :class:`MarkovPhasePredictor` — order-k Markov: predicts the most
  frequent successor of the last k phase ids, falling back to shorter
  histories;
- :func:`evaluate_predictor` — online accuracy: each phase is predicted
  *before* being observed, then learned.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class LastPhasePredictor:
    """Predicts that the next phase repeats the previous one."""

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def predict(self) -> Optional[int]:
        """The predicted next phase id (None before any observation)."""
        return self._last

    def observe(self, phase_id: int) -> None:
        """Learn one observed phase id."""
        self._last = phase_id


class MarkovPhasePredictor:
    """Order-k Markov predictor over phase-id sequences.

    Keeps successor counts for every history suffix up to length
    ``order`` and predicts from the longest history with data.
    """

    def __init__(self, order: int = 2) -> None:
        if order < 1:
            raise ValueError(f"order must be at least 1, got {order}")
        self.order = order
        self._history: List[int] = []
        self._successors: Dict[Tuple[int, ...], Counter] = defaultdict(Counter)

    def predict(self) -> Optional[int]:
        """Most frequent successor of the longest matching history."""
        for length in range(min(self.order, len(self._history)), 0, -1):
            key = tuple(self._history[-length:])
            counts = self._successors.get(key)
            if counts:
                return counts.most_common(1)[0][0]
        return None

    def observe(self, phase_id: int) -> None:
        """Learn one observed phase id (updates every history length)."""
        for length in range(1, min(self.order, len(self._history)) + 1):
            key = tuple(self._history[-length:])
            self._successors[key][phase_id] += 1
        self._history.append(phase_id)
        if len(self._history) > self.order:
            del self._history[: -self.order]


@dataclass(frozen=True)
class PredictionOutcome:
    """Online prediction accuracy over one phase-id sequence."""

    predictions: int   # phases for which a prediction was made
    correct: int
    total_phases: int

    @property
    def accuracy(self) -> float:
        """Correct / predicted (0.0 when nothing was predicted)."""
        return self.correct / self.predictions if self.predictions else 0.0

    @property
    def coverage(self) -> float:
        """Predicted / total (warm-up phases are unpredictable)."""
        return self.predictions / self.total_phases if self.total_phases else 0.0


def evaluate_predictor(predictor, phase_ids: Sequence[int]) -> PredictionOutcome:
    """Online evaluation: predict each phase before observing it."""
    predictions = 0
    correct = 0
    for phase_id in phase_ids:
        guess = predictor.predict()
        if guess is not None:
            predictions += 1
            if guess == phase_id:
                correct += 1
        predictor.observe(phase_id)
    return PredictionOutcome(
        predictions=predictions, correct=correct, total_phases=len(phase_ids)
    )
