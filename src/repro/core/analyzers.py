"""Similarity analyzers (Section 2, "Analyzer Policy").

- :class:`ThresholdAnalyzer` — P iff the similarity value meets a fixed
  threshold (the policy used by most prior work).
- :class:`AverageAnalyzer` — adapts its threshold to the phase: while in
  phase it keeps a running average of the phase's similarity values and
  reports P for values no more than ``delta`` below that average.  The
  paper specifies only the in-phase behavior; to *enter* a phase we use
  a fixed ``enter_threshold`` (see DESIGN.md).

Both analyzers also track simple phase statistics (count, mean) which a
client could use as a confidence signal — an optional framework feature
mentioned in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AnalyzerKind, DetectorConfig
from repro.core.state import PhaseState


@dataclass
class PhaseStats:
    """Running statistics of the similarity values of the current phase."""

    count: int = 0
    total: float = 0.0
    minimum: float = 1.0
    maximum: float = 0.0

    def add(self, value: float) -> None:
        """Fold one similarity value into the statistics."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean similarity of the phase so far (0.0 before any value)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Clear the statistics (phase ended)."""
        self.count = 0
        self.total = 0.0
        self.minimum = 1.0
        self.maximum = 0.0


class Analyzer:
    """Base analyzer: maps similarity values to P/T states."""

    def __init__(self) -> None:
        self.stats = PhaseStats()

    def process_value(self, similarity: float, current_state: PhaseState) -> PhaseState:
        """Decide the new state for ``similarity`` given the current state."""
        bar = self.effective_bar(current_state)
        return PhaseState.PHASE if similarity >= bar else PhaseState.TRANSITION

    def effective_bar(self, current_state: PhaseState) -> float:
        """The threshold in force for the next decision.

        This is the diagnostic the ``decision`` observability event
        records: what value the similarity had to clear, *before* the
        decision mutates any running statistics.
        """
        raise NotImplementedError

    def reset_stats(self, seed: float) -> None:
        """A new phase started; seed the statistics with its first value."""
        self.stats.reset()
        self.stats.add(seed)

    def update_stats(self, similarity: float) -> None:
        """Still in phase; fold in the latest similarity value."""
        self.stats.add(similarity)

    def clear(self) -> None:
        """The phase ended; drop its statistics."""
        self.stats.reset()

    @property
    def confidence(self) -> float:
        """An optional client signal: how far the phase mean clears the
        analyzer's effective threshold (0 when no phase is active)."""
        return 0.0


class ThresholdAnalyzer(Analyzer):
    """P iff similarity >= a fixed threshold."""

    def __init__(self, threshold: float) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        super().__init__()
        self.threshold = threshold

    def effective_bar(self, current_state: PhaseState) -> float:
        return self.threshold

    @property
    def confidence(self) -> float:
        if self.stats.count == 0:
            return 0.0
        return max(0.0, self.stats.mean - self.threshold)


class AverageAnalyzer(Analyzer):
    """P iff similarity >= (running in-phase average - delta).

    Phase entry uses ``enter_threshold`` (fixed); once in phase the
    threshold adapts to the phase's own similarity level.
    """

    def __init__(self, delta: float, enter_threshold: float = 0.5) -> None:
        if not 0.0 <= delta <= 1.0:
            raise ValueError(f"delta must be in [0, 1], got {delta}")
        if not 0.0 <= enter_threshold <= 1.0:
            raise ValueError(
                f"enter_threshold must be in [0, 1], got {enter_threshold}"
            )
        super().__init__()
        self.delta = delta
        self.enter_threshold = enter_threshold

    def effective_bar(self, current_state: PhaseState) -> float:
        if current_state.is_phase() and self.stats.count:
            return self.stats.mean - self.delta
        return self.enter_threshold

    @property
    def confidence(self) -> float:
        if self.stats.count == 0:
            return 0.0
        return max(0.0, self.stats.mean - (self.stats.mean - self.delta))


def build_analyzer(config: DetectorConfig) -> Analyzer:
    """Instantiate the analyzer named by ``config``."""
    if config.analyzer is AnalyzerKind.THRESHOLD:
        return ThresholdAnalyzer(config.threshold)
    return AverageAnalyzer(config.delta, config.enter_threshold)
