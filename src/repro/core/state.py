"""The two detector output states: P (in phase) and T (in transition)."""

from __future__ import annotations

import enum


class PhaseState(enum.Enum):
    """Per-element detector output (Section 2)."""

    TRANSITION = "T"
    PHASE = "P"

    def is_phase(self) -> bool:
        """True for P."""
        return self is PhaseState.PHASE

    def is_transition(self) -> bool:
        """True for T."""
        return self is PhaseState.TRANSITION

    def __str__(self) -> str:
        return self.value


T = PhaseState.TRANSITION
P = PhaseState.PHASE
