"""The online phase detection framework (Section 2 of the paper).

A detector is an instantiation of three orthogonal policies:

- **window policy** — CW/TW sizes, skip factor, trailing-window policy
  (Constant / Adaptive / the Fixed-Interval special case), anchoring
  (RN / LNN) and resizing (Slide / Move) — :mod:`repro.core.config`,
  :mod:`repro.core.windows`;
- **model policy** — unweighted or weighted set similarity —
  :mod:`repro.core.models`;
- **analyzer policy** — fixed Threshold or adaptive Average —
  :mod:`repro.core.analyzers`.

:class:`~repro.core.detector.PhaseDetector` is the readable reference
implementation of the framework loop; :func:`~repro.core.engine.run_detector`
is the optimized engine used by the experiment sweeps (bit-identical
output, verified by property tests).
"""

from repro.core.analyzers import (
    Analyzer,
    AverageAnalyzer,
    PhaseStats,
    ThresholdAnalyzer,
    build_analyzer,
)
from repro.core.config import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.bank import DetectorBank
from repro.core.detector import (
    DetectedPhase,
    DetectionResult,
    PhaseDetector,
    detect,
)
from repro.core.engine import run_detector
from repro.core.kernels import (
    DenseAdvancer,
    dense_eligible,
    kernels_enabled,
    run_dense,
    run_vectorized,
    vectorized_eligible,
)
from repro.core.runtime import (
    CheckpointError,
    DetectorRuntime,
    PhaseTracker,
    StepOutcome,
    validate_checkpoint,
)
from repro.core.models import (
    SimilarityModel,
    UnweightedSetModel,
    WeightedSetModel,
    build_model,
)
from repro.core.stream import StreamingDetector, detect_stream
from repro.core.prediction import (
    LastPhasePredictor,
    MarkovPhasePredictor,
    PredictionOutcome,
    evaluate_predictor,
)
from repro.core.recurrence import (
    PhaseRegistry,
    PhaseSignature,
    RecurrenceResult,
    RecurringPhase,
    RecurringPhaseDetector,
)
from repro.core.state import PhaseState

__all__ = [
    "AnalyzerKind",
    "AnchorPolicy",
    "DetectorConfig",
    "ModelKind",
    "ResizePolicy",
    "TrailingPolicy",
    "PhaseState",
    "StreamingDetector",
    "detect_stream",
    "LastPhasePredictor",
    "MarkovPhasePredictor",
    "PredictionOutcome",
    "evaluate_predictor",
    "PhaseRegistry",
    "PhaseSignature",
    "RecurrenceResult",
    "RecurringPhase",
    "RecurringPhaseDetector",
    "Analyzer",
    "ThresholdAnalyzer",
    "AverageAnalyzer",
    "PhaseStats",
    "build_analyzer",
    "SimilarityModel",
    "UnweightedSetModel",
    "WeightedSetModel",
    "build_model",
    "PhaseDetector",
    "DetectedPhase",
    "DetectionResult",
    "detect",
    "run_detector",
    "DetectorRuntime",
    "DetectorBank",
    "DenseAdvancer",
    "dense_eligible",
    "kernels_enabled",
    "run_dense",
    "run_vectorized",
    "vectorized_eligible",
    "PhaseTracker",
    "StepOutcome",
    "CheckpointError",
    "validate_checkpoint",
]
