"""DetectorBank: many detector configurations, one trace pass.

A sweep evaluates a grid of configurations over the same benchmark
trace.  Running :func:`~repro.core.engine.run_detector` per grid point
re-decodes the trace (ndarray → list) and re-slices it into
``skipFactor`` groups once per configuration, even though that work is
identical for every member with the same skip factor.  The bank
amortizes it: the trace is decoded exactly once, members are grouped
into *lanes* by skip factor, and each lane's group chunking is built
once per segment and shared by all of its members — converting the
sweep's hot path from O(configs × trace walks) to O(trace walks) of
decode/chunk work.

Every member is an independent :class:`~repro.core.runtime.DetectorRuntime`
advanced in lockstep over the shared groups, so results (states, phases,
similarity statistics, observability events) are bit-identical to
running each configuration alone — pinned by the equivalence tests and
by the sweep cache byte-equality test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.runtime import (
    SEGMENT_ELEMENTS,
    DetectionResult,
    DetectorRuntime,
)
from repro.profiles.trace import BranchTrace

__all__ = ["DetectorBank"]


class DetectorBank:
    """N detector configurations advanced in lockstep over one trace.

    ``observers`` optionally gives one observability sink per member
    (positionally matched to ``configs``); each member's event stream is
    identical to a solo run of that configuration.
    """

    def __init__(
        self,
        configs: Sequence[DetectorConfig],
        observers: Optional[Sequence[object]] = None,
    ) -> None:
        configs = list(configs)
        if not configs:
            raise ValueError("DetectorBank needs at least one configuration")
        if observers is None:
            observers = [None] * len(configs)
        elif len(observers) != len(configs):
            raise ValueError(
                f"got {len(observers)} observers for {len(configs)} configs"
            )
        self.runtimes = [
            DetectorRuntime(config, observer=observer)
            for config, observer in zip(configs, observers)
        ]

    def __len__(self) -> int:
        return len(self.runtimes)

    @property
    def configs(self) -> List[DetectorConfig]:
        return [runtime.config for runtime in self.runtimes]

    def run(self, trace: BranchTrace) -> List[DetectionResult]:
        """Run every member over ``trace``; results in member order."""
        data = trace.array
        total = int(data.size)
        elements = data.tolist()  # the one decode all members share
        runtimes = self.runtimes

        for runtime in runtimes:
            observer = runtime.observer
            if observer is not None:
                observer.emit(
                    {
                        "ev": "run_begin",
                        "step": 0,
                        "trace": trace.name,
                        "elements": total,
                        "config": runtime.config.describe(),
                    }
                )

        buffers = [bytearray(total) for _ in runtimes]
        lanes: Dict[int, List[int]] = {}
        for index, runtime in enumerate(runtimes):
            lanes.setdefault(runtime.config.skip_factor, []).append(index)

        for skip, members in lanes.items():
            segment = skip * max(1, SEGMENT_ELEMENTS // skip)
            base = 0
            while base < total:
                stop = min(base + segment, total)
                groups = [
                    elements[start : start + skip] for start in range(base, stop, skip)
                ]
                for index in members:
                    runtimes[index].advance(groups, buffers[index], base)
                base = stop

        results: List[DetectionResult] = []
        for index, runtime in enumerate(runtimes):
            phases = runtime.finish(total)
            observer = runtime.observer
            if observer is not None:
                observer.emit(
                    {
                        "ev": "run_end",
                        "step": total,
                        "phases": len(phases),
                        "elements": total,
                    }
                )
            states = np.frombuffer(bytes(buffers[index]), dtype=np.uint8).astype(bool)
            results.append(
                DetectionResult(
                    states=states, detected_phases=phases, config=runtime.config
                )
            )
        return results
