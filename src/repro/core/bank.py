"""DetectorBank: many detector configurations, one trace pass.

A sweep evaluates a grid of configurations over the same benchmark
trace.  Running :func:`~repro.core.engine.run_detector` per grid point
re-decodes the trace (ndarray → list) and re-slices it into
``skipFactor`` groups once per configuration, even though that work is
identical for every member with the same skip factor.  The bank
amortizes it: the trace is decoded exactly once, members are grouped
into *lanes* by skip factor, and each lane's group chunking is built
once per segment and shared by all of its members — converting the
sweep's hot path from O(configs × trace walks) to O(trace walks) of
decode/chunk work.

Every member is an independent :class:`~repro.core.runtime.DetectorRuntime`
advanced in lockstep over the shared groups, so results (states, phases,
similarity statistics, observability events) are bit-identical to
running each configuration alone — pinned by the equivalence tests and
by the sweep cache byte-equality test.

With the array-native kernels enabled (the default, see
:mod:`repro.core.kernels`), eligible members skip the lockstep lanes
entirely and run on the trace's shared dense element remap instead —
the cached ``dense_codes()`` pass and one materialized code list are
the bank-level shared work, replacing the shared decode/chunking.
Observed or custom-component members still use the legacy lanes, and
results stay bit-identical either way.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.decision import DetectionResult, build_engine
from repro.core.runtime import SEGMENT_ELEMENTS
from repro.profiles.trace import BranchTrace

__all__ = ["DetectorBank"]


def _maybe_span(tracer, name, parent, **attrs):
    """A tracer span when tracing is on; a free ``nullcontext`` when off.

    Keeps :mod:`repro.core` decoupled from :mod:`repro.obs.trace`: the
    tracer is duck-typed (anything with ``span(name, parent=, **attrs)``)
    and the off path costs exactly one ``is None`` branch.
    """
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, parent=parent, **attrs)


class DetectorBank:
    """N detector configurations advanced in lockstep over one trace.

    ``observers`` optionally gives one observability sink per member
    (positionally matched to ``configs``); each member's event stream is
    identical to a solo run of that configuration.
    """

    def __init__(
        self,
        configs: Sequence[DetectorConfig],
        observers: Optional[Sequence[object]] = None,
    ) -> None:
        configs = list(configs)
        if not configs:
            raise ValueError("DetectorBank needs at least one configuration")
        if observers is None:
            observers = [None] * len(configs)
        elif len(observers) != len(configs):
            raise ValueError(
                f"got {len(observers)} observers for {len(configs)} configs"
            )
        self.runtimes = [
            build_engine(config, observer=observer)
            for config, observer in zip(configs, observers)
        ]

    def __len__(self) -> int:
        return len(self.runtimes)

    @property
    def configs(self) -> List[DetectorConfig]:
        return [runtime.config for runtime in self.runtimes]

    def run(
        self,
        trace: BranchTrace,
        kernels: Optional[bool] = None,
        batched: Optional[bool] = None,
        tracer=None,
        trace_parent=None,
        metrics=None,
    ) -> List[DetectionResult]:
        """Run every member over ``trace``; results in member order.

        Members eligible for the array-native kernels (see
        :mod:`repro.core.kernels`) run on the shared per-trace dense
        remap — the cached ``trace.dense_codes()`` pass plus one
        materialized code list shared by every dense member, the same
        way the legacy lanes share the trace decode.  Vectorized members
        additionally run through the **batched advancer**
        (:func:`repro.core.kernels.run_bank_batched`): one
        :class:`~repro.core.kernels.SharedTraceKernels` cache funnels
        every lane, so lanes sharing a window signature share the full
        similarity-series computation instead of recomputing it per
        lane.  Observed or custom-component members keep the legacy
        lockstep lanes.  ``kernels=None`` consults the ``REPRO_KERNELS``
        environment variable; ``kernels=False`` forces the lanes for all
        members.  ``batched=None`` consults ``REPRO_BANK_BATCHED``
        (default on); ``batched=False`` runs vectorized members through
        independent per-lane calls instead — output is identical either
        way (the sharing is a pure cache).

        Telemetry (both optional, zero-cost when ``None``):

        - ``tracer``/``trace_parent`` — a duck-typed span tracer (see
          :mod:`repro.obs.trace`); the run becomes a ``bank.run`` span
          under ``trace_parent`` with one ``bank.kernel`` child per
          kernel path actually taken (``batched`` / ``vectorized`` /
          ``dense`` / ``lanes``).
        - ``metrics`` — a registry whose ``bank.advance_seconds``
          histogram receives one observation per kernel member run and
          per legacy lane segment.
        """
        from repro.core import kernels as kernel_mod

        data = trace.array
        total = int(data.size)
        runtimes = self.runtimes
        with _maybe_span(
            tracer,
            "bank.run",
            trace_parent,
            trace=trace.name,
            members=len(runtimes),
            elements=total,
        ) as bank_span:
            return self._run(
                trace, kernels, batched, total, tracer, bank_span, metrics,
                kernel_mod,
            )

    def _run(
        self, trace, kernels, batched, total, tracer, bank_span, metrics,
        kernel_mod,
    ):
        data = trace.array
        runtimes = self.runtimes
        histogram = (
            metrics.histogram("bank.advance_seconds") if metrics is not None else None
        )

        for runtime in runtimes:
            observer = runtime.observer
            if observer is not None:
                observer.emit(
                    {
                        "ev": "run_begin",
                        "step": 0,
                        "trace": trace.name,
                        "elements": total,
                        "config": runtime.config.describe(),
                    }
                )

        if batched is None:
            batched = kernel_mod.bank_batching_enabled()
        states_by_member: List[Optional[np.ndarray]] = [None] * len(runtimes)
        vector_members: List[int] = []
        dense_members: List[int] = []
        legacy_members: List[int] = []
        for index, runtime in enumerate(runtimes):
            path = kernel_mod.kernel_path(runtime, kernels)
            if path == "vectorized":
                vector_members.append(index)
            elif path == "dense":
                dense_members.append(index)
            else:
                legacy_members.append(index)

        if vector_members:
            path_label = "batched" if batched else "vectorized"
            with _maybe_span(
                tracer, "bank.kernel", bank_span,
                path=path_label, members=len(vector_members),
            ):
                if batched:
                    member_states = kernel_mod.run_bank_batched(
                        [runtimes[index] for index in vector_members],
                        trace,
                        histogram=histogram,
                    )
                    for index, states in zip(vector_members, member_states):
                        states_by_member[index] = states
                else:
                    for index in vector_members:
                        started = (
                            time.perf_counter() if histogram is not None else 0.0
                        )
                        states_by_member[index] = kernel_mod.run_vectorized(
                            runtimes[index], trace
                        )
                        if histogram is not None:
                            histogram.observe(time.perf_counter() - started)
        if dense_members:
            with _maybe_span(
                tracer, "bank.kernel", bank_span,
                path="dense", members=len(dense_members),
            ):
                # One materialization, cached on the trace and shared across
                # every bank batch (not just this one).
                codes, n_codes = trace.dense_code_list()
                for index in dense_members:
                    started = time.perf_counter() if histogram is not None else 0.0
                    states_by_member[index] = kernel_mod.run_dense(
                        runtimes[index], trace, codes, n_codes
                    )
                    if histogram is not None:
                        histogram.observe(time.perf_counter() - started)

        if legacy_members:
            with _maybe_span(
                tracer, "bank.kernel", bank_span,
                path="lanes", members=len(legacy_members),
            ):
                elements = data.tolist()  # the one decode the lanes share
                buffers = {index: bytearray(total) for index in legacy_members}
                lanes: Dict[int, List[int]] = {}
                for index in legacy_members:
                    lanes.setdefault(
                        runtimes[index].config.skip_factor, []
                    ).append(index)
                for skip, members in lanes.items():
                    segment = skip * max(1, SEGMENT_ELEMENTS // skip)
                    base = 0
                    while base < total:
                        stop = min(base + segment, total)
                        if skip == 1:
                            # Skip-1 lanes share the flat element slice
                            # directly — no per-element group lists.
                            chunk = elements[base:stop]
                            started = (
                                time.perf_counter() if histogram is not None else 0.0
                            )
                            for index in members:
                                runtimes[index].advance_flat(
                                    chunk, buffers[index], base
                                )
                        else:
                            groups = [
                                elements[start : start + skip]
                                for start in range(base, stop, skip)
                            ]
                            started = (
                                time.perf_counter() if histogram is not None else 0.0
                            )
                            for index in members:
                                runtimes[index].advance(groups, buffers[index], base)
                        if histogram is not None:
                            histogram.observe(time.perf_counter() - started)
                        base = stop
                for index in legacy_members:
                    states_by_member[index] = np.frombuffer(
                        bytes(buffers[index]), dtype=np.uint8
                    ).astype(bool)

        results: List[DetectionResult] = []
        for index, runtime in enumerate(runtimes):
            phases = runtime.finish(total)
            observer = runtime.observer
            if observer is not None:
                observer.emit(
                    {
                        "ev": "run_end",
                        "step": total,
                        "phases": len(phases),
                        "elements": total,
                    }
                )
            results.append(
                DetectionResult(
                    states=states_by_member[index],
                    detected_phases=phases,
                    config=runtime.config,
                )
            )
        return results
