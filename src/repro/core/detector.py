"""The online phase detector (Figure 3's framework loop).

:class:`PhaseDetector` is the reference implementation: readable and
structured exactly like the paper's pseudo-code.  The optimized engine
in :mod:`repro.core.engine` produces bit-identical output and is what
the experiment sweeps use.

The detector consumes ``skipFactor`` profile elements per step and
outputs one state per input element.  It also records, for each
detected phase, the anchor-corrected start position (Section 5 /
Figure 8): once a phase is detected, the anchoring policy identifies
where in the trailing window the phase actually began.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.analyzers import Analyzer, build_analyzer
from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.models import SimilarityModel, build_model
from repro.core.state import PhaseState
from repro.profiles.trace import BranchTrace
from repro.scoring.states import Interval, states_from_phases


@dataclass(frozen=True)
class DetectedPhase:
    """One detected phase with both raw and anchor-corrected starts.

    ``mean_similarity`` is the running average of the phase's similarity
    values — the optional confidence signal Section 2 mentions a client
    may want.
    """

    detected_start: int
    corrected_start: int
    end: int
    mean_similarity: float = 0.0

    @property
    def length(self) -> int:
        return self.end - self.detected_start

    @property
    def confidence(self) -> float:
        """Alias: how stable the phase's similarity was, in [0, 1]."""
        return self.mean_similarity


@dataclass
class DetectionResult:
    """The full output of a detector run over one trace."""

    states: np.ndarray               # bool, True = P, one per element
    detected_phases: List[DetectedPhase]
    config: DetectorConfig
    similarity_values: Optional[np.ndarray] = None

    @property
    def num_elements(self) -> int:
        return int(self.states.size)

    def phases(self) -> List[Interval]:
        """Detected phase intervals as reported online (detection-time starts)."""
        return [(p.detected_start, p.end) for p in self.detected_phases]

    def corrected_phases(self) -> List[Interval]:
        """Phase intervals with anchor-corrected starts (Figure 8)."""
        return [(p.corrected_start, p.end) for p in self.detected_phases]

    def corrected_states(self) -> np.ndarray:
        """State array rebuilt from the anchor-corrected intervals."""
        return states_from_phases(self.corrected_phases(), self.num_elements)


class PhaseDetector:
    """Online phase detector: one Model plus one Analyzer (Figure 3).

    ``observer`` is an optional observability sink (anything with an
    ``emit(event: dict)`` method — see :mod:`repro.obs`).  When set,
    the detector emits the structured per-step event stream documented
    in ``docs/observability.md``; when None (the default) no events are
    built at all.
    """

    def __init__(self, config: DetectorConfig, observer=None) -> None:
        self.config = config
        self.model: SimilarityModel = build_model(config)
        self.analyzer: Analyzer = build_analyzer(config)
        self.observer = observer
        self.model.observer = observer  # windows emit tw_resize/window_flush
        self.state = PhaseState.TRANSITION
        self._adaptive = config.trailing is TrailingPolicy.ADAPTIVE
        # Per-phase records built up during streaming.
        self._phases: List[DetectedPhase] = []
        self._open_phase: Optional[Tuple[int, int]] = None  # (det start, corrected)

    def process_profile(self, elements: Sequence[int]) -> PhaseState:
        """Consume the most recent ``skipFactor`` profile elements.

        Returns the new state, which applies to every element passed in.
        This is the framework's ``processProfile`` entry point.
        """
        elements = list(elements)
        model = self.model
        model.push(elements)

        observer = self.observer
        if not model.filled:
            new_state = PhaseState.TRANSITION
            similarity = None
        else:
            similarity = model.similarity()
            if observer is not None:
                step = model.consumed
                observer.emit(
                    {
                        "ev": "similarity",
                        "step": step,
                        "value": similarity,
                        "cw": model.cw_length,
                        "tw": model.tw_length,
                    }
                )
                bar = self.analyzer.effective_bar(self.state)
            new_state = self.analyzer.process_value(similarity, self.state)
            if observer is not None:
                observer.emit(
                    {
                        "ev": "decision",
                        "step": step,
                        "state": "P" if new_state.is_phase() else "T",
                        "value": similarity,
                        "bar": bar,
                    }
                )

        if self.state.is_transition() and new_state.is_phase():
            # Start phase: anchor the TW and reset analyzer statistics.
            anchor_abs = model.anchor_and_resize(
                self.config.anchor, self.config.resize, self._adaptive
            )
            self.analyzer.reset_stats(similarity if similarity is not None else 0.0)
            detected_start = model.consumed - len(elements)
            self._open_phase = (detected_start, min(anchor_abs, detected_start))
            if observer is not None:
                observer.emit(
                    {
                        "ev": "phase_enter",
                        "step": model.consumed,
                        "detected_start": detected_start,
                        "corrected_start": min(anchor_abs, detected_start),
                        "anchor": anchor_abs,
                    }
                )
        elif self.state.is_phase() and new_state.is_transition():
            # End phase: record it (while the stats are live), then
            # flush the windows and reseed the CW.
            self._close_phase(model.consumed - len(elements))
            model.clear_and_seed(elements)
            self.analyzer.clear()
        elif self.state.is_phase():
            # In phase: track statistics.
            if similarity is not None:
                self.analyzer.update_stats(similarity)

        self.state = new_state
        return new_state

    def _close_phase(self, end: int) -> None:
        if self._open_phase is not None:
            detected_start, corrected_start = self._open_phase
            stats = self.analyzer.stats
            mean = stats.total / stats.count if stats.count else 0.0
            self._phases.append(
                DetectedPhase(detected_start, corrected_start, end, mean)
            )
            self._open_phase = None
            if self.observer is not None:
                self.observer.emit(
                    {
                        "ev": "phase_exit",
                        "step": self.model.consumed,
                        "detected_start": detected_start,
                        "corrected_start": corrected_start,
                        "end": end,
                        "mean_similarity": mean,
                    }
                )

    def finish(self, total_elements: int) -> List[DetectedPhase]:
        """Close any phase still open at end of trace and return all phases."""
        if self.state.is_phase():
            self._close_phase(total_elements)
            self.state = PhaseState.TRANSITION
        return list(self._phases)

    def run(
        self, trace: BranchTrace, record_similarity: bool = False
    ) -> DetectionResult:
        """Run the detector over a whole trace and collect per-element states."""
        data = trace.array
        total = int(data.size)
        skip = self.config.skip_factor
        states = np.zeros(total, dtype=bool)
        similarities = np.full(total, np.nan) if record_similarity else None
        if self.observer is not None:
            self.observer.emit(
                {
                    "ev": "run_begin",
                    "step": 0,
                    "trace": trace.name,
                    "elements": total,
                    "config": self.config.describe(),
                }
            )
        for start in range(0, total, skip):
            group = data[start : start + skip].tolist()
            new_state = self.process_profile(group)
            if new_state.is_phase():
                states[start : start + len(group)] = True
            if record_similarity and self.model.filled:
                similarities[start : start + len(group)] = self.model.similarity()
        phases = self.finish(total)
        if self.observer is not None:
            self.observer.emit(
                {
                    "ev": "run_end",
                    "step": total,
                    "phases": len(phases),
                    "elements": total,
                }
            )
        return DetectionResult(
            states=states,
            detected_phases=phases,
            config=self.config,
            similarity_values=similarities,
        )


def detect(trace: BranchTrace, config: DetectorConfig, observer=None) -> DetectionResult:
    """Convenience one-shot: run a fresh detector for ``config`` over ``trace``."""
    return PhaseDetector(config, observer=observer).run(trace)
