"""The online phase detector (Figure 3's framework loop).

:class:`PhaseDetector` is the reference front over the unified
:class:`~repro.core.runtime.DetectorRuntime`: it always drives the
runtime's component-based :meth:`~repro.core.runtime.DetectorRuntime.step`
path, structured exactly like the paper's pseudo-code, and therefore
supports injected custom models/analyzers (see
:mod:`repro.core.extensions`).  The optimized path lives in the same
runtime and is what :func:`repro.core.engine.run_detector` uses; the two
are verified bit-identical by the equivalence tests.

The detector consumes ``skipFactor`` profile elements per step and
outputs one state per input element.  It also records, for each
detected phase, the anchor-corrected start position (Section 5 /
Figure 8): once a phase is detected, the anchoring policy identifies
where in the trailing window the phase actually began.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.analyzers import Analyzer
from repro.core.config import DetectorConfig
from repro.core.models import SimilarityModel
from repro.core.runtime import (
    DetectedPhase,
    DetectionResult,
    DetectorRuntime,
    StepOutcome,
)
from repro.core.state import PhaseState
from repro.profiles.trace import BranchTrace

__all__ = [
    "DetectedPhase",
    "DetectionResult",
    "PhaseDetector",
    "StepOutcome",
    "detect",
]


class PhaseDetector:
    """Online phase detector: one Model plus one Analyzer (Figure 3).

    ``observer`` is an optional observability sink (anything with an
    ``emit(event: dict)`` method — see :mod:`repro.obs`).  When set,
    the detector emits the structured per-step event stream documented
    in ``docs/observability.md``; when None (the default) no events are
    built at all.
    """

    def __init__(self, config: DetectorConfig, observer=None) -> None:
        self.runtime = DetectorRuntime(config, observer=observer)

    # The model/analyzer/state/observer live in the runtime; these
    # delegating properties keep the established surface, including
    # post-construction component injection (extensions, metering).

    @property
    def config(self) -> DetectorConfig:
        return self.runtime.config

    @property
    def model(self) -> SimilarityModel:
        return self.runtime.model

    @model.setter
    def model(self, value: SimilarityModel) -> None:
        self.runtime.model = value
        value.observer = self.runtime.observer

    @property
    def analyzer(self) -> Analyzer:
        return self.runtime.analyzer

    @analyzer.setter
    def analyzer(self, value: Analyzer) -> None:
        self.runtime.analyzer = value

    @property
    def state(self) -> PhaseState:
        return self.runtime.state

    @state.setter
    def state(self, value: PhaseState) -> None:
        self.runtime.state = value

    @property
    def observer(self):
        return self.runtime.observer

    @observer.setter
    def observer(self, value) -> None:
        self.runtime.observer = value

    def process_profile(self, elements: Sequence[int]) -> PhaseState:
        """Consume the most recent ``skipFactor`` profile elements.

        Returns the new state, which applies to every element passed in.
        This is the framework's ``processProfile`` entry point.
        """
        return self.runtime.step(elements).state

    def finish(self, total_elements: int) -> List[DetectedPhase]:
        """Close any phase still open at end of trace and return all phases."""
        return self.runtime.finish(total_elements)

    def run(
        self, trace: BranchTrace, record_similarity: bool = False
    ) -> DetectionResult:
        """Run the detector over a whole trace and collect per-element states.

        ``record_similarity`` collects, per element, the similarity value
        each step's decision actually used (NaN while the windows fill).
        """
        return self.runtime.run(
            trace, record_similarity=record_similarity, fused=False
        )


def detect(trace: BranchTrace, config: DetectorConfig, observer=None) -> DetectionResult:
    """Convenience one-shot: run a fresh detector for ``config`` over ``trace``."""
    return PhaseDetector(config, observer=observer).run(trace)
