"""Similarity models (Section 2, "Model Policy").

Two models are provided, both built on :class:`~repro.core.windows.WindowPair`:

- :class:`UnweightedSetModel` — asymmetric working-set similarity: the
  fraction of the CW's *distinct* elements that also appear in the TW.
  Maintained incrementally in O(1) per element move.
- :class:`WeightedSetModel` — symmetric weighted similarity: for each
  element, its relative weight in each window (count / window length);
  the similarity is the sum over elements of the minimum of the two
  relative weights.

These classes are the semantic reference for the model policy.  The
array-native kernels of :mod:`repro.core.kernels` mirror the same
bookkeeping on flat count buffers over dense codes (bit-identical,
pinned by the kernel equivalence suites); any change to similarity
semantics here must be reflected there.
"""

from __future__ import annotations


from repro.core.config import DetectorConfig, ModelKind
from repro.core.windows import WindowPair


class SimilarityModel(WindowPair):
    """Base class: a window pair that can report a similarity value."""

    def similarity(self) -> float:
        """Similarity of the two windows, in [0, 1]."""
        raise NotImplementedError


class UnweightedSetModel(SimilarityModel):
    """Asymmetric unweighted (working-set) similarity.

    ``similarity = |distinct(CW) ∩ distinct(TW)| / |distinct(CW)|``

    E.g. CW = {a, b} and TW = {a, c} gives 0.5 regardless of how often
    ``a`` occurs in either window.
    """

    def __init__(self, cw_capacity: int, tw_capacity: int) -> None:
        self._distinct_cw = 0
        self._shared = 0  # distinct elements present in both windows
        super().__init__(cw_capacity, tw_capacity)

    def _reset_aggregates(self) -> None:
        self._distinct_cw = 0
        self._shared = 0

    def _on_cw_add(self, element: int, new_count: int) -> None:
        if new_count == 1:
            self._distinct_cw += 1
            if element in self.tw_counts:
                self._shared += 1

    def _on_cw_remove(self, element: int, new_count: int) -> None:
        if new_count == 0:
            self._distinct_cw -= 1
            if element in self.tw_counts:
                self._shared -= 1

    def _on_tw_add(self, element: int, new_count: int) -> None:
        if new_count == 1 and element in self.cw_counts:
            self._shared += 1

    def _on_tw_remove(self, element: int, new_count: int) -> None:
        if new_count == 0 and element in self.cw_counts:
            self._shared -= 1

    def similarity(self) -> float:
        if self._distinct_cw == 0:
            return 0.0
        return self._shared / self._distinct_cw


class WeightedSetModel(SimilarityModel):
    """Symmetric weighted similarity.

    For each element ``e``: ``w_cw(e) = count_cw(e) / |CW|`` and
    ``w_tw(e) = count_tw(e) / |TW|``; the similarity is
    ``sum_e min(w_cw(e), w_tw(e))``.  Only elements present in the CW
    can contribute, so the sum iterates the CW's distinct elements.
    """

    def similarity(self) -> float:
        cw_length = len(self._cw)
        tw_length = len(self._tw)
        if cw_length == 0 or tw_length == 0:
            return 0.0
        tw_counts = self.tw_counts
        total = 0.0
        for element, cw_count in self.cw_counts.items():
            tw_count = tw_counts.get(element)
            if tw_count is not None:
                total += min(cw_count * tw_length, tw_count * cw_length)
        return total / (cw_length * tw_length)


def build_model(config: DetectorConfig) -> SimilarityModel:
    """Instantiate the model named by ``config``."""
    if config.model is ModelKind.UNWEIGHTED:
        return UnweightedSetModel(config.cw_size, config.effective_tw_size)
    return WeightedSetModel(config.cw_size, config.effective_tw_size)
