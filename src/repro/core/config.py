"""Detector configuration: the framework's three orthogonal design choices.

A concrete online phase detection algorithm is a :class:`DetectorConfig`:
a window policy (CW size, TW size, skip factor, trailing-window policy,
anchoring and resizing for the Adaptive TW), a model policy (unweighted
or weighted set), and an analyzer policy (fixed Threshold or adaptive
Average).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple


class TrailingPolicy(enum.Enum):
    """How the trailing window behaves (Section 2 / Figure 2)."""

    CONSTANT = "constant"
    ADAPTIVE = "adaptive"


class AnchorPolicy(enum.Enum):
    """Where the anchor point is placed at phase start (Section 5)."""

    RN = "rn"    # one element right of the rightmost noisy element
    LNN = "lnn"  # at the leftmost non-noisy element


class ResizePolicy(enum.Enum):
    """How windows are resized at the anchor point (Section 5)."""

    SLIDE = "slide"  # slide the TW right, shrinking the CW
    MOVE = "move"    # move the TW's left boundary right, CW unaffected


class ModelKind(enum.Enum):
    """Similarity model policy (Section 2)."""

    UNWEIGHTED = "unweighted"  # asymmetric working-set similarity
    WEIGHTED = "weighted"      # symmetric min-relative-weight similarity


class AnalyzerKind(enum.Enum):
    """Similarity analyzer policy (Section 2)."""

    THRESHOLD = "threshold"  # fixed threshold
    AVERAGE = "average"      # running in-phase average minus a delta


@dataclass(frozen=True)
class DetectorConfig:
    """Full parameterization of one online phase detector.

    Attributes:
        cw_size: current-window size in profile elements.
        tw_size: trailing-window (initial) size; defaults to ``cw_size``.
        skip_factor: number of profile elements consumed per step.
        trailing: trailing-window policy.
        anchor: anchor policy (Adaptive TW phase starts; also used for
            the anchor-corrected boundaries of Figure 8).
        resize: resize policy applied at the anchor point (Adaptive TW).
        model: similarity model policy.
        analyzer: similarity analyzer policy.
        threshold: the fixed threshold (Threshold analyzer).
        delta: the below-average delta (Average analyzer).
        enter_threshold: similarity needed to *enter* a phase under the
            Average analyzer (the paper specifies only the in-phase
            behavior; see DESIGN.md for this interpretation).
        family: which detector family interprets this configuration —
            ``"windowed"`` (the paper's grid, the default) or a name
            from the :mod:`repro.comparators` registry (``"focus"``,
            ``"newma"``, ...).  Non-windowed families read ``cw_size``
            as their warm-up/window scale and ``skip_factor`` as the
            elements-per-step group size; the window-policy fields are
            ignored.
        stat_threshold: the changepoint families' decision bar (FOCuS
            statistic / NEWMA distance).  ``None`` picks the family's
            documented default.
        newma_fast: NEWMA's fast forgetting factor (lambda).
        newma_slow: NEWMA's slow forgetting factor (Lambda); must be
            below ``newma_fast``.
        sketch_dim: NEWMA's hashed feature-sketch dimensionality.
    """

    cw_size: int
    tw_size: Optional[int] = None
    skip_factor: int = 1
    trailing: TrailingPolicy = TrailingPolicy.CONSTANT
    anchor: AnchorPolicy = AnchorPolicy.RN
    resize: ResizePolicy = ResizePolicy.SLIDE
    model: ModelKind = ModelKind.UNWEIGHTED
    analyzer: AnalyzerKind = AnalyzerKind.THRESHOLD
    threshold: float = 0.5
    delta: float = 0.05
    enter_threshold: float = 0.5
    family: str = "windowed"
    stat_threshold: Optional[float] = None
    newma_fast: float = 0.2
    newma_slow: float = 0.05
    sketch_dim: int = 64

    def __post_init__(self) -> None:
        if self.cw_size <= 0:
            raise ValueError(f"cw_size must be positive, got {self.cw_size}")
        if self.tw_size is not None and self.tw_size <= 0:
            raise ValueError(f"tw_size must be positive, got {self.tw_size}")
        if self.skip_factor <= 0:
            raise ValueError(f"skip_factor must be positive, got {self.skip_factor}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")
        if not 0.0 <= self.delta <= 1.0:
            raise ValueError(f"delta must be in [0, 1], got {self.delta}")
        if not 0.0 <= self.enter_threshold <= 1.0:
            raise ValueError(
                f"enter_threshold must be in [0, 1], got {self.enter_threshold}"
            )
        if not self.family or not isinstance(self.family, str):
            raise ValueError(f"family must be a non-empty string, got {self.family!r}")
        if self.stat_threshold is not None and self.stat_threshold <= 0.0:
            raise ValueError(
                f"stat_threshold must be positive, got {self.stat_threshold}"
            )
        if not 0.0 < self.newma_slow < self.newma_fast < 1.0:
            raise ValueError(
                "need 0 < newma_slow < newma_fast < 1, got "
                f"slow={self.newma_slow}, fast={self.newma_fast}"
            )
        if self.sketch_dim <= 0:
            raise ValueError(f"sketch_dim must be positive, got {self.sketch_dim}")

    @property
    def is_windowed(self) -> bool:
        """True for the paper's windowed grid (the default family)."""
        return self.family == "windowed"

    @property
    def effective_tw_size(self) -> int:
        """The TW's (initial) size: ``tw_size`` or, if unset, ``cw_size``."""
        return self.tw_size if self.tw_size is not None else self.cw_size

    @property
    def is_fixed_interval(self) -> bool:
        """The extant-work configuration: Constant TW with skip = CW size."""
        return (
            self.trailing is TrailingPolicy.CONSTANT
            and self.skip_factor == self.cw_size
            and self.effective_tw_size == self.cw_size
        )

    @staticmethod
    def fixed_interval(
        cw_size: int,
        model: ModelKind = ModelKind.UNWEIGHTED,
        analyzer: AnalyzerKind = AnalyzerKind.THRESHOLD,
        threshold: float = 0.5,
        delta: float = 0.05,
    ) -> "DetectorConfig":
        """Build the Fixed-Interval configuration used by prior work.

        ``skipFactor`` = TW size = CW size (Dhodapkar & Smith and others).
        """
        return DetectorConfig(
            cw_size=cw_size,
            tw_size=cw_size,
            skip_factor=cw_size,
            trailing=TrailingPolicy.CONSTANT,
            model=model,
            analyzer=analyzer,
            threshold=threshold,
            delta=delta,
        )

    def key(self) -> Tuple:
        """A compact, hashable cache key for this configuration."""
        base = (
            self.cw_size,
            self.effective_tw_size,
            self.skip_factor,
            self.trailing.value,
            self.anchor.value,
            self.resize.value,
            self.model.value,
            self.analyzer.value,
            round(self.threshold, 6),
            round(self.delta, 6),
            round(self.enter_threshold, 6),
        )
        if self.is_windowed:
            return base
        return base + (
            self.family,
            None if self.stat_threshold is None else round(self.stat_threshold, 6),
            round(self.newma_fast, 6),
            round(self.newma_slow, 6),
            self.sketch_dim,
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict representation (used by detector checkpoints).

        The windowed family serializes exactly its original 11 keys —
        family fields appear only for non-windowed configurations — so
        v1 windowed checkpoints stay byte-identical.
        """
        data: Dict[str, object] = {
            "cw_size": self.cw_size,
            "tw_size": self.tw_size,
            "skip_factor": self.skip_factor,
            "trailing": self.trailing.value,
            "anchor": self.anchor.value,
            "resize": self.resize.value,
            "model": self.model.value,
            "analyzer": self.analyzer.value,
            "threshold": self.threshold,
            "delta": self.delta,
            "enter_threshold": self.enter_threshold,
        }
        if not self.is_windowed:
            data["family"] = self.family
            data["stat_threshold"] = self.stat_threshold
            data["newma_fast"] = self.newma_fast
            data["newma_slow"] = self.newma_slow
            data["sketch_dim"] = self.sketch_dim
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DetectorConfig":
        """Inverse of :meth:`to_dict`; validates via ``__post_init__``."""
        stat_threshold = data.get("stat_threshold")
        return cls(
            cw_size=int(data["cw_size"]),
            tw_size=None if data.get("tw_size") is None else int(data["tw_size"]),
            skip_factor=int(data.get("skip_factor", 1)),
            trailing=TrailingPolicy(data["trailing"]),
            anchor=AnchorPolicy(data["anchor"]),
            resize=ResizePolicy(data["resize"]),
            model=ModelKind(data["model"]),
            analyzer=AnalyzerKind(data["analyzer"]),
            threshold=float(data["threshold"]),
            delta=float(data["delta"]),
            enter_threshold=float(data["enter_threshold"]),
            family=str(data.get("family", "windowed")),
            stat_threshold=None if stat_threshold is None else float(stat_threshold),
            newma_fast=float(data.get("newma_fast", 0.2)),
            newma_slow=float(data.get("newma_slow", 0.05)),
            sketch_dim=int(data.get("sketch_dim", 64)),
        )

    @classmethod
    def wire_defaults(cls) -> Dict[str, object]:
        """Default values for every wire-settable field, family included.

        What the serve layer's ``open`` message merges client overrides
        into — unlike :meth:`to_dict` (whose windowed form is pinned to
        the v1 checkpoint bytes), this always lists the family fields so
        clients can select any registered family.
        """
        probe = cls(cw_size=1)
        data = probe.to_dict()
        data["family"] = probe.family
        data["stat_threshold"] = probe.stat_threshold
        data["newma_fast"] = probe.newma_fast
        data["newma_slow"] = probe.newma_slow
        data["sketch_dim"] = probe.sketch_dim
        return data

    def describe(self) -> str:
        """A short human-readable label for reports."""
        if not self.is_windowed:
            bar = "auto" if self.stat_threshold is None else f"{self.stat_threshold}"
            label = (
                f"{self.family} cw={self.cw_size},skip={self.skip_factor} "
                f"stat_thr={bar}"
            )
            if self.family == "newma":
                label += (
                    f" fast={self.newma_fast},slow={self.newma_slow}"
                    f",dim={self.sketch_dim}"
                )
            return label
        window = f"cw={self.cw_size},tw={self.effective_tw_size},skip={self.skip_factor}"
        policy = self.trailing.value
        if self.trailing is TrailingPolicy.ADAPTIVE:
            policy += f"[{self.anchor.value},{self.resize.value}]"
        if self.analyzer is AnalyzerKind.THRESHOLD:
            analyzer = f"thr={self.threshold}"
        else:
            analyzer = f"avg(delta={self.delta})"
        return f"{policy} {window} {self.model.value} {analyzer}"

    def scaled(self, factor: float) -> "DetectorConfig":
        """Return a copy with window sizes and skip scaled by ``factor``.

        Used to map the paper's nominal parameter grid onto shorter
        traces; sizes are rounded and floored at 1.
        """
        def _scale(value: int) -> int:
            return max(1, round(value * factor))

        return replace(
            self,
            cw_size=_scale(self.cw_size),
            tw_size=None if self.tw_size is None else _scale(self.tw_size),
            skip_factor=_scale(self.skip_factor) if self.skip_factor > 1 else 1,
        )
