"""The detector-agnostic decision layer.

The paper frames phase detection as ``Model x Analyzer x WindowPolicy``,
but nothing about *phase bookkeeping* is windowed: any online detector —
a CUSUM statistic, an EWMA distance, a correlation test — reduces each
step to the same decision: enter a phase, stay where it is, or exit.
This module owns that reduction:

- :class:`PhaseDecision` — what one step decided (enter / exit /
  continue) plus the statistic the decision actually used.  The
  windowed runtime's :class:`~repro.core.runtime.StepOutcome` is an
  alias of this protocol; similarity is just its statistic.
- :class:`DecisionEngine` — the abstract engine every detector family
  implements: ``step()`` consumes one ``skipFactor`` group and returns
  a decision; the base class supplies the chunked ``advance()`` driver,
  whole-trace ``run()``, phase statistics, and the versioned family
  checkpoint schema (v2), so a new family only writes its statistic
  update and its serializable state.
- :class:`PhaseTracker` — the single home of phase bookkeeping.  It
  consumes the engines' decisions (open on enter, close on exit) and
  emits the ``phase_enter``/``phase_exit`` observability events; no
  engine duplicates this logic.
- :func:`build_engine` / :func:`restore_engine` — the one code path
  from a :class:`~repro.core.config.DetectorConfig` (its ``family``
  field) or a serialized checkpoint to a live engine, dispatching
  through the :mod:`repro.comparators` registry.

Checkpoint schema versions (see ``docs/formats.md``):

- **v1** — the windowed grid's schema, emitted by
  :class:`~repro.core.runtime.DetectorRuntime` unchanged (byte-for-byte
  stable across the decision-layer refactor).
- **v2** — the family schema: a ``family`` tag plus an opaque
  ``engine`` payload each family serializes for itself.  v1 remains
  readable; :func:`restore_engine` accepts both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.state import PhaseState
from repro.profiles.trace import BranchTrace
from repro.scoring.states import Interval, states_from_phases

#: ``format`` field of a serialized checkpoint.
CHECKPOINT_FORMAT = "repro-detector-checkpoint"
#: The windowed grid's checkpoint schema version (see ``docs/formats.md``).
CHECKPOINT_VERSION = 1
#: The family checkpoint schema version (``family`` tag + engine payload).
CHECKPOINT_VERSION_FAMILY = 2

#: The windowed grid's family name (the :class:`DetectorConfig` default).
WINDOWED_FAMILY = "windowed"


@dataclass(frozen=True)
class DetectedPhase:
    """One detected phase with both raw and anchor-corrected starts.

    ``mean_similarity`` is the running average of the phase's decision
    statistic — the windowed families' similarity, the changepoint
    families' stability statistic — the optional confidence signal
    Section 2 mentions a client may want.
    """

    detected_start: int
    corrected_start: int
    end: int
    mean_similarity: float = 0.0

    @property
    def length(self) -> int:
        return self.end - self.detected_start

    @property
    def confidence(self) -> float:
        """Alias: how stable the phase's similarity was, in [0, 1]."""
        return self.mean_similarity


@dataclass
class DetectionResult:
    """The full output of a detector run over one trace."""

    states: np.ndarray               # bool, True = P, one per element
    detected_phases: List[DetectedPhase]
    config: DetectorConfig
    similarity_values: Optional[np.ndarray] = None

    @property
    def num_elements(self) -> int:
        return int(self.states.size)

    def phases(self) -> List[Interval]:
        """Detected phase intervals as reported online (detection-time starts)."""
        return [(p.detected_start, p.end) for p in self.detected_phases]

    def corrected_phases(self) -> List[Interval]:
        """Phase intervals with anchor-corrected starts (Figure 8)."""
        return [(p.corrected_start, p.end) for p in self.detected_phases]

    def corrected_states(self) -> np.ndarray:
        """State array rebuilt from the anchor-corrected intervals."""
        return states_from_phases(self.corrected_phases(), self.num_elements)


@dataclass(frozen=True)
class PhaseDecision:
    """What one :meth:`DecisionEngine.step` call decided.

    The protocol is enter / exit / continue plus the optional statistic
    the decision actually used: ``similarity`` carries the windowed
    families' similarity value or a changepoint family's stability
    statistic — ``None`` while the engine is still warming up (windows
    filling, baseline estimating).  Callers that record the statistic
    must use this field instead of re-querying the engine: the decision
    may have mutated the engine (window resize, candidate reset), so a
    recomputed value would differ from the one the decision saw.
    """

    state: PhaseState
    similarity: Optional[float]
    entered: bool = False
    closed: Optional[DetectedPhase] = None

    @property
    def statistic(self) -> Optional[float]:
        """Family-neutral alias for :attr:`similarity`."""
        return self.similarity

    @property
    def kind(self) -> str:
        """``"enter"``, ``"exit"``, or ``"continue"``."""
        if self.entered:
            return "enter"
        if self.closed is not None:
            return "exit"
        return "continue"


class StepOutcome(PhaseDecision):
    """The windowed runtime's decision (its similarity is the statistic).

    Kept as a distinct name for the reference-path callers
    (:class:`~repro.core.detector.PhaseDetector` and the equivalence
    tests); structurally identical to :class:`PhaseDecision`.
    """


class CheckpointError(ValueError):
    """Raised for malformed, unsupported, or impossible checkpoints."""


class PhaseTracker:
    """The single home of per-phase bookkeeping and boundary events.

    Consumes the engines' decisions: an *enter* decision opens a phase
    (detection-time and anchor-corrected starts), an *exit* decision
    closes it into a :class:`DetectedPhase` record, and both emit the
    ``phase_enter``/``phase_exit`` observability events.  Every
    :class:`DecisionEngine` — and nothing outside this module — drives
    it.
    """

    __slots__ = ("observer", "phases", "open_detected", "open_corrected")

    def __init__(self, observer=None) -> None:
        self.observer = observer
        self.phases: List[DetectedPhase] = []
        self.open_detected = -1
        self.open_corrected = -1

    @property
    def open(self) -> bool:
        """True while a phase is open (entered but not yet closed)."""
        return self.open_detected >= 0

    def enter(self, step: int, detected_start: int, anchor_abs: int) -> None:
        """Open a phase detected at ``detected_start`` (anchor at ``anchor_abs``)."""
        corrected = anchor_abs if anchor_abs < detected_start else detected_start
        self.open_detected = detected_start
        self.open_corrected = corrected
        if self.observer is not None:
            self.observer.emit(
                {
                    "ev": "phase_enter",
                    "step": step,
                    "detected_start": detected_start,
                    "corrected_start": corrected,
                    "anchor": anchor_abs,
                }
            )

    def exit(self, step: int, end: int, mean_similarity: float) -> DetectedPhase:
        """Close the open phase at ``end``; record and return it."""
        phase = DetectedPhase(
            self.open_detected, self.open_corrected, end, mean_similarity
        )
        self.phases.append(phase)
        self.open_detected = -1
        self.open_corrected = -1
        if self.observer is not None:
            self.observer.emit(
                {
                    "ev": "phase_exit",
                    "step": step,
                    "detected_start": phase.detected_start,
                    "corrected_start": phase.corrected_start,
                    "end": end,
                    "mean_similarity": mean_similarity,
                }
            )
        return phase


class DecisionEngine:
    """Abstract online phase detector: a stream of decisions over groups.

    A family implements :meth:`step` (consume one ``skipFactor`` group,
    return a :class:`PhaseDecision`) on top of the shared machinery the
    base class provides:

    - ``tracker`` — the :class:`PhaseTracker` to call on enter/exit;
    - phase statistics — :meth:`_phase_stats_reset` on enter and
      :meth:`_phase_stats_update` per in-phase step feed the closed
      phase's ``mean_similarity``;
    - :meth:`advance` / :meth:`advance_flat` — the chunked drivers the
      bank and streaming fronts use, with the per-chunk
      ``runtime.advance_seconds`` metrics histogram;
    - :meth:`run` — the whole-trace driver with ``run_begin`` /
      ``run_end`` observability events;
    - :meth:`checkpoint` / :meth:`restore` — the versioned family
      schema (v2); a family only implements :meth:`_engine_state` and
      :meth:`_restore_engine_state` for its own serializable state.

    The windowed :class:`~repro.core.runtime.DetectorRuntime` overrides
    most of these with its optimized fused/kernel paths and its v1
    checkpoint schema — both bit-identical to their pre-refactor
    behavior.
    """

    #: Registry name of this engine's family (see :mod:`repro.comparators`).
    family: ClassVar[str] = ""

    def __init__(self, config: DetectorConfig, observer=None, metrics=None) -> None:
        self.config = config
        self.state = PhaseState.TRANSITION
        self.tracker = PhaseTracker(observer)
        self._observer = observer
        self.metrics = metrics
        self._consumed = 0
        self._phase_total = 0.0
        self._phase_count = 0

    # -- observer plumbing -----------------------------------------------------

    @property
    def observer(self):
        return self._observer

    @observer.setter
    def observer(self, value) -> None:
        self._observer = value
        self.tracker.observer = value

    # -- derived views ---------------------------------------------------------

    @property
    def consumed(self) -> int:
        """Total profile elements consumed since the start of the stream."""
        return self._consumed

    @property
    def phases(self) -> List[DetectedPhase]:
        """Phases closed so far (the open phase, if any, is not included)."""
        return self.tracker.phases

    def fused_capable(self) -> bool:
        """True when :meth:`advance` has an optimized inline path.

        Only the windowed runtime has one; the kernel eligibility
        checks in :mod:`repro.core.kernels` gate on this first, so
        engines without window models are never probed further.
        """
        return False

    def kernel_path(self, kernels: Optional[bool] = None) -> str:
        """Which whole-trace kernel path drives this engine.

        ``"vectorized"``, ``"dense"``, or ``"legacy"`` — the single
        dispatch rule (:func:`repro.core.kernels.kernel_path`) shared by
        the runtime's solo :meth:`run` and the bank's member partition,
        so the two fronts can never disagree on routing.  Non-window
        families (``fused_capable()`` is False) always report
        ``"legacy"``; ``kernels=None`` consults ``REPRO_KERNELS``.
        """
        from repro.core import kernels as kernel_mod

        return kernel_mod.kernel_path(self, kernels)

    # -- the per-step contract -------------------------------------------------

    def step(self, elements: Sequence[int]) -> PhaseDecision:
        """Consume one ``skipFactor`` group; decide enter/exit/continue."""
        raise NotImplementedError

    # -- phase statistics (feed the closed phase's mean_similarity) ------------

    def _phase_stats_reset(self, value: float) -> None:
        self._phase_total = value
        self._phase_count = 1

    def _phase_stats_update(self, value: float) -> None:
        self._phase_total += value
        self._phase_count += 1

    def _phase_stats_clear(self) -> None:
        self._phase_total = 0.0
        self._phase_count = 0

    def _close(self, end: int) -> DetectedPhase:
        mean = (
            self._phase_total / self._phase_count if self._phase_count else 0.0
        )
        return self.tracker.exit(self.consumed, end, mean)

    def finish(self, total_elements: int) -> List[DetectedPhase]:
        """Close any phase still open at end of stream; return all phases."""
        if self.state.is_phase():
            self._close(total_elements)
            self.state = PhaseState.TRANSITION
        return list(self.tracker.phases)

    # -- chunked driving (the bank / streaming entry points) -------------------

    def advance(
        self, groups: Sequence[Sequence[int]], states: bytearray, base: int
    ) -> None:
        """Advance over pre-chunked ``skipFactor`` groups.

        ``states`` must already hold zero bytes for every element in
        ``groups`` starting at offset ``base``; in-phase groups are
        marked with ``\\x01``.

        When a ``metrics`` registry is attached the chunk's wall time
        lands in the ``runtime.advance_seconds`` histogram — one
        observation per chunk, nothing per element.
        """
        metrics = self.metrics
        started = time.perf_counter() if metrics is not None else 0.0
        self._advance_groups(groups, states, base)
        if metrics is not None:
            metrics.histogram("runtime.advance_seconds").observe(
                time.perf_counter() - started
            )

    def _advance_groups(
        self, groups: Sequence[Sequence[int]], states: bytearray, base: int
    ) -> None:
        offset = base
        for group in groups:
            decision = self.step(group)
            group_len = len(group)
            if decision.state.is_phase():
                states[offset : offset + group_len] = b"\x01" * group_len
            offset += group_len

    def advance_flat(
        self, elements: Sequence[int], states: bytearray, base: int
    ) -> None:
        """Advance over single-element groups (``skipFactor == 1``).

        Semantically identical to :meth:`advance` with every element
        wrapped in its own group, but takes the flat element list the
        bank's skip-1 lanes share — no per-element group lists.
        """
        metrics = self.metrics
        started = time.perf_counter() if metrics is not None else 0.0
        self._advance_elements(elements, states, base)
        if metrics is not None:
            metrics.histogram("runtime.advance_seconds").observe(
                time.perf_counter() - started
            )

    def _advance_elements(
        self, elements: Sequence[int], states: bytearray, base: int
    ) -> None:
        offset = base
        for element in elements:
            decision = self.step((element,))
            if decision.state.is_phase():
                states[offset] = 1
            offset += 1

    # -- whole-trace driving ---------------------------------------------------

    def run(
        self,
        trace: BranchTrace,
        record_similarity: bool = False,
        fused: Optional[bool] = None,
        kernels: Optional[bool] = None,
    ) -> DetectionResult:
        """Run this engine over a whole trace from its current state.

        The generic driver loops :meth:`step`; ``fused``/``kernels``
        exist for signature compatibility with the windowed runtime's
        optimized paths and are ignored here.  ``record_similarity``
        collects the per-step decision statistic.
        """
        data = trace.array
        total = int(data.size)
        skip = self.config.skip_factor
        observer = self._observer
        if observer is not None:
            observer.emit(
                {
                    "ev": "run_begin",
                    "step": 0,
                    "trace": trace.name,
                    "elements": total,
                    "config": self.config.describe(),
                }
            )
        states = np.zeros(total, dtype=bool)
        similarities = np.full(total, np.nan) if record_similarity else None
        elements = data.tolist()
        for start in range(0, total, skip):
            group = elements[start : start + skip]
            decision = self.step(group)
            group_len = len(group)
            if decision.state.is_phase():
                states[start : start + group_len] = True
            if similarities is not None and decision.similarity is not None:
                similarities[start : start + group_len] = decision.similarity
        phases = self.finish(self.consumed)
        if observer is not None:
            observer.emit(
                {
                    "ev": "run_end",
                    "step": total,
                    "phases": len(phases),
                    "elements": total,
                }
            )
        return DetectionResult(
            states=states,
            detected_phases=phases,
            config=self.config,
            similarity_values=similarities,
        )

    # -- checkpointing (family schema, v2) -------------------------------------

    def _engine_state(self) -> Dict[str, object]:
        """This family's serializable state (JSON-safe, exact floats)."""
        raise CheckpointError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def _restore_engine_state(self, payload: Dict[str, object]) -> None:
        """Rebuild this family's state from :meth:`_engine_state` output."""
        raise CheckpointError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def checkpoint(self) -> Dict[str, object]:
        """Serialize the full engine state as a JSON-safe dict (schema v2).

        JSON round-trips Python floats exactly (``repr`` shortest-form),
        so :meth:`restore` resumes with bit-identical continuation —
        same states, same phases, same event stream as an uninterrupted
        run.
        """
        tracker = self.tracker
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION_FAMILY,
            "family": self.family,
            "config": self.config.to_dict(),
            "consumed": self.consumed,
            "state": self.state.value,
            "engine": self._engine_state(),
            "stats": {
                "count": self._phase_count,
                "total": self._phase_total,
            },
            "open_phase": (
                [tracker.open_detected, tracker.open_corrected]
                if tracker.open
                else None
            ),
            "phases": [
                [p.detected_start, p.corrected_start, p.end, p.mean_similarity]
                for p in tracker.phases
            ],
        }

    @classmethod
    def restore(
        cls, data: Dict[str, object], observer=None, metrics=None
    ) -> "DecisionEngine":
        """Rebuild an engine from a :meth:`checkpoint` dict (schema v2)."""
        validate_checkpoint(data)
        if data.get("version") != CHECKPOINT_VERSION_FAMILY:
            raise CheckpointError(
                f"{cls.__name__} reads family checkpoints "
                f"(version {CHECKPOINT_VERSION_FAMILY}), "
                f"got version {data.get('version')!r}"
            )
        family = data.get("family")
        if family != cls.family:
            raise CheckpointError(
                f"checkpoint family {family!r} does not match {cls.family!r}"
            )
        config = DetectorConfig.from_dict(data["config"])  # type: ignore[arg-type]
        engine = cls(config, observer=observer, metrics=metrics)
        engine._restore_engine_state(data["engine"])  # type: ignore[arg-type]
        engine._consumed = int(data["consumed"])  # type: ignore[arg-type]
        engine.state = PhaseState(data["state"])
        stats: Dict[str, object] = data["stats"]  # type: ignore[assignment]
        engine._phase_count = int(stats["count"])  # type: ignore[arg-type]
        engine._phase_total = float(stats["total"])  # type: ignore[arg-type]
        tracker = engine.tracker
        open_phase = data.get("open_phase")
        if open_phase is not None:
            tracker.open_detected = int(open_phase[0])  # type: ignore[index]
            tracker.open_corrected = int(open_phase[1])  # type: ignore[index]
        tracker.phases = [
            DetectedPhase(int(p[0]), int(p[1]), int(p[2]), float(p[3]))
            for p in data["phases"]  # type: ignore[union-attr]
        ]
        return engine


def validate_checkpoint(data: Dict[str, object]) -> None:
    """Check a checkpoint dict's envelope; raise :class:`CheckpointError`.

    Accepts the windowed schema (v1) and the family schema (v2, which
    adds the ``family`` tag and the opaque ``engine`` payload).
    Unknown versions are rejected outright — a newer schema may encode
    state this code cannot faithfully resume.
    """
    if not isinstance(data, dict):
        raise CheckpointError(f"checkpoint must be a dict, got {type(data).__name__}")
    if data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a detector checkpoint (format={data.get('format')!r})"
        )
    version = data.get("version")
    if version == CHECKPOINT_VERSION:
        required = ("config", "consumed", "state", "filled", "growing",
                    "cw", "tw", "stats", "phases")
    elif version == CHECKPOINT_VERSION_FAMILY:
        if not isinstance(data.get("family"), str) or not data["family"]:
            raise CheckpointError(
                "version-2 checkpoint missing its family tag"
            )
        required = ("config", "consumed", "state", "engine", "stats", "phases")
    else:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads versions {CHECKPOINT_VERSION} "
            f"and {CHECKPOINT_VERSION_FAMILY})"
        )
    missing = [field for field in required if field not in data]
    if missing:
        raise CheckpointError(f"checkpoint missing fields {missing}")


def build_engine(
    config: DetectorConfig,
    observer=None,
    metrics=None,
    model=None,
    analyzer=None,
) -> DecisionEngine:
    """Build the engine ``config.family`` names, via the family registry.

    The windowed family (the default) builds a
    :class:`~repro.core.runtime.DetectorRuntime` directly — including
    the optional custom ``model``/``analyzer`` components, which only
    the windowed framework defines.  Every other family dispatches
    through :func:`repro.comparators.engine_family`.
    """
    family = getattr(config, "family", WINDOWED_FAMILY)
    if family == WINDOWED_FAMILY:
        from repro.core.runtime import DetectorRuntime

        return DetectorRuntime(
            config,
            observer=observer,
            model=model,
            analyzer=analyzer,
            metrics=metrics,
        )
    if model is not None or analyzer is not None:
        raise ValueError(
            "custom model/analyzer components require the windowed family, "
            f"got family={family!r}"
        )
    from repro.comparators import engine_family

    return engine_family(family).build(config, observer=observer, metrics=metrics)


def restore_engine(
    data: Dict[str, object], observer=None, metrics=None
) -> DecisionEngine:
    """Rebuild an engine from any supported checkpoint schema.

    v1 checkpoints are the windowed grid's schema; v2 checkpoints carry
    a ``family`` tag resolved through the registry.
    """
    validate_checkpoint(data)
    if data.get("version") == CHECKPOINT_VERSION:
        from repro.core.runtime import DetectorRuntime

        return DetectorRuntime.restore(data, observer=observer, metrics=metrics)
    family = str(data["family"])
    from repro.comparators import engine_family

    return engine_family(family).restore(data, observer=observer, metrics=metrics)
