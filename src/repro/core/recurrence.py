"""Recurring-phase detection — the paper's first future-work direction.

Section 7: *"we will extend our framework to instantiate algorithms
that detect phases that repeat themselves. Such an enhancement would
allow a dynamic optimization system to record the efficacy of a
phase-based optimization at the end of the phase and determine whether
to employ the same optimization when the phase reoccurs."*

This module implements that extension on top of the detector:

- when a phase ends, its **signature** is taken from the elements the
  (Adaptive) trailing window accumulated over the phase — exactly the
  "signature of the entire phase" role Section 5 ascribes to the
  Adaptive TW;
- a :class:`PhaseRegistry` matches new signatures against known ones
  with the same unweighted set similarity the models use, assigning a
  stable **phase id** to recurrences;
- :class:`RecurringPhaseDetector` wraps a detector configuration and
  produces, per run, the phase intervals labelled with their ids, so a
  client can look up what it learned the last time the phase occurred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.detector import DetectedPhase
from repro.core.models import build_model
from repro.core.analyzers import build_analyzer
from repro.core.state import PhaseState
from repro.profiles.trace import BranchTrace

#: Default similarity a signature must reach to count as a recurrence.
DEFAULT_MATCH_THRESHOLD = 0.5


@dataclass(frozen=True)
class PhaseSignature:
    """The distinct-element working set a phase exercised."""

    elements: FrozenSet[int]

    def similarity(self, other: "PhaseSignature") -> float:
        """Asymmetric unweighted similarity: |self ∩ other| / |self|.

        Mirrors the framework's unweighted model (the current signature
        plays the CW role; the registered one the TW role).
        """
        if not self.elements:
            return 1.0 if not other.elements else 0.0
        return len(self.elements & other.elements) / len(self.elements)

    def __len__(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class RecurringPhase:
    """A detected phase labelled with its recurrence identity."""

    phase: DetectedPhase
    phase_id: int
    is_recurrence: bool
    match_similarity: float


class PhaseRegistry:
    """Known phase signatures, matched by working-set similarity.

    The registry keeps one signature per phase id; a match *updates* the
    stored signature to the union of what has been seen (phases drift a
    little between occurrences).
    """

    def __init__(self, match_threshold: float = DEFAULT_MATCH_THRESHOLD) -> None:
        if not 0.0 <= match_threshold <= 1.0:
            raise ValueError(f"match_threshold must be in [0, 1], got {match_threshold}")
        self.match_threshold = match_threshold
        self._signatures: Dict[int, PhaseSignature] = {}
        self._occurrences: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def occurrences(self, phase_id: int) -> int:
        """How many times phase ``phase_id`` has been observed."""
        return self._occurrences.get(phase_id, 0)

    def signature(self, phase_id: int) -> PhaseSignature:
        """The (unioned) signature stored for ``phase_id``."""
        return self._signatures[phase_id]

    def observe(self, signature: PhaseSignature) -> Tuple[int, bool, float]:
        """Match ``signature`` against the registry; register if novel.

        Returns ``(phase_id, is_recurrence, similarity)`` where
        ``similarity`` is against the best-matching known signature
        (0.0 when the registry was empty).
        """
        best_id: Optional[int] = None
        best_similarity = 0.0
        for known_id, known in self._signatures.items():
            value = signature.similarity(known)
            if value > best_similarity:
                best_similarity = value
                best_id = known_id
        if best_id is not None and best_similarity >= self.match_threshold:
            merged = PhaseSignature(
                self._signatures[best_id].elements | signature.elements
            )
            self._signatures[best_id] = merged
            self._occurrences[best_id] += 1
            return best_id, True, best_similarity
        new_id = len(self._signatures)
        self._signatures[new_id] = signature
        self._occurrences[new_id] = 1
        return new_id, False, best_similarity


@dataclass
class RecurrenceResult:
    """Output of a recurring-phase detection run."""

    phases: List[RecurringPhase]
    registry: PhaseRegistry

    def num_distinct_phases(self) -> int:
        """How many distinct phase identities the run exhibited."""
        return len(self.registry)

    def recurrences(self) -> List[RecurringPhase]:
        """The phases that matched a previously seen signature."""
        return [p for p in self.phases if p.is_recurrence]


class RecurringPhaseDetector:
    """An online detector that also labels phases with recurrence ids.

    Runs the Figure 3 loop with an Adaptive TW (required: the TW is the
    phase signature) and consults a :class:`PhaseRegistry` at every
    phase end.
    """

    def __init__(
        self,
        config: DetectorConfig,
        registry: Optional[PhaseRegistry] = None,
        match_threshold: float = DEFAULT_MATCH_THRESHOLD,
    ) -> None:
        if config.trailing is not TrailingPolicy.ADAPTIVE:
            raise ValueError(
                "recurring-phase detection requires the Adaptive TW policy "
                "(the trailing window is the phase signature)"
            )
        self.config = config
        self.registry = registry if registry is not None else PhaseRegistry(match_threshold)

    def run(self, trace: BranchTrace) -> RecurrenceResult:
        """Detect phases in ``trace`` and label recurrences."""
        model = build_model(self.config)
        analyzer = build_analyzer(self.config)
        state = PhaseState.TRANSITION
        skip = self.config.skip_factor
        data = trace.array
        total = int(data.size)

        phases: List[RecurringPhase] = []
        open_start: Optional[Tuple[int, int]] = None

        def close_phase(end: int) -> None:
            nonlocal open_start
            if open_start is None:
                return
            detected_start, corrected_start = open_start
            signature = PhaseSignature(
                frozenset(model.tw_counts) | frozenset(model.cw_counts)
            )
            phase_id, recurred, similarity = self.registry.observe(signature)
            stats = analyzer.stats
            mean = stats.total / stats.count if stats.count else 0.0
            phases.append(
                RecurringPhase(
                    phase=DetectedPhase(detected_start, corrected_start, end, mean),
                    phase_id=phase_id,
                    is_recurrence=recurred,
                    match_similarity=similarity,
                )
            )
            open_start = None

        for start in range(0, total, skip):
            group = data[start : start + skip].tolist()
            model.push(group)
            if not model.filled:
                new_state = PhaseState.TRANSITION
                similarity = None
            else:
                similarity = model.similarity()
                new_state = analyzer.process_value(similarity, state)

            if state.is_transition() and new_state.is_phase():
                anchor_abs = model.anchor_and_resize(
                    self.config.anchor, self.config.resize, adaptive=True
                )
                analyzer.reset_stats(similarity if similarity is not None else 0.0)
                detected_start = model.consumed - len(group)
                open_start = (detected_start, min(anchor_abs, detected_start))
            elif state.is_phase() and new_state.is_transition():
                # Signature must be read *before* the windows flush.
                close_phase(model.consumed - len(group))
                model.clear_and_seed(group)
                analyzer.clear()
            elif state.is_phase() and similarity is not None:
                analyzer.update_stats(similarity)
            state = new_state

        if state.is_phase():
            close_phase(total)
        return RecurrenceResult(phases=phases, registry=self.registry)
