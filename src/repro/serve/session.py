"""One serving session: a detector lane with an elastic lifecycle.

A :class:`Session` wraps a
:class:`~repro.core.stream.StreamingDetector` — the chunk-buffering
front over the unified :class:`~repro.core.runtime.DetectorRuntime` —
and carries it through the serving state machine::

    open ──feed──> active ──park──> parked
                     ^                 │
                     │feed        feed │ (rehydrate)
                     │                 v
                   active <──feed── rehydrated
                     │
                   close/kill
                     v
                   closed

Parking serializes the detector through the versioned ``checkpoint()``
schema (v1, see ``docs/formats.md``) to a spool file and drops the
in-memory state; the next event rehydrates it with **bit-identical
continuation** — the event stream the client sees is byte-for-byte the
stream of an uninterrupted run.  That property is what lets one worker
hold far more sessions than fit in RAM: the
:class:`~repro.serve.server.PhaseServer` parks cold sessions under an
LRU/memory-pressure policy and this class makes the round-trip exact.

Phase boundary events flow out through a :class:`PhaseEventObserver`
attached to the runtime — by default only ``phase_enter`` and
``phase_exit`` (the serving payload); ``events="all"`` forwards the
full per-step taxonomy.
"""

from __future__ import annotations

import json
import time
from enum import Enum
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.core.config import DetectorConfig
from repro.core.stream import StreamingDetector
from repro.serve.protocol import validate_sid

__all__ = [
    "PHASE_EVENT_KINDS",
    "PhaseEventObserver",
    "Session",
    "SessionError",
    "SessionState",
]

#: The event types served to clients by default: the phase boundaries.
PHASE_EVENT_KINDS: Tuple[str, ...] = ("phase_enter", "phase_exit")


class SessionState(str, Enum):
    """Where a session is in its lifecycle (see module docstring)."""

    OPEN = "open"                # created, no events yet
    ACTIVE = "active"            # hydrated and fed
    PARKED = "parked"            # checkpointed to spool, no memory state
    REHYDRATED = "rehydrated"    # restored from spool, not yet fed again
    CLOSED = "closed"            # finished (or killed) — terminal


class SessionError(ValueError):
    """Raised for operations a session's state does not allow."""


class PhaseEventObserver:
    """Observer that forwards a subset of detector events to a callback.

    ``kinds=None`` forwards everything; the default serving subset is
    :data:`PHASE_EVENT_KINDS`.  The callback is synchronous and runs
    inside the detector's feed path, so it must only buffer.
    """

    __slots__ = ("on_event", "kinds")

    def __init__(
        self,
        on_event: Callable[[Dict[str, object]], None],
        kinds: Optional[Iterable[str]] = PHASE_EVENT_KINDS,
    ) -> None:
        self.on_event = on_event
        self.kinds = frozenset(kinds) if kinds is not None else None

    def emit(self, event: Dict[str, object]) -> None:
        if self.kinds is None or event["ev"] in self.kinds:
            self.on_event(event)

    def close(self) -> None:
        pass


class Session:
    """One client session: sid + config + elastic detector lane.

    Args:
        sid: the session id (validated; it names the spool file).
        config: the detector parameterization for this session.
        spool_dir: directory for park checkpoints.
        on_event: ``(sid, event)`` callback for served detector events.
        events: ``"phase"`` (default) serves only phase boundaries;
            ``"all"`` serves the full event taxonomy.
        metrics: optional metrics registry shared with the server; it
            rides down to the detector runtime so per-chunk advance
            times land in the ``runtime.advance_seconds`` histogram.
    """

    def __init__(
        self,
        sid: str,
        config: DetectorConfig,
        spool_dir: Path,
        on_event: Callable[[str, Dict[str, object]], None],
        events: str = "phase",
        metrics=None,
    ) -> None:
        self.sid = validate_sid(sid)
        self.config = config
        self.spool_dir = Path(spool_dir)
        self.on_event = on_event
        self.metrics = metrics
        if events not in ("phase", "all"):
            raise ValueError(f"events must be 'phase' or 'all', got {events!r}")
        self._kinds = PHASE_EVENT_KINDS if events == "phase" else None
        self._observer = PhaseEventObserver(self._forward, self._kinds)
        self._detector: Optional[StreamingDetector] = StreamingDetector(
            config, observer=self._observer, metrics=metrics
        )
        self.state = SessionState.OPEN
        self.killed = False
        self.last_active = time.monotonic()
        # Lifetime counters (the manifest record).
        self.events_in = 0
        self.chunks_in = 0
        self.events_out = 0
        self.parks = 0
        self.rehydrations = 0
        self.phases = 0

    # -- event plumbing --------------------------------------------------------

    def _forward(self, event: Dict[str, object]) -> None:
        self.events_out += 1
        if event["ev"] == "phase_exit":
            self.phases += 1
        self.on_event(self.sid, event)

    # -- state views -----------------------------------------------------------

    @property
    def hydrated(self) -> bool:
        """True while the detector state is resident in memory."""
        return self._detector is not None

    @property
    def closed(self) -> bool:
        return self.state is SessionState.CLOSED

    @property
    def spool_path(self) -> Path:
        return self.spool_dir / f"{self.sid}.ckpt.json"

    def idle_seconds(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.last_active

    # -- the lifecycle ---------------------------------------------------------

    def feed(self, elements: Sequence[int]) -> None:
        """Consume one chunk of profile elements (rehydrating if parked)."""
        if self.closed:
            raise SessionError(f"session {self.sid} is closed")
        if self._detector is None:
            self.rehydrate()
        self._detector.feed(elements)
        self.events_in += len(elements)
        self.chunks_in += 1
        self.state = SessionState.ACTIVE
        self.last_active = time.monotonic()

    def park(self) -> bool:
        """Checkpoint to the spool and drop the in-memory detector.

        Returns ``False`` (a no-op) when there is nothing to park — the
        session is already parked or closed.
        """
        if self._detector is None or self.closed:
            return False
        data = self._detector.checkpoint()
        path = self.spool_path
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(data, separators=(",", ":")) + "\n",
                       encoding="utf-8")
        tmp.replace(path)
        self._detector = None
        self.state = SessionState.PARKED
        self.parks += 1
        return True

    def rehydrate(self) -> None:
        """Restore the detector from the spool, bit-identically."""
        if self.closed:
            raise SessionError(f"session {self.sid} is closed")
        if self._detector is not None:
            return
        data = json.loads(self.spool_path.read_text(encoding="utf-8"))
        self._detector = StreamingDetector.restore(
            data, observer=self._observer, metrics=self.metrics
        )
        self.state = SessionState.REHYDRATED
        self.rehydrations += 1
        self.last_active = time.monotonic()

    def close(self) -> Dict[str, object]:
        """Finish the stream (flushing any partial step) and summarize.

        A parked session is rehydrated first so its final phase — if one
        is still open — closes and emits exactly as an uninterrupted run
        would.
        """
        if self.closed:
            raise SessionError(f"session {self.sid} is already closed")
        if self._detector is None:
            self.rehydrate()
        result = self._detector.finish()
        summary: Dict[str, object] = {
            "elements": self.events_in,
            "phases": len(result.detected_phases),
        }
        self._detector = None
        self.state = SessionState.CLOSED
        self.spool_path.unlink(missing_ok=True)
        return summary

    def kill(self) -> None:
        """Terminate without finishing (a dropped connection, a drain kill).

        The open phase, if any, never closes — exactly what a crashed
        online client would observe.  The manifest record keeps the
        pre-kill state under ``state_at_end`` and flags ``killed``.
        """
        if self.closed:
            return
        self._state_at_kill = self.state
        self.killed = True
        self._detector = None
        self.state = SessionState.CLOSED
        self.spool_path.unlink(missing_ok=True)

    # -- accounting ------------------------------------------------------------

    def record(self) -> Dict[str, object]:
        """This session's manifest record (JSON-safe)."""
        state_at_end = getattr(self, "_state_at_kill", self.state)
        return {
            "sid": self.sid,
            "state": self.state.value,
            "state_at_end": state_at_end.value,
            "killed": self.killed,
            "config": self.config.describe(),
            "events_in": self.events_in,
            "chunks_in": self.chunks_in,
            "events_out": self.events_out,
            "phases": self.phases,
            "parks": self.parks,
            "rehydrations": self.rehydrations,
        }
