"""Streaming phase-detection service.

The paper's setting is *online*: the detector decides P/T while the
program runs.  :mod:`repro.serve` is the deployment shape of that
contract — a long-running asyncio server that multiplexes many
concurrent trace-event sessions, routes each one to its own
:class:`~repro.core.stream.StreamingDetector` lane (the chunked front
over the unified :class:`~repro.core.runtime.DetectorRuntime`), and
pushes phase boundary events — in the :mod:`repro.obs` event schema —
back to the client as they are detected.

Layers, bottom up:

- :mod:`repro.serve.protocol` — the newline-delimited JSON wire
  protocol and its validation;
- :mod:`repro.serve.session` — one session's lifecycle (open → active
  → parked → rehydrated → closed) around the versioned detector
  checkpoint, with park/rehydrate to a disk spool;
- :mod:`repro.serve.server` — :class:`PhaseServer`: bounded per-session
  queues with backpressure, LRU elastic eviction of cold sessions,
  idle parking, graceful drain, a serve-run manifest, and the TCP
  front end (the same engine also drives purely in-process);
- :mod:`repro.serve.client` — :class:`ServeClient`, the asyncio wire
  client;
- :mod:`repro.serve.loadgen` — the seeded load generator behind
  ``repro serve-bench`` and the throughput row in
  ``benchmarks/check_regression.py``.

The serving guarantee is bit-identity: the phase event stream a session
receives over the wire is byte-for-byte the stream an offline
:func:`~repro.core.engine.run_detector` call over the same elements
emits — including sessions that were parked to disk and rehydrated
mid-trace.  See ``docs/serving.md``.
"""

from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    LoadResult,
    SessionSpec,
    run_load,
    serve_bench,
    suite_session_specs,
    synthetic_session_specs,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    validate_client_message,
)
from repro.serve.server import PhaseServer
from repro.serve.session import Session, SessionError, SessionState

__all__ = [
    "LoadResult",
    "PROTOCOL_VERSION",
    "PhaseServer",
    "ProtocolError",
    "ServeClient",
    "Session",
    "SessionError",
    "SessionSpec",
    "SessionState",
    "decode_message",
    "encode_message",
    "run_load",
    "serve_bench",
    "suite_session_specs",
    "synthetic_session_specs",
    "validate_client_message",
]
