"""The serving wire protocol: newline-delimited JSON messages.

One TCP connection carries any number of *sessions* (session
multiplexing): every message names its session with a ``sid``, so a
client can interleave traffic for thousands of detectors over one
socket.  Each line is one compact JSON object; the full message
catalog, framing rules, and limits are documented in
``docs/serving.md``.

Client → server operations (``op`` field):

- ``open``    — ``{"op": "open", "sid", "config": {DetectorConfig}}``
- ``events``  — ``{"op": "events", "sid", "elements": [int, ...]}``
- ``close``   — ``{"op": "close", "sid"}``
- ``ping``    — ``{"op": "ping"}``
- ``stats``   — ``{"op": "stats"}`` (protocol ≥ 2): live telemetry
- ``healthz`` — ``{"op": "healthz"}`` (protocol ≥ 2): liveness + drain

Server → client operations:

- ``opened`` — ``{"op": "opened", "sid", "protocol": 2}``
- ``event``  — ``{"op": "event", "sid", "event": {...}}`` where
  ``event`` is a :mod:`repro.obs` schema event (``phase_enter`` /
  ``phase_exit`` by default) exactly as the detector emitted it;
- ``closed`` — ``{"op": "closed", "sid", "elements", "phases"}``
- ``error``  — ``{"op": "error", "sid" | null, "error": str}``
- ``pong``   — ``{"op": "pong"}``
- ``stats``  — ``{"op": "stats", "protocol", "uptime", "sessions",
  "metrics", "flight"}`` — the current metrics snapshot plus the
  flight-recorder ring tail (empty when no recorder runs);
- ``healthz`` — ``{"op": "healthz", "status", "draining", "sessions",
  "resident", "parked", "uptime"}``

Version 2 is a superset of version 1: every v1 message is valid and
means the same thing, so v1 clients interoperate unchanged (they just
never ask for ``stats``/``healthz``).

Session ids are restricted to ``[A-Za-z0-9._-]`` (64 chars max, no
leading dot) — they name spool files on the server, so the character
set is a security boundary, not a style choice.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Union

__all__ = [
    "MAX_ELEMENTS_PER_MESSAGE",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "closed_message",
    "error_message",
    "event_message",
    "healthz_message",
    "opened_message",
    "stats_message",
    "validate_client_message",
    "validate_sid",
]

#: Version of the wire protocol (bump on any incompatible change).
#: v2 added the ``stats`` and ``healthz`` verbs; v1 traffic is a strict
#: subset and keeps working.
PROTOCOL_VERSION = 2

#: Longest accepted line, in bytes (also the asyncio reader limit).
MAX_LINE_BYTES = 1 << 22

#: Most elements one ``events`` message may carry.
MAX_ELEMENTS_PER_MESSAGE = 1 << 16

#: Valid session ids: filesystem-safe, no leading dot, bounded length.
SID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")

#: Client operations and their required payload fields.
CLIENT_OPS = {
    "open": ("sid", "config"),
    "events": ("sid", "elements"),
    "close": ("sid",),
    "ping": (),
    "stats": (),
    "healthz": (),
}


class ProtocolError(ValueError):
    """Raised for malformed or out-of-contract wire messages."""


def validate_sid(sid: object) -> str:
    """Check a session id; return it. Raise :class:`ProtocolError`.

    The sid names a spool file on the server, so anything outside the
    ``[A-Za-z0-9._-]`` alphabet (or with a leading dot) is rejected
    before it ever reaches a path join.
    """
    if not isinstance(sid, str) or not SID_PATTERN.fullmatch(sid):
        raise ProtocolError(f"invalid session id {sid!r}")
    return sid


def encode_message(message: Dict[str, object]) -> bytes:
    """One message as a compact JSON line (UTF-8, trailing newline)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: Union[bytes, str]) -> Dict[str, object]:
    """Parse one wire line; raise :class:`ProtocolError` if malformed."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"line is not UTF-8: {error}") from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"line is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    return message


def validate_client_message(message: Dict[str, object]) -> str:
    """Check a client message's shape; return its ``op``.

    Raises :class:`ProtocolError` naming the first violation: unknown
    op, missing field, bad sid, or an ``elements`` payload that is not
    a bounded list of integers.
    """
    op = message.get("op")
    if op not in CLIENT_OPS:
        raise ProtocolError(f"unknown op {op!r}")
    for field in CLIENT_OPS[op]:
        if field not in message:
            raise ProtocolError(f"{op} message missing field {field!r}")
    if "sid" in CLIENT_OPS[op]:
        validate_sid(message["sid"])
    if op == "open" and not isinstance(message["config"], dict):
        raise ProtocolError("open message 'config' must be an object")
    if op == "events":
        elements = message["elements"]
        if not isinstance(elements, list):
            raise ProtocolError("events message 'elements' must be a list")
        if len(elements) > MAX_ELEMENTS_PER_MESSAGE:
            raise ProtocolError(
                f"events message carries {len(elements)} elements "
                f"(limit {MAX_ELEMENTS_PER_MESSAGE})"
            )
        for value in elements:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(
                    f"events message element {value!r} is not an integer"
                )
    return op  # type: ignore[return-value]


# -- server-side message builders ---------------------------------------------


def opened_message(sid: str) -> Dict[str, object]:
    return {"op": "opened", "sid": sid, "protocol": PROTOCOL_VERSION}


def event_message(sid: str, event: Dict[str, object]) -> Dict[str, object]:
    return {"op": "event", "sid": sid, "event": event}


def closed_message(sid: str, elements: int, phases: int) -> Dict[str, object]:
    return {"op": "closed", "sid": sid, "elements": elements, "phases": phases}


def error_message(sid: Optional[str], error: str) -> Dict[str, object]:
    return {"op": "error", "sid": sid, "error": error}


def stats_message(
    uptime: float,
    sessions: Dict[str, int],
    metrics: Dict[str, object],
    flight: List[Dict[str, object]],
) -> Dict[str, object]:
    """The ``stats`` reply: snapshot + flight-recorder ring tail."""
    return {
        "op": "stats",
        "protocol": PROTOCOL_VERSION,
        "uptime": round(uptime, 6),
        "sessions": sessions,
        "metrics": metrics,
        "flight": flight,
    }


def healthz_message(
    draining: bool,
    sessions: int,
    resident: int,
    parked: int,
    uptime: float,
) -> Dict[str, object]:
    """The ``healthz`` reply: liveness, drain state, session census."""
    return {
        "op": "healthz",
        "status": "draining" if draining else "ok",
        "draining": draining,
        "sessions": sessions,
        "resident": resident,
        "parked": parked,
        "uptime": round(uptime, 6),
    }


def encode_events(sid: str, events: List[Dict[str, object]]) -> bytes:
    """Encode a batch of detector events as consecutive wire lines."""
    return b"".join(encode_message(event_message(sid, event)) for event in events)
