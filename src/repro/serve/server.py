"""The streaming phase-detection server.

:class:`PhaseServer` multiplexes many concurrent trace-event sessions
over one asyncio event loop.  Each session gets:

- a bounded :class:`asyncio.Queue` — the **backpressure** boundary: a
  producer (`feed`, or the TCP reader) blocks when the queue is full,
  which for a socket client means the server simply stops reading, and
  TCP flow control pushes back to the sender.  Events are never dropped
  and never reordered;
- a worker task that drains the queue, drives the session's
  :class:`~repro.core.stream.StreamingDetector`, and flushes served
  events to the session's transport.

Elastic eviction: at most ``max_resident`` sessions keep detector state
in memory.  Hydrating one more parks the least-recently-active resident
session to the disk spool through the versioned checkpoint schema; the
parked session's next event rehydrates it bit-identically.  An optional
idle sweeper parks sessions that have gone quiet, whatever the resident
count.  Both policies are invisible in the served event stream — only
latency changes.

The same engine serves two transports:

- **in-process** — :meth:`open_session` / :meth:`feed` /
  :meth:`close_session` with an ``on_event`` callback (what the load
  generator and the tests drive);
- **TCP** — :meth:`start` accepts newline-delimited JSON connections
  speaking :mod:`repro.serve.protocol`, any number of sessions per
  connection.

Shutdown is a graceful drain: :meth:`drain` stops intake, lets every
queue empty, parks still-open sessions (so a future worker could resume
them), kills what cannot park, and writes a ``serve-run`` manifest with
one record per session plus the server's metrics — see
``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import logging
import tempfile
import time
from collections import OrderedDict
from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import DetectorConfig
from repro.obs.manifest import environment_info, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import FlightRecorder
from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.serve.session import Session, SessionError, SessionState

__all__ = ["PhaseServer", "SERVE_MANIFEST_KIND"]

logger = logging.getLogger("repro.serve")

SERVE_MANIFEST_KIND = "serve-run"

#: Default bound of each session's inbound chunk queue.
DEFAULT_QUEUE_SIZE = 8

#: Wire-config defaults: every ``DetectorConfig`` field except the
#: required ``cw_size``, so clients may send partial config dicts.
#: ``wire_defaults`` (unlike ``to_dict``) always includes the family
#: fields, so a client can open e.g. a ``"family": "newma"`` session.
_CONFIG_DEFAULTS = {
    key: value
    for key, value in DetectorConfig.wire_defaults().items()
    if key != "cw_size"
}


def _config_from_wire(data: Dict[str, object]) -> DetectorConfig:
    """Parse an ``open`` message's config, filling omitted fields with
    the :class:`DetectorConfig` defaults; unknown keys are an error."""
    if not isinstance(data, dict):
        raise TypeError("config must be an object")
    unknown = set(data) - set(_CONFIG_DEFAULTS) - {"cw_size"}
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    return DetectorConfig.from_dict({**_CONFIG_DEFAULTS, **data})


class _Lane:
    """One session's serving machinery: queue, worker, transport hooks."""

    __slots__ = ("session", "queue", "worker", "on_event", "flush", "out",
                 "failure")

    def __init__(self, session: Session, queue_size: int) -> None:
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.worker: Optional[asyncio.Task] = None
        self.on_event: Optional[Callable[[str, Dict[str, object]], None]] = None
        self.flush: Optional[Callable[[], "asyncio.Future"]] = None
        self.out: List[bytes] = []
        self.failure: Optional[str] = None


class PhaseServer:
    """A multiplexing, elastically evicting phase-detection server.

    Args:
        spool_dir: where parked session checkpoints (and the final
            manifest) live.  Defaults to a private temporary directory
            that lives as long as the server object.
        max_resident: most sessions allowed to keep detector state in
            memory at once; the LRU excess parks to the spool.
        queue_size: per-session inbound queue bound (chunks, not
            elements) — the backpressure knob.
        idle_timeout: park sessions idle longer than this many seconds
            (``None`` disables the sweeper).
        events: ``"phase"`` serves phase boundaries only (the wire
            default); ``"all"`` serves the full event taxonomy.
        sample_latency: record per-chunk service latencies (seconds from
            enqueue to processed) in :attr:`latency_samples`.
        flight_record: spool interval metrics samples to this JSONL
            flight-record file (``docs/formats.md#flight-record-jsonl``).
        flight_interval: seconds between flight-recorder samples; set it
            (or ``flight_record``) to enable the recorder — the ``stats``
            verb then serves the ring-buffer tail.
        tracer: an optional :class:`repro.obs.trace.Tracer`; when set,
            session lifecycle steps (open/feed/park/rehydrate/close)
            record spans.  ``None`` (the default) costs one branch.
    """

    def __init__(
        self,
        spool_dir: Optional[Path] = None,
        max_resident: int = 1024,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        idle_timeout: Optional[float] = None,
        idle_poll: float = 0.05,
        events: str = "phase",
        name: str = "serve",
        sample_latency: bool = False,
        flight_record: Optional[Path] = None,
        flight_interval: Optional[float] = None,
        tracer=None,
    ) -> None:
        if max_resident < 1:
            raise ValueError("max_resident must be at least 1")
        if queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        self._tmp = None
        if spool_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            spool_dir = Path(self._tmp.name)
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.max_resident = max_resident
        self.queue_size = queue_size
        self.idle_timeout = idle_timeout
        self.idle_poll = idle_poll
        self.events = events
        self.name = name
        self.metrics = MetricsRegistry()
        self.latency_samples: List[float] = [] if sample_latency else None  # type: ignore[assignment]
        self.tracer = tracer
        self.flight: Optional[FlightRecorder] = None
        if flight_record is not None or flight_interval is not None:
            self.flight = FlightRecorder(
                self.metrics,
                interval=flight_interval if flight_interval is not None else 1.0,
                spool_path=flight_record,
            )
        self._lanes: "OrderedDict[str, _Lane]" = OrderedDict()
        self._records: List[Dict[str, object]] = []  # finished sessions
        self._resident: "OrderedDict[str, Session]" = OrderedDict()
        self._draining = False
        self._started = time.perf_counter()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._flight_task: Optional[asyncio.Task] = None
        self._connections: set = set()

    def _span(self, name: str, **attrs):
        """A lifecycle span when a tracer is attached, else a no-op —
        the serve-side form of the zero-cost-when-off rule."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    # -- session bookkeeping ---------------------------------------------------

    @property
    def session_count(self) -> int:
        """Sessions currently open (not yet closed or killed)."""
        return len(self._lanes)

    @property
    def resident_count(self) -> int:
        """Sessions whose detector state is currently in memory."""
        return len(self._resident)

    @property
    def parked_count(self) -> int:
        """Open sessions currently checkpointed to the spool."""
        return sum(
            1 for lane in self._lanes.values()
            if lane.session.state is SessionState.PARKED
        )

    def _park(self, session: Session) -> bool:
        """Park one session, with the counter and (optional) span."""
        with self._span("serve.park", sid=session.sid):
            parked = session.park()
        if parked:
            self.metrics.counter("serve.sessions_parked").inc()
        return parked

    def _hydrate(self, session: Session) -> None:
        """Make ``session`` resident, parking LRU sessions over the cap.

        Runs synchronously on the event loop between awaits, so no other
        session can be mid-feed while residency changes hands.
        """
        sid = session.sid
        if sid in self._resident:
            self._resident.move_to_end(sid)
            return
        while len(self._resident) >= self.max_resident:
            cold_sid, cold = next(iter(self._resident.items()))
            del self._resident[cold_sid]
            self._park(cold)
        if not session.hydrated:
            with self._span("serve.rehydrate", sid=sid), \
                    self.metrics.time_histogram("serve.rehydrate_seconds"):
                session.rehydrate()
            self.metrics.counter("serve.sessions_rehydrated").inc()
        self._resident[sid] = session
        high_water = self.metrics.gauge("serve.resident_high_water")
        if len(self._resident) > high_water.value:
            high_water.set(len(self._resident))

    def _discard(self, session: Session) -> None:
        self._resident.pop(session.sid, None)

    def _finish_lane(self, lane: _Lane) -> None:
        self._discard(lane.session)
        self._records.append(lane.session.record())
        self._lanes.pop(lane.session.sid, None)

    # -- the in-process API ----------------------------------------------------

    async def open_session(
        self,
        sid: str,
        config: DetectorConfig,
        on_event: Optional[Callable[[str, Dict[str, object]], None]] = None,
        flush: Optional[Callable[[], "asyncio.Future"]] = None,
    ) -> Session:
        """Open a session and start its worker.

        ``on_event(sid, event)`` receives each served detector event
        synchronously from the worker; ``flush`` (a coroutine function)
        is awaited after every processed chunk — the TCP front end uses
        it to write-and-drain buffered wire lines.
        """
        if self._draining:
            raise SessionError("server is draining; not accepting sessions")
        if sid in self._lanes:
            raise SessionError(f"session {sid} is already open")
        session = Session(
            sid,
            config,
            self.spool_dir,
            on_event=on_event if on_event is not None else (lambda _sid, _ev: None),
            events=self.events,
            metrics=self.metrics,
        )
        lane = _Lane(session, self.queue_size)
        lane.on_event = on_event
        lane.flush = flush
        self._lanes[sid] = lane
        with self._span("serve.open", sid=sid):
            self._hydrate(session)
        self.metrics.counter("serve.sessions_opened").inc()
        lane.worker = asyncio.ensure_future(self._worker(lane))
        self._ensure_sweeper()
        self._ensure_flight()
        return session

    async def feed(self, sid: str, elements: Sequence[int]) -> None:
        """Enqueue one chunk for ``sid`` (blocks when its queue is full)."""
        lane = self._lane(sid)
        await lane.queue.put(("events", list(elements), time.perf_counter()))

    async def close_session(self, sid: str) -> Dict[str, object]:
        """Finish ``sid`` after its queued chunks; return its summary."""
        lane = self._lane(sid)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await lane.queue.put(("close", future, time.perf_counter()))
        return await future

    def _lane(self, sid: str) -> _Lane:
        lane = self._lanes.get(sid)
        if lane is None:
            raise SessionError(f"no open session {sid}")
        if lane.failure is not None:
            raise SessionError(f"session {sid} failed: {lane.failure}")
        return lane

    async def _worker(self, lane: _Lane) -> None:
        """Drain one session's queue until it closes or fails."""
        session = lane.session
        queue = lane.queue
        while True:
            kind, payload, enqueued = await queue.get()
            try:
                if kind == "events":
                    self._hydrate(session)
                    with self._span("serve.feed", sid=session.sid,
                                    elements=len(payload)), \
                            self.metrics.time_histogram("serve.feed_seconds"):
                        session.feed(payload)
                    self.metrics.counter("serve.events_in").inc(len(payload))
                    self.metrics.counter("serve.chunks_in").inc()
                    if self.latency_samples is not None:
                        self.latency_samples.append(
                            time.perf_counter() - enqueued
                        )
                    if lane.flush is not None:
                        await lane.flush()
                else:  # close
                    self._hydrate(session)
                    with self._span("serve.close", sid=session.sid):
                        summary = session.close()
                    self.metrics.counter("serve.sessions_closed").inc()
                    self._finish_lane(lane)
                    if lane.flush is not None:
                        await lane.flush()
                    payload.set_result(summary)
                    return
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - reported to the client
                lane.failure = str(error)
                logger.warning("session %s failed: %s", session.sid, error)
                session.kill()
                self.metrics.counter("serve.sessions_failed").inc()
                self._finish_lane(lane)
                if kind == "close" and not payload.done():
                    payload.set_exception(SessionError(lane.failure))
                # Discard anything still queued so queue.join() (drain)
                # cannot wait on chunks nobody will ever process.
                while not queue.empty():
                    dead_kind, dead_payload, _ = queue.get_nowait()
                    if dead_kind == "close" and not dead_payload.done():
                        dead_payload.set_exception(SessionError(lane.failure))
                    queue.task_done()
                return
            finally:
                queue.task_done()

    def kill_session(self, sid: str) -> None:
        """Terminate a session immediately (dropped connection, abort).

        Pending queued chunks are discarded; the manifest records the
        session as killed in the state it was in.
        """
        lane = self._lanes.get(sid)
        if lane is None:
            return
        if lane.worker is not None:
            lane.worker.cancel()
        lane.session.kill()
        self.metrics.counter("serve.sessions_killed").inc()
        self._finish_lane(lane)

    # -- idle sweeping ---------------------------------------------------------

    def _ensure_sweeper(self) -> None:
        if self.idle_timeout is None:
            return
        if self._sweeper is None or self._sweeper.done():
            self._sweeper = asyncio.ensure_future(self._sweep_idle())

    async def _sweep_idle(self) -> None:
        while not self._draining:
            await asyncio.sleep(self.idle_poll)
            now = time.monotonic()
            for sid in list(self._resident):
                session = self._resident.get(sid)
                if session is None or session.closed:
                    continue
                lane = self._lanes.get(sid)
                busy = lane is not None and not lane.queue.empty()
                if not busy and session.idle_seconds(now) >= self.idle_timeout:
                    del self._resident[sid]
                    if self._park(session):
                        self.metrics.counter("serve.sessions_idle_parked").inc()

    # -- the flight recorder -----------------------------------------------------

    def _ensure_flight(self) -> None:
        if self.flight is None:
            return
        if self._flight_task is None or self._flight_task.done():
            self._flight_task = asyncio.ensure_future(self._flight_loop())

    async def _flight_loop(self) -> None:
        assert self.flight is not None
        while not self._draining:
            await asyncio.sleep(self.flight.interval)
            if self._draining:
                return
            self.flight.sample()

    # -- live telemetry ----------------------------------------------------------

    def stats_payload(self, tail: int = 12) -> Dict[str, object]:
        """The ``stats`` reply: census, snapshot, flight-record tail."""
        return protocol.stats_message(
            uptime=time.perf_counter() - self._started,
            sessions={
                "open": self.session_count,
                "resident": self.resident_count,
                "parked": self.parked_count,
            },
            metrics=self.metrics.snapshot(),
            flight=self.flight.tail(tail) if self.flight is not None else [],
        )

    def healthz_payload(self) -> Dict[str, object]:
        """The ``healthz`` reply: drain state + session census."""
        return protocol.healthz_message(
            draining=self._draining,
            sessions=self.session_count,
            resident=self.resident_count,
            parked=self.parked_count,
            uptime=time.perf_counter() - self._started,
        )

    # -- the TCP front end -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.AbstractServer:
        """Accept wire-protocol connections; returns the asyncio server.

        ``port=0`` binds an ephemeral port — read it back from
        ``server.sockets[0].getsockname()``.
        """
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port, limit=protocol.MAX_LINE_BYTES
        )
        self._ensure_sweeper()
        self._ensure_flight()
        return self._tcp_server

    @property
    def port(self) -> Optional[int]:
        if self._tcp_server is None or not self._tcp_server.sockets:
            return None
        return self._tcp_server.sockets[0].getsockname()[1]

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One NDJSON connection; any number of multiplexed sessions.

        Messages are processed strictly in arrival order.  ``feed``
        awaits the session queue, so a full queue stops this reader —
        that is the wire form of backpressure.
        """
        owned: List[str] = []
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode_message(
                        protocol.error_message(None, "line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode_message(line)
                    op = protocol.validate_client_message(message)
                except ProtocolError as error:
                    writer.write(protocol.encode_message(
                        protocol.error_message(None, str(error))))
                    await writer.drain()
                    break
                if not await self._dispatch(op, message, writer, owned):
                    break
        except (ConnectionResetError, asyncio.CancelledError):
            # A drain cancels open connections; exit cleanly so the
            # asyncio stream wrapper sees a finished task, not a
            # cancelled one.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            # A dropped connection kills its unfinished sessions; the
            # manifest records the state each one died in.  During a
            # graceful drain the server parks them instead.
            if not self._draining:
                for sid in owned:
                    if sid in self._lanes:
                        self.kill_session(sid)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self,
        op: str,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        owned: List[str],
    ) -> bool:
        """Apply one validated client message; False closes the connection."""
        if op == "ping":
            writer.write(protocol.encode_message({"op": "pong"}))
            await writer.drain()
            return True
        if op == "stats":
            writer.write(protocol.encode_message(self.stats_payload()))
            await writer.drain()
            return True
        if op == "healthz":
            writer.write(protocol.encode_message(self.healthz_payload()))
            await writer.drain()
            return True
        sid: str = message["sid"]  # type: ignore[assignment]
        if op == "open":
            try:
                config = _config_from_wire(message["config"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError) as error:
                writer.write(protocol.encode_message(
                    protocol.error_message(sid, f"bad config: {error}")))
                await writer.drain()
                return True
            lane_out: List[bytes] = []

            def on_event(session_id: str, event: Dict[str, object],
                         _out=lane_out) -> None:
                _out.append(protocol.encode_message(
                    protocol.event_message(session_id, event)))

            async def flush(_out=lane_out) -> None:
                if _out:
                    writer.write(b"".join(_out))
                    _out.clear()
                    await writer.drain()

            try:
                await self.open_session(sid, config, on_event=on_event,
                                        flush=flush)
            except (SessionError, ProtocolError, ValueError) as error:
                writer.write(protocol.encode_message(
                    protocol.error_message(sid, str(error))))
                await writer.drain()
                return True
            owned.append(sid)
            writer.write(protocol.encode_message(protocol.opened_message(sid)))
            await writer.drain()
            return True
        if sid not in self._lanes or sid not in owned:
            writer.write(protocol.encode_message(
                protocol.error_message(sid, f"no open session {sid}")))
            await writer.drain()
            return True
        if op == "events":
            try:
                await self.feed(sid, message["elements"])  # type: ignore[arg-type]
            except SessionError as error:
                writer.write(protocol.encode_message(
                    protocol.error_message(sid, str(error))))
                await writer.drain()
            return True
        # close
        try:
            summary = await self.close_session(sid)
        except SessionError as error:
            writer.write(protocol.encode_message(
                protocol.error_message(sid, str(error))))
            await writer.drain()
            return True
        owned.remove(sid)
        writer.write(protocol.encode_message(protocol.closed_message(
            sid, int(summary["elements"]), int(summary["phases"]))))
        await writer.drain()
        return True

    # -- shutdown --------------------------------------------------------------

    async def drain(self, manifest_path: Optional[Path] = None) -> Dict[str, object]:
        """Gracefully shut down: drain queues, park survivors, manifest.

        Stops accepting new sessions and connections, waits for every
        queued chunk to be processed, parks still-open sessions to the
        spool (they could be resumed by a future worker), and writes the
        ``serve-run`` manifest.  Returns the manifest dict.
        """
        self._draining = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._flight_task is not None:
            self._flight_task.cancel()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for lane in list(self._lanes.values()):
            await lane.queue.join()
        for sid, lane in list(self._lanes.items()):
            if lane.worker is not None:
                lane.worker.cancel()
            session = lane.session
            self._discard(session)
            if not session.closed:
                if session.hydrated or session.state is SessionState.PARKED:
                    self._park(session)
                else:
                    session.kill()
            self._records.append(session.record())
            del self._lanes[sid]
        if self.flight is not None:
            # One final sample so the spooled deltas sum to the final
            # counters exactly; then stop spooling.
            self.flight.close(final_sample=True)
        manifest = self.manifest()
        path = manifest_path if manifest_path is not None else (
            self.spool_dir / f"{self.name}.manifest.json"
        )
        write_manifest(manifest, path)
        return manifest

    def manifest(self) -> Dict[str, object]:
        """The ``serve-run`` manifest: per-session records + metrics."""
        from datetime import datetime, timezone

        records = list(self._records)
        records += [lane.session.record() for lane in self._lanes.values()]
        flight_record = (
            str(self.flight.spool_path)
            if self.flight is not None and self.flight.spool_path is not None
            else None
        )
        return {
            "version": 1,
            "kind": SERVE_MANIFEST_KIND,
            "flight_record": flight_record,
            "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "name": self.name,
            "elapsed_seconds": round(time.perf_counter() - self._started, 6),
            "max_resident": self.max_resident,
            "queue_size": self.queue_size,
            "idle_timeout": self.idle_timeout,
            "sessions": records,
            "metrics": self.metrics.snapshot(),
            "environment": environment_info(),
        }

    def close(self) -> None:
        """Release the private spool directory, if the server owns one."""
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
