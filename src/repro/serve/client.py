"""The asyncio wire client for the phase-detection service.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over one TCP connection and multiplexes any
number of sessions on it.  Served detector events arrive on a
background reader task and are either buffered per session
(:meth:`events_for`) or handed to a per-session callback.

The minimal round trip::

    client = await ServeClient.connect("127.0.0.1", port)
    await client.open("s1", DetectorConfig(cw_size=250, threshold=0.6))
    await client.send("s1", elements)            # repeat per chunk
    summary = await client.close_session("s1")   # {"elements": N, "phases": N}
    phase_events = client.events_for("s1")       # obs-schema dicts, in order
    await client.aclose()

See ``docs/serving.md`` for the full protocol and a worked example.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import DetectorConfig
from repro.serve import protocol
from repro.serve.protocol import ProtocolError

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An ``error`` message from the server, raised client-side."""


class ServeClient:
    """One multiplexed wire connection to a :class:`PhaseServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._events: Dict[str, List[Dict[str, object]]] = {}
        self._callbacks: Dict[str, Callable[[Dict[str, object]], None]] = {}
        self._opened: Dict[str, asyncio.Future] = {}
        self._closed: Dict[str, asyncio.Future] = {}
        self._errors: List[Dict[str, object]] = []
        self._pong: Optional[asyncio.Future] = None
        self._stats: Optional[asyncio.Future] = None
        self._healthz: Optional[asyncio.Future] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    # -- the session API -------------------------------------------------------

    async def open(
        self,
        sid: str,
        config: "DetectorConfig | Dict[str, object]",
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> None:
        """Open ``sid`` with ``config`` (a :class:`DetectorConfig` or the
        equivalent plain dict); waits for the server's ack."""
        protocol.validate_sid(sid)
        payload = config.to_dict() if isinstance(config, DetectorConfig) else dict(config)
        future = asyncio.get_running_loop().create_future()
        self._opened[sid] = future
        self._events.setdefault(sid, [])
        if on_event is not None:
            self._callbacks[sid] = on_event
        await self._send({"op": "open", "sid": sid, "config": payload})
        await future

    async def send(self, sid: str, elements: Sequence[int]) -> None:
        """Send one chunk of profile elements for ``sid``."""
        await self._send(
            {"op": "events", "sid": sid, "elements": [int(e) for e in elements]}
        )

    async def close_session(self, sid: str) -> Dict[str, object]:
        """End ``sid``'s stream; returns the server's summary."""
        future = asyncio.get_running_loop().create_future()
        self._closed[sid] = future
        await self._send({"op": "close", "sid": sid})
        return await future

    async def ping(self) -> None:
        self._pong = asyncio.get_running_loop().create_future()
        await self._send({"op": "ping"})
        await self._pong

    async def stats(self) -> Dict[str, object]:
        """Live telemetry (protocol ≥ 2): census, metrics snapshot, and
        the flight-recorder ring tail."""
        self._stats = asyncio.get_running_loop().create_future()
        await self._send({"op": "stats"})
        return await self._stats

    async def healthz(self) -> Dict[str, object]:
        """Liveness + drain state (protocol ≥ 2)."""
        self._healthz = asyncio.get_running_loop().create_future()
        await self._send({"op": "healthz"})
        return await self._healthz

    def events_for(self, sid: str) -> List[Dict[str, object]]:
        """Served detector events received for ``sid`` so far, in order."""
        return list(self._events.get(sid, []))

    @property
    def errors(self) -> List[Dict[str, object]]:
        """``error`` messages received (also raised on pending waits)."""
        return list(self._errors)

    # -- plumbing --------------------------------------------------------------

    async def _send(self, message: Dict[str, object]) -> None:
        self._writer.write(protocol.encode_message(message))
        await self._writer.drain()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                self._handle(protocol.decode_message(line))
        except (ConnectionResetError, ProtocolError, asyncio.CancelledError):
            pass
        finally:
            failure = ServeError("connection closed")
            for future in list(self._opened.values()) + list(self._closed.values()):
                if not future.done():
                    future.set_exception(failure)
            for pending in (self._pong, self._stats, self._healthz):
                if pending is not None and not pending.done():
                    pending.set_exception(failure)

    def _handle(self, message: Dict[str, object]) -> None:
        op = message.get("op")
        sid = message.get("sid")
        if op == "event":
            event: Dict[str, object] = message["event"]  # type: ignore[assignment]
            self._events.setdefault(str(sid), []).append(event)
            callback = self._callbacks.get(str(sid))
            if callback is not None:
                callback(event)
        elif op == "opened":
            future = self._opened.pop(str(sid), None)
            if future is not None and not future.done():
                future.set_result(message)
        elif op == "closed":
            future = self._closed.pop(str(sid), None)
            if future is not None and not future.done():
                future.set_result(
                    {"elements": message["elements"], "phases": message["phases"]}
                )
        elif op == "pong":
            if self._pong is not None and not self._pong.done():
                self._pong.set_result(None)
        elif op == "stats":
            if self._stats is not None and not self._stats.done():
                self._stats.set_result(message)
        elif op == "healthz":
            if self._healthz is not None and not self._healthz.done():
                self._healthz.set_result(message)
        elif op == "error":
            self._errors.append(message)
            error = ServeError(str(message.get("error")))
            for waits in (self._opened, self._closed):
                future = waits.pop(str(sid), None) if sid is not None else None
                if future is not None and not future.done():
                    future.set_exception(error)

    async def aclose(self) -> None:
        """Close the connection and stop the reader task."""
        self._reader_task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
