"""The detector event taxonomy and its schema.

Every instrumented component (the optimized engine, the reference
detector, the window bookkeeping) emits plain dict events.  An event
always carries:

- ``ev``   — the event type, one of :data:`EVENT_TYPES`;
- ``step`` — the number of profile elements consumed when it fired.

plus the type's payload fields.  The full taxonomy (and the meaning of
each field) is documented in ``docs/observability.md``; the
machine-checkable version lives in :data:`EVENT_TYPES` and is enforced
by :func:`validate_event`.

Events are deliberately *flat JSON-safe dicts* rather than dataclasses:
the hot path builds at most two small dicts per detector step when a
sink is attached and nothing at all when it isn't, and the JSONL sink
can serialize them without any conversion layer.

:func:`replay_phases` rebuilds the exact
:class:`~repro.core.detector.DetectedPhase` sequence of a run from its
event stream — the property the acceptance test for this subsystem
checks: an event trace is a faithful record of what the scorer saw.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = [
    "EVENT_TYPES",
    "EventSchemaError",
    "SCHEMA_VERSION",
    "replay_phases",
    "validate_event",
]

#: Version of the event schema (bump on any incompatible field change).
SCHEMA_VERSION = 1

#: Fields every event carries, whatever its type.
BASE_FIELDS: Dict[str, tuple] = {
    "ev": (str,),
    "step": (int,),
}

#: type name -> {payload field -> acceptable python types}.
#:
#: ``float`` fields accept ints too (JSON round-trips 1.0 as 1 when the
#: value is integral is *not* true for json.dumps, but detector
#: similarities can be exactly integral floats).
EVENT_TYPES: Dict[str, Dict[str, tuple]] = {
    # A detector run started.  trace: trace name; elements: trace
    # length; config: DetectorConfig.describe().
    "run_begin": {"trace": (str,), "elements": (int,), "config": (str,)},
    # The model produced a similarity value (emitted once per step once
    # the windows are full).  cw/tw: current window lengths.
    "similarity": {"value": (float, int), "cw": (int,), "tw": (int,)},
    # The analyzer mapped that value to a state.  state: "P" or "T";
    # bar: the effective threshold in force for this decision.
    "decision": {"state": (str,), "value": (float, int), "bar": (float, int)},
    # A phase was entered (T -> P edge).
    "phase_enter": {
        "detected_start": (int,),
        "corrected_start": (int,),
        "anchor": (int,),
    },
    # The Adaptive TW anchored and resized at phase entry.  anchor: the
    # in-TW anchor index; dropped: elements discarded from the TW's
    # left; moved: elements slid CW -> TW (Slide policy only).
    "tw_resize": {
        "anchor": (int,),
        "dropped": (int,),
        "moved": (int,),
        "policy": (str,),
    },
    # A phase ended (P -> T edge, or end of trace).  Carries the full
    # phase record so a trace replays without cross-event state.
    "phase_exit": {
        "detected_start": (int,),
        "corrected_start": (int,),
        "end": (int,),
        "mean_similarity": (float, int),
    },
    # Both windows were flushed and the CW reseeded (phase end).
    "window_flush": {"seeded": (int,)},
    # The run finished.
    "run_end": {"phases": (int,), "elements": (int,)},
}


class EventSchemaError(ValueError):
    """Raised when an event does not conform to :data:`EVENT_TYPES`."""


def validate_event(event: Mapping[str, object]) -> None:
    """Check one event against the schema; raise :class:`EventSchemaError`.

    Unknown extra fields are rejected too — the schema is the contract
    consumers parse against, so anything outside it is a bug.
    """
    for field, types in BASE_FIELDS.items():
        if field not in event:
            raise EventSchemaError(f"event missing required field {field!r}: {event!r}")
        if not isinstance(event[field], types) or isinstance(event[field], bool):
            raise EventSchemaError(
                f"event field {field!r} has type {type(event[field]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}: {event!r}"
            )
    kind = event["ev"]
    payload_schema = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if payload_schema is None:
        raise EventSchemaError(f"unknown event type {kind!r}: {event!r}")
    for field, types in payload_schema.items():
        if field not in event:
            raise EventSchemaError(f"{kind} event missing field {field!r}: {event!r}")
        value = event[field]
        if not isinstance(value, types) or isinstance(value, bool):
            raise EventSchemaError(
                f"{kind} event field {field!r} has type {type(value).__name__}: {event!r}"
            )
    allowed = set(BASE_FIELDS) | set(payload_schema)
    extra = set(event) - allowed
    if extra:
        raise EventSchemaError(f"{kind} event has undocumented fields {sorted(extra)}")


def replay_phases(events: Iterable[Mapping[str, object]]):
    """Reconstruct the run's detected phases from its event stream.

    Returns the same :class:`~repro.core.detector.DetectedPhase` list
    the run itself produced — ``phase_exit`` events carry the complete
    phase record, so replay needs no cross-event bookkeeping and
    tolerates a trace whose tail was torn after the last ``phase_exit``.
    """
    from repro.core.detector import DetectedPhase

    phases: List[DetectedPhase] = []
    for event in events:
        if event.get("ev") == "phase_exit":
            phases.append(
                DetectedPhase(
                    detected_start=int(event["detected_start"]),   # type: ignore[arg-type]
                    corrected_start=int(event["corrected_start"]), # type: ignore[arg-type]
                    end=int(event["end"]),                         # type: ignore[arg-type]
                    mean_similarity=float(event["mean_similarity"]),  # type: ignore[arg-type]
                )
            )
    return phases


def replay_transitions(
    events: Iterable[Mapping[str, object]]
) -> List[Tuple[int, str]]:
    """The (step, edge) sequence of phase transitions, in order.

    ``edge`` is ``"enter"`` or ``"exit"`` — the compact form of the
    state machine's observable behavior, useful for diffing two runs.
    """
    edges: List[Tuple[int, str]] = []
    for event in events:
        kind = event.get("ev")
        if kind == "phase_enter":
            edges.append((int(event["step"]), "enter"))  # type: ignore[arg-type]
        elif kind == "phase_exit":
            edges.append((int(event["step"]), "exit"))   # type: ignore[arg-type]
    return edges
