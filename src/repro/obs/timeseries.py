"""The flight recorder: metrics over time, not just at the end.

A :class:`FlightRecorder` snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` on a fixed interval into a
bounded in-memory ring buffer, computing per-interval counter deltas as
it goes — the raw material for rates (events/s, evictions/s) that a
single cumulative snapshot cannot answer.  Optionally every sample is
also spooled to a versioned JSONL *flight record* file
(``docs/formats.md#flight-record-jsonl``), flushed per line so the
on-disk tail is live while the process runs and survives a crash up to
the last complete sample.

The recorder is clock-driven but not clock-owning: :meth:`sample` takes
one sample *now*, and whoever owns the event loop decides the cadence
(:class:`~repro.serve.server.PhaseServer` runs an asyncio task;
tests call :meth:`sample` directly).  The first sample's deltas count
from zero and :meth:`close` takes a final sample by default, so the
summed ``deltas`` of a complete flight record equal the final counter
values exactly.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, os.PathLike]

__all__ = [
    "FLIGHT_RECORD_VERSION",
    "FlightRecorder",
    "FlightRecordError",
    "read_flight_record",
]

#: Version of the flight-record JSONL format (bump on shape changes).
FLIGHT_RECORD_VERSION = 1

#: Default ring-buffer capacity (samples kept in memory).
DEFAULT_CAPACITY = 600


class FlightRecordError(ValueError):
    """Raised when an on-disk flight record is malformed mid-file."""


class FlightRecorder:
    """Interval snapshots of a registry: ring buffer + JSONL spool.

    Args:
        registry: the registry to sample.
        interval: the *intended* seconds between samples — recorded in
            the header for readers; the actual cadence is whoever calls
            :meth:`sample`.
        capacity: ring-buffer bound (oldest samples fall off).
        spool_path: also append every sample to this JSONL file
            (``None`` keeps the record in memory only).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 1.0,
        capacity: int = DEFAULT_CAPACITY,
        spool_path: Optional[PathLike] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.registry = registry
        self.interval = interval
        self.capacity = capacity
        self.samples: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._sequence = 0
        self._started = time.perf_counter()
        self._last_uptime = 0.0
        self._previous_counters: Dict[str, int] = {}
        self.spool_path = Path(spool_path) if spool_path is not None else None
        self._handle = None
        if self.spool_path is not None:
            self.spool_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.spool_path.open("w", encoding="utf-8")
            self._write_line(self.header())

    def header(self) -> Dict[str, object]:
        """The flight record's first line: version + layout facts."""
        return {
            "flight_record": FLIGHT_RECORD_VERSION,
            "interval": self.interval,
            "capacity": self.capacity,
            "created": time.time(),
        }

    # -- sampling --------------------------------------------------------------

    def sample(self) -> Dict[str, object]:
        """Take one sample now; append it to the ring and the spool.

        Each sample carries the full cumulative snapshot plus the
        counter deltas since the previous sample (the first sample
        deltas from zero), so summed deltas across a complete record
        reproduce the final counters exactly.
        """
        snapshot = self.registry.snapshot()
        uptime = time.perf_counter() - self._started
        elapsed = uptime - self._last_uptime
        counters: Dict[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
        deltas = {}
        for name, value in counters.items():
            delta = int(value) - self._previous_counters.get(name, 0)
            if delta:
                deltas[name] = delta
        self._previous_counters = {name: int(v) for name, v in counters.items()}
        self._last_uptime = uptime
        self._sequence += 1
        sample = {
            "seq": self._sequence,
            "t": time.time(),
            "uptime": round(uptime, 6),
            "elapsed": round(elapsed, 6),
            "deltas": deltas,
            "snapshot": snapshot,
        }
        self.samples.append(sample)
        self._write_line(sample)
        return sample

    def tail(self, n: int) -> List[Dict[str, object]]:
        """The most recent ``n`` samples, oldest first."""
        if n <= 0:
            return []
        return list(self.samples)[-n:]

    @staticmethod
    def rates(sample: Dict[str, object]) -> Dict[str, float]:
        """Per-second rates for one sample's counter deltas."""
        elapsed = float(sample.get("elapsed", 0.0))  # type: ignore[arg-type]
        if elapsed <= 0:
            return {}
        deltas: Dict[str, int] = sample.get("deltas", {})  # type: ignore[assignment]
        return {name: delta / elapsed for name, delta in deltas.items()}

    # -- plumbing --------------------------------------------------------------

    def _write_line(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        # One flush per interval keeps the on-disk tail live and is far
        # off any hot path.
        self._handle.flush()

    def close(self, final_sample: bool = True) -> None:
        """Stop spooling; by default take one last sample first so the
        record's summed deltas match the final counters."""
        if final_sample:
            self.sample()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close(final_sample=False)


def read_flight_record(
    path: PathLike,
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load a flight record back: ``(header, samples)``.

    A torn *final* line (interrupted writer) is silently dropped, the
    same contract as :func:`repro.obs.bus.read_events`; undecodable
    content anywhere else raises :class:`FlightRecordError`, as does a
    missing or unsupported header.
    """
    path = Path(path)
    header: Optional[Dict[str, object]] = None
    samples: List[Dict[str, object]] = []
    pending: Optional[int] = None  # line number of an undecodable line
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending is not None:
                raise FlightRecordError(
                    f"{path}:{pending}: undecodable flight-record line"
                )
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                pending = number
                continue
            if not isinstance(record, dict):
                raise FlightRecordError(
                    f"{path}:{number}: record is not a JSON object"
                )
            if header is None:
                version = record.get("flight_record")
                if not isinstance(version, int):
                    raise FlightRecordError(
                        f"{path}:1: missing flight_record header"
                    )
                if version > FLIGHT_RECORD_VERSION:
                    raise FlightRecordError(
                        f"{path}: flight record version {version} is newer "
                        f"than supported version {FLIGHT_RECORD_VERSION}"
                    )
                header = record
            else:
                samples.append(record)
    if header is None:
        raise FlightRecordError(f"{path}: empty flight record")
    return header, samples
