"""Opt-in wall-time and memory profiling for sweep chunks.

The sweep's ``--profiling`` mode wraps each evaluated chunk in a
:class:`ChunkProfiler`, which samples wall time (monotonic) and — when
``tracemalloc`` is importable — the chunk's peak traced allocation.
Profiles ride back to the parent alongside the chunk's records and land
in the run manifest, so "which benchmark's grid points are slow or
memory-hungry" is answerable from the manifest alone.

``tracemalloc`` roughly doubles allocation cost while tracing, which is
why this is opt-in and never enabled by the default path; the profiler
restores tracing to its prior state on exit so it composes with an
outer trace (e.g. pytest's).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

try:  # pragma: no cover - tracemalloc ships with CPython
    import tracemalloc
except ImportError:  # pragma: no cover
    tracemalloc = None  # type: ignore[assignment]

__all__ = ["ChunkProfile", "ChunkProfiler"]


@dataclass(frozen=True)
class ChunkProfile:
    """One profiled block: label, wall time, and allocation peak."""

    label: str
    wall_seconds: float
    peak_bytes: Optional[int]     # None when tracemalloc was unavailable
    current_bytes: Optional[int]  # still-live traced bytes at exit

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "wall_seconds": self.wall_seconds,
            "peak_bytes": self.peak_bytes,
            "current_bytes": self.current_bytes,
        }


class ChunkProfiler:
    """Context manager sampling wall time and tracemalloc peaks.

    >>> with ChunkProfiler("db:chunk-3") as prof:
    ...     evaluate()
    >>> prof.profile.wall_seconds
    """

    def __init__(self, label: str, trace_memory: bool = True) -> None:
        self.label = label
        self.trace_memory = trace_memory and tracemalloc is not None
        self.profile: Optional[ChunkProfile] = None
        self._started = 0.0
        self._owns_trace = False

    def __enter__(self) -> "ChunkProfiler":
        if self.trace_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_trace = True
            elif hasattr(tracemalloc, "reset_peak"):
                tracemalloc.reset_peak()
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        wall = time.perf_counter() - self._started
        peak: Optional[int] = None
        current: Optional[int] = None
        if self.trace_memory and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            if self._owns_trace:
                tracemalloc.stop()
        self.profile = ChunkProfile(
            label=self.label,
            wall_seconds=wall,
            peak_bytes=peak,
            current_bytes=current,
        )
