"""Run manifests: what a sweep run did, written next to its cache.

Every ``Sweep.ensure`` writes (atomically, via rename) a JSON manifest
beside the record cache — ``sweep-<profile>.jsonl`` gets
``sweep-<profile>.manifest.json`` — recording:

- the configuration fingerprint (per-benchmark trace fingerprints plus
  a hash of the evaluated grid), so a manifest is checkable against the
  cache it describes;
- the environment (interpreter, platform, CPU count);
- how the run executed: jobs, elapsed wall time, records evaluated vs
  served from cache;
- per-worker accounting — one entry per worker process with its chunk,
  config and record counts, which must sum to the run's evaluated
  records (the invariant ``repro obs summary`` surfaces and the tests
  enforce);
- a metrics snapshot (see :mod:`repro.obs.metrics`) merged across all
  workers, and any chunk profiles from ``--profiling`` mode.

The format is versioned and documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, os.PathLike]

__all__ = [
    "MANIFEST_VERSION",
    "build_manifest",
    "diff_manifests",
    "environment_info",
    "load_manifest",
    "manifest_path_for",
    "summarize_manifest",
    "summarize_serve_manifest",
    "write_manifest",
]

MANIFEST_VERSION = 1


def environment_info() -> Dict[str, object]:
    """The host/interpreter facts a perf number is meaningless without."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def manifest_path_for(cache_path: PathLike) -> Path:
    """``<dir>/sweep-default.jsonl`` -> ``<dir>/sweep-default.manifest.json``."""
    cache_path = Path(cache_path)
    return cache_path.with_name(cache_path.stem + ".manifest.json")


def build_manifest(
    profile: str,
    benchmarks: List[str],
    fingerprints: Dict[str, str],
    grid_fingerprint: str,
    mpl_nominals: List[int],
    jobs: int,
    elapsed_seconds: float,
    records_evaluated: int,
    records_total: int,
    workers: List[Dict[str, object]],
    metrics: Dict[str, Dict[str, object]],
    chunk_profiles: Optional[List[Dict[str, object]]] = None,
    chunks: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble one run's manifest dict (see module docstring).

    ``chunks`` is the chunk-store accounting of a store-mode run
    (planned/reused/evaluated/external counts plus fold counters);
    omitted for legacy ordered-delivery runs.
    """
    manifest: Dict[str, object] = {
        "version": MANIFEST_VERSION,
        "kind": "sweep-run",
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "profile": profile,
        "benchmarks": list(benchmarks),
        "fingerprints": dict(fingerprints),
        "grid_fingerprint": grid_fingerprint,
        "mpl_nominals": list(mpl_nominals),
        "jobs": jobs,
        "elapsed_seconds": round(elapsed_seconds, 6),
        "records": {
            "evaluated": records_evaluated,
            "total": records_total,
        },
        "workers": list(workers),
        "metrics": metrics,
        "chunk_profiles": list(chunk_profiles or []),
        "environment": environment_info(),
    }
    if chunks is not None:
        manifest["chunks"] = dict(chunks)
    return manifest


def write_manifest(manifest: Dict[str, object], path: PathLike) -> Path:
    """Write ``manifest`` to ``path`` atomically (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n",
                   encoding="utf-8")
    tmp.replace(path)
    return path


def load_manifest(path: PathLike) -> Dict[str, object]:
    """Load a manifest, checking the version field."""
    path = Path(path)
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(manifest, dict) or "version" not in manifest:
        raise ValueError(f"{path}: not a run manifest")
    if int(manifest["version"]) > MANIFEST_VERSION:
        raise ValueError(
            f"{path}: manifest version {manifest['version']} is newer than "
            f"supported version {MANIFEST_VERSION}"
        )
    return manifest


def _fmt_bytes(n: Optional[object]) -> str:
    if not isinstance(n, (int, float)) or n is None:
        return "-"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"


def _metrics_sections(metrics: Dict[str, object], lines: List[str]) -> None:
    """Append the counter/timing/histogram sections shared by all kinds."""
    counters = metrics.get("counters", {})
    if counters:
        lines.append("  counters:")
        for name, value in counters.items():  # type: ignore[union-attr]
            lines.append(f"    {name} = {value}")
    timings = metrics.get("timings", {})
    if timings:
        lines.append("  timings:")
        for name, summary in timings.items():  # type: ignore[union-attr]
            count = summary.get("count", 0)
            total_s = float(summary.get("total", 0.0))
            mean = total_s / count if count else 0.0
            lines.append(
                f"    {name}: n={count} total={total_s:.3f}s mean={mean:.4f}s "
                f"min={float(summary.get('min', 0.0)):.4f}s "
                f"max={float(summary.get('max', 0.0)):.4f}s"
            )
    histograms = metrics.get("histograms", {})
    if histograms:
        from repro.obs.metrics import Histogram

        lines.append("  histograms:")
        for name, summary in histograms.items():  # type: ignore[union-attr]
            histogram = Histogram.from_dict(summary)
            p = histogram.percentiles()
            lines.append(
                f"    {name}: n={histogram.count} "
                f"p50={p['p50'] * 1e3:.3f}ms p95={p['p95'] * 1e3:.3f}ms "
                f"p99={p['p99'] * 1e3:.3f}ms max={histogram.maximum * 1e3:.3f}ms"
            )


def summarize_serve_manifest(manifest: Dict[str, object]) -> str:
    """Render a ``serve-run`` manifest: per-session table + metrics."""
    lines: List[str] = []
    env = manifest.get("environment", {})
    sessions: List[Dict[str, object]] = manifest.get("sessions", [])  # type: ignore[assignment]
    elapsed = float(manifest.get("elapsed_seconds", 0.0))
    lines.append(
        f"serve manifest: '{manifest.get('name')}' "
        f"(v{manifest.get('version')}, {manifest.get('created_at')})"
    )
    events_in = sum(int(s.get("events_in", 0)) for s in sessions)
    parks = sum(int(s.get("parks", 0)) for s in sessions)
    rehydrations = sum(int(s.get("rehydrations", 0)) for s in sessions)
    killed = sum(1 for s in sessions if s.get("killed"))
    rate = events_in / elapsed if elapsed > 0 else 0.0
    lines.append(
        f"  run:     {len(sessions)} sessions, {elapsed:.1f}s, "
        f"{events_in:,} events in ({rate:,.0f} ev/s), "
        f"{parks} parks / {rehydrations} rehydrations"
        + (f", {killed} killed" if killed else "")
    )
    lines.append(
        f"  limits:  max_resident={manifest.get('max_resident')}, "
        f"queue_size={manifest.get('queue_size')}, "
        f"idle_timeout={manifest.get('idle_timeout')}"
    )
    flight_record = manifest.get("flight_record")
    if flight_record:
        lines.append(f"  flight:  {flight_record}")
    lines.append(
        f"  host:    {env.get('implementation')} {env.get('python')} on "  # type: ignore[union-attr]
        f"{env.get('platform')} ({env.get('cpu_count')} cpus)"              # type: ignore[union-attr]
    )
    if sessions:
        lines.append("  sessions:")
        lines.append(
            "    sid              state     events_in  chunks  events_out"
            "  phases  parks  rehydr"
        )
        for record in sessions:
            flags = " killed" if record.get("killed") else ""
            lines.append(
                f"    {str(record.get('sid', '?')):<16} "
                f"{str(record.get('state_at_end', record.get('state', '?'))):<9} "
                f"{int(record.get('events_in', 0)):>9}  "
                f"{int(record.get('chunks_in', 0)):>6}  "
                f"{int(record.get('events_out', 0)):>10}  "
                f"{int(record.get('phases', 0)):>6}  "
                f"{int(record.get('parks', 0)):>5}  "
                f"{int(record.get('rehydrations', 0)):>6}{flags}"
            )
    _metrics_sections(manifest.get("metrics", {}), lines)  # type: ignore[arg-type]
    return "\n".join(lines)


def summarize_manifest(manifest: Dict[str, object]) -> str:
    """Render a manifest as the human-readable ``repro obs summary``.

    Dispatches on the manifest ``kind``: ``sweep-run`` manifests (the
    default) render the grid/worker view, ``serve-run`` manifests (see
    :meth:`repro.serve.server.PhaseServer.manifest`) render a
    per-session table.  Both end with the shared metrics sections,
    including percentile lines for any histogram snapshots.
    """
    if manifest.get("kind") == "serve-run":
        return summarize_serve_manifest(manifest)
    lines: List[str] = []
    records = manifest.get("records", {})
    env = manifest.get("environment", {})
    elapsed = float(manifest.get("elapsed_seconds", 0.0))
    evaluated = int(records.get("evaluated", 0))  # type: ignore[union-attr]
    total = int(records.get("total", 0))          # type: ignore[union-attr]
    lines.append(f"sweep manifest: profile '{manifest.get('profile')}' "
                 f"(v{manifest.get('version')}, {manifest.get('created_at')})")
    benchmarks = manifest.get("benchmarks", [])
    lines.append(
        f"  grid:    {len(benchmarks)} benchmarks x "            # type: ignore[arg-type]
        f"{len(manifest.get('mpl_nominals', []))} MPLs "          # type: ignore[arg-type]
        f"[grid {manifest.get('grid_fingerprint')}]"
    )
    rate = evaluated / elapsed if elapsed > 0 else 0.0
    lines.append(
        f"  run:     jobs={manifest.get('jobs')}, {elapsed:.1f}s, "
        f"{evaluated} records evaluated ({rate:.1f} rec/s), {total} total in cache"
    )
    chunks = manifest.get("chunks")
    if chunks:
        lines.append(
            f"  chunks:  {chunks.get('planned', 0)} planned = "         # type: ignore[union-attr]
            f"{chunks.get('evaluated', 0)} evaluated + "                 # type: ignore[union-attr]
            f"{chunks.get('reused', 0)} reused + "                       # type: ignore[union-attr]
            f"{chunks.get('external', 0)} external; "                    # type: ignore[union-attr]
            f"{chunks.get('folded', 0)} folded "                         # type: ignore[union-attr]
            f"({chunks.get('already_compacted', 0)} already compacted)"  # type: ignore[union-attr]
        )
    lines.append(
        f"  host:    {env.get('implementation')} {env.get('python')} on "  # type: ignore[union-attr]
        f"{env.get('platform')} ({env.get('cpu_count')} cpus)"              # type: ignore[union-attr]
    )
    workers = manifest.get("workers", [])
    if workers:
        lines.append("  workers:")
        worker_sum = 0
        for worker in workers:  # type: ignore[union-attr]
            worker_sum += int(worker.get("records", 0))
            lines.append(
                f"    pid {worker.get('pid')}: {worker.get('chunks')} chunks, "
                f"{worker.get('configs')} configs, {worker.get('records')} records, "
                f"{float(worker.get('wall_seconds', 0.0)):.1f}s busy"
            )
        balance = "account for" if worker_sum == evaluated else "DO NOT ACCOUNT FOR"
        lines.append(
            f"    -> worker records {balance} all {evaluated} evaluated records"
        )
    _metrics_sections(manifest.get("metrics", {}), lines)  # type: ignore[arg-type]
    profiles = manifest.get("chunk_profiles", [])
    if profiles:
        lines.append("  chunk profiles:")
        for prof in profiles:  # type: ignore[union-attr]
            lines.append(
                f"    {prof.get('label')}: {float(prof.get('wall_seconds', 0.0)):.3f}s, "
                f"peak {_fmt_bytes(prof.get('peak_bytes'))}"
            )
    return "\n".join(lines)


def diff_manifests(a: Dict[str, object], b: Dict[str, object]) -> str:
    """Render what changed between two run manifests (a -> b)."""
    lines: List[str] = [
        f"manifest diff: '{a.get('profile')}' {a.get('created_at')} -> "
        f"'{b.get('profile')}' {b.get('created_at')}"
    ]

    def row(label: str, old: object, new: object) -> None:
        if old != new:
            lines.append(f"  {label}: {old} -> {new}")

    row("profile", a.get("profile"), b.get("profile"))
    row("grid_fingerprint", a.get("grid_fingerprint"), b.get("grid_fingerprint"))
    row("jobs", a.get("jobs"), b.get("jobs"))
    a_rec = a.get("records", {})
    b_rec = b.get("records", {})
    row("records.evaluated", a_rec.get("evaluated"), b_rec.get("evaluated"))  # type: ignore[union-attr]
    row("records.total", a_rec.get("total"), b_rec.get("total"))              # type: ignore[union-attr]
    a_elapsed = float(a.get("elapsed_seconds", 0.0))
    b_elapsed = float(b.get("elapsed_seconds", 0.0))
    if a_elapsed and b_elapsed and a_elapsed != b_elapsed:
        change = (b_elapsed - a_elapsed) / a_elapsed * 100.0
        lines.append(
            f"  elapsed_seconds: {a_elapsed:.2f} -> {b_elapsed:.2f} ({change:+.1f}%)"
        )
    for key in ("python", "platform", "machine", "cpu_count"):
        row(f"environment.{key}",
            a.get("environment", {}).get(key),   # type: ignore[union-attr]
            b.get("environment", {}).get(key))   # type: ignore[union-attr]
    a_counters = a.get("metrics", {}).get("counters", {})  # type: ignore[union-attr]
    b_counters = b.get("metrics", {}).get("counters", {})  # type: ignore[union-attr]
    for name in sorted(set(a_counters) | set(b_counters)):
        old, new = a_counters.get(name, 0), b_counters.get(name, 0)
        if old != new:
            lines.append(f"  counter {name}: {old} -> {new}")
    a_bench = {f: v for f, v in a.get("fingerprints", {}).items()}  # type: ignore[union-attr]
    b_bench = {f: v for f, v in b.get("fingerprints", {}).items()}  # type: ignore[union-attr]
    for name in sorted(set(a_bench) | set(b_bench)):
        if a_bench.get(name) != b_bench.get(name):
            lines.append(
                f"  fingerprint {name}: {a_bench.get(name)} -> {b_bench.get(name)}"
            )
    if len(lines) == 1:
        lines.append("  (no differences)")
    return "\n".join(lines)
