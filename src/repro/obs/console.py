"""Terminal renderings of live serve telemetry.

Pure functions from protocol payloads (the ``stats`` / ``healthz``
replies of :mod:`repro.serve.protocol`) to text, shared by the
``repro serve-stats`` one-shot command and the polling ``repro obs top``
view — and testable without a socket for the same reason.

All latency figures come from :class:`~repro.obs.metrics.Histogram`
snapshots, so p50/p95/p99 are derivable from any single ``stats`` reply;
rates (events/s, evictions/s) come from the flight-recorder ring tail
embedded in the reply (per-interval counter deltas, see
:mod:`repro.obs.timeseries`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import Histogram
from repro.obs.timeseries import FlightRecorder

__all__ = ["render_healthz", "render_stats", "top_frame"]


def _fmt_seconds(value: float) -> str:
    """A latency in the most readable unit (µs / ms / s)."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _fmt_rate(value: float) -> str:
    if value >= 10_000:
        return f"{value / 1000:.1f}k/s"
    return f"{value:.1f}/s"


def _histogram_line(name: str, summary: Dict[str, object]) -> str:
    histogram = Histogram.from_dict(summary)
    p = histogram.percentiles()
    return (
        f"    {name}: n={histogram.count} "
        f"p50={_fmt_seconds(p['p50'])} p95={_fmt_seconds(p['p95'])} "
        f"p99={_fmt_seconds(p['p99'])} max={_fmt_seconds(histogram.maximum)}"
    )


def _latest_rates(flight: List[Dict[str, object]]) -> Dict[str, float]:
    """Per-second rates from the newest flight sample with activity."""
    for sample in reversed(flight):
        rates = FlightRecorder.rates(sample)
        if rates:
            return rates
    return {}


def render_stats(stats: Dict[str, object]) -> str:
    """The ``repro serve-stats`` rendering of one ``stats`` reply."""
    lines: List[str] = []
    sessions: Dict[str, object] = stats.get("sessions", {})  # type: ignore[assignment]
    lines.append(
        f"serve stats (protocol {stats.get('protocol')}, "
        f"uptime {float(stats.get('uptime', 0.0)):.1f}s)"
    )
    lines.append(
        f"  sessions: {sessions.get('open', 0)} open, "
        f"{sessions.get('resident', 0)} resident, "
        f"{sessions.get('parked', 0)} parked"
    )
    metrics: Dict[str, Dict[str, object]] = stats.get("metrics", {})  # type: ignore[assignment]
    counters = metrics.get("counters", {})
    if counters:
        lines.append("  counters:")
        for name, value in counters.items():
            lines.append(f"    {name} = {value}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("  latency histograms:")
        for name, summary in histograms.items():
            lines.append(_histogram_line(name, summary))  # type: ignore[arg-type]
    flight: List[Dict[str, object]] = stats.get("flight", [])  # type: ignore[assignment]
    if flight:
        rates = _latest_rates(flight)
        lines.append(
            f"  flight: {len(flight)} ring samples "
            f"(latest seq {flight[-1].get('seq')})"
        )
        for name, rate in sorted(rates.items()):
            lines.append(f"    {name}: {_fmt_rate(rate)}")
    return "\n".join(lines)


def render_healthz(healthz: Dict[str, object]) -> str:
    """The one-line ``healthz`` rendering."""
    return (
        f"health: {healthz.get('status')} "
        f"(sessions={healthz.get('sessions')}, "
        f"resident={healthz.get('resident')}, "
        f"parked={healthz.get('parked')}, "
        f"uptime {float(healthz.get('uptime', 0.0)):.1f}s)"
    )


def top_frame(stats: Dict[str, object]) -> str:
    """One frame of ``repro obs top``: the four load-bearing numbers.

    Sessions, events/s (from the newest flight-recorder delta), p99
    feed latency (from the ``serve.feed_seconds`` histogram snapshot),
    and evictions (parks) — plus a per-counter rate table when the
    flight recorder shows activity.
    """
    sessions: Dict[str, object] = stats.get("sessions", {})  # type: ignore[assignment]
    metrics: Dict[str, Dict[str, object]] = stats.get("metrics", {})  # type: ignore[assignment]
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    flight: List[Dict[str, object]] = stats.get("flight", [])  # type: ignore[assignment]
    rates = _latest_rates(flight)

    feed = histograms.get("serve.feed_seconds")
    p99 = "-"
    if feed is not None:
        p99 = _fmt_seconds(Histogram.from_dict(feed).quantile(0.99))  # type: ignore[arg-type]
    events_rate = rates.get("serve.events_in")
    lines = [
        f"uptime {float(stats.get('uptime', 0.0)):>7.1f}s | "
        f"sessions {sessions.get('open', 0)} "
        f"({sessions.get('resident', 0)} resident, "
        f"{sessions.get('parked', 0)} parked) | "
        f"events {_fmt_rate(events_rate) if events_rate is not None else '-'} | "
        f"feed p99 {p99} | "
        f"evictions {counters.get('serve.sessions_parked', 0)}"
    ]
    if rates:
        lines.append("  rates (last interval):")
        for name, rate in sorted(rates.items()):
            lines.append(f"    {name:<28} {_fmt_rate(rate)}")
    for name in ("serve.feed_seconds", "serve.rehydrate_seconds"):
        summary = histograms.get(name)
        if summary is not None:
            lines.append(_histogram_line(name, summary))  # type: ignore[arg-type]
    return "\n".join(lines)
