"""Lightweight span tracing with explicit context and a Chrome exporter.

A :class:`Span` is one timed region with a name, a trace id, its own
span id, and an optional parent span id — enough to reconstruct the
call tree of a run (sweep → bank evaluation → kernel selection; serve
session open → feed → park → rehydrate → close) without sampling or
globals.  Context is **explicit**: a :class:`Tracer` is passed down the
call path and parents are named by argument, never discovered through
thread-locals — the same discipline as the ``observer=`` parameter, and
for the same reason: when the tracer is ``None`` the instrumented code
pays one ``is not None`` branch and nothing else (the zero-cost-when-off
guarantee in ``docs/observability.md``).

Core code (:mod:`repro.core`) never imports this module; it receives
the tracer duck-typed through an optional parameter and only calls
``tracer.span(name, parent=..., **attrs)``.

Finished spans spool to JSONL (:meth:`Tracer.save` /
:func:`read_spans`) and export to the Chrome trace-event format
(:func:`chrome_trace`) so a run opens directly in ``chrome://tracing``
/ Perfetto as a flamegraph.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

PathLike = Union[str, os.PathLike]

__all__ = [
    "SPAN_TRACE_VERSION",
    "Span",
    "SpanTraceError",
    "Tracer",
    "chrome_trace",
    "read_spans",
]

#: Version of the span-trace JSONL format (bump on shape changes).
SPAN_TRACE_VERSION = 1

#: Default cap on retained spans (a runaway-feed backstop; the tracer
#: counts what it drops).
DEFAULT_MAX_SPANS = 100_000

_TRACE_IDS = itertools.count(1)


class SpanTraceError(ValueError):
    """Raised when an on-disk span trace is malformed."""


class Span:
    """One timed region.  Times are seconds from the tracer's epoch."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end",
                 "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": round(self.start, 9),
            "end": round(self.end if self.end is not None else self.start, 9),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Collects spans for one run; explicitly passed, never ambient.

    Usage::

        tracer = Tracer()
        with tracer.span("sweep", profile="quick") as root:
            with tracer.span("sweep.job", parent=root, spec=name) as job:
                evaluate(..., tracer=tracer, parent=job)
        tracer.save("sweep.spans.jsonl")

    Finished spans land in :attr:`spans` in completion order (children
    before parents, as a post-order walk).  The retained-span cap keeps
    a long-running server bounded: beyond ``max_spans`` new spans are
    timed but dropped, counted in :attr:`dropped`.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.trace_id = trace_id or f"t{os.getpid():x}.{next(_TRACE_IDS)}"
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Iterator[Span]:
        """Open a span; it closes (and is retained) when the block exits."""
        span = Span(
            name,
            self.trace_id,
            next(self._ids),
            parent.span_id if parent is not None else None,
            time.perf_counter() - self._epoch,
            attrs,
        )
        try:
            yield span
        finally:
            span.end = time.perf_counter() - self._epoch
            with self._lock:
                if len(self.spans) < self.max_spans:
                    self.spans.append(span)
                else:
                    self.dropped += 1

    # -- persistence -----------------------------------------------------------

    def header(self) -> Dict[str, object]:
        return {
            "span_trace": SPAN_TRACE_VERSION,
            "trace_id": self.trace_id,
            "dropped": self.dropped,
        }

    def save(self, path: PathLike) -> Path:
        """Write the spans as JSONL: one header line, one span per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = list(self.spans)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.header(), separators=(",", ":")) + "\n")
            for span in spans:
                handle.write(
                    json.dumps(span.to_dict(), separators=(",", ":")) + "\n"
                )
        return path


def read_spans(path: PathLike) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load a span trace back: ``(header, span dicts)``.

    A torn final line is dropped (interrupted writer); anything else
    undecodable raises :class:`SpanTraceError`.
    """
    path = Path(path)
    header: Optional[Dict[str, object]] = None
    spans: List[Dict[str, object]] = []
    pending: Optional[int] = None
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending is not None:
                raise SpanTraceError(f"{path}:{pending}: undecodable span line")
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                pending = number
                continue
            if not isinstance(record, dict):
                raise SpanTraceError(f"{path}:{number}: span is not an object")
            if header is None:
                version = record.get("span_trace")
                if not isinstance(version, int):
                    raise SpanTraceError(f"{path}:1: missing span_trace header")
                if version > SPAN_TRACE_VERSION:
                    raise SpanTraceError(
                        f"{path}: span trace version {version} is newer than "
                        f"supported version {SPAN_TRACE_VERSION}"
                    )
                header = record
            else:
                spans.append(record)
    if header is None:
        raise SpanTraceError(f"{path}: empty span trace")
    return header, spans


def chrome_trace(spans: List[Dict[str, object]]) -> Dict[str, object]:
    """Span dicts → the Chrome trace-event format (complete events).

    The result serializes to a JSON object a flamegraph viewer
    (``chrome://tracing``, Perfetto, speedscope) opens directly:
    one ``"ph": "X"`` complete event per span, timestamps and durations
    in microseconds.
    """
    events: List[Dict[str, object]] = []
    for span in spans:
        start = float(span.get("start", 0.0))  # type: ignore[arg-type]
        end = float(span.get("end", start))    # type: ignore[arg-type]
        args: Dict[str, object] = {
            "span": span.get("span"),
            "parent": span.get("parent"),
        }
        attrs = span.get("attrs")
        if isinstance(attrs, dict):
            args.update(attrs)
        events.append({
            "name": str(span.get("name", "?")),
            "cat": str(span.get("trace", "trace")),
            "ph": "X",
            "ts": round(start * 1e6, 3),
            "dur": round(max(end - start, 0.0) * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    events.sort(key=lambda event: (event["ts"], -float(event["dur"])))  # type: ignore[arg-type]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
