"""Observability: event traces, metrics, profiling, and run manifests.

The detector core and the experiment harness are instrumented with
structured, machine-readable signals — the same per-step visibility the
paper's own evaluation needed (when a transition was declared, how the
adaptive TW resized, what similarity the model reported), but available
to every run:

- :mod:`repro.obs.events` — the per-step detector event taxonomy and
  its documented schema, plus :func:`replay_phases` which reconstructs
  the exact phase sequence a run produced from its event trace;
- :mod:`repro.obs.bus` — the event bus and sinks (``NullSink``,
  ``MemorySink``, ``JsonlSink``) plus the torn-write-tolerant
  :func:`read_events` loader;
- :mod:`repro.obs.metrics` — counters, gauges, timing summaries and
  log-scale latency histograms in a :class:`MetricsRegistry` whose
  snapshots merge across processes;
- :mod:`repro.obs.timeseries` — the :class:`FlightRecorder`: interval
  snapshots of a registry with per-interval rates, ring-buffered and
  spooled to a versioned JSONL flight record;
- :mod:`repro.obs.trace` — explicit-context span tracing with a
  Chrome trace-event exporter;
- :mod:`repro.obs.profiling` — opt-in wall-time + ``tracemalloc``
  sampling for sweep chunks;
- :mod:`repro.obs.manifest` — the run manifest written next to every
  sweep cache (config fingerprints, environment, per-worker metrics);
- :mod:`repro.obs.logsetup` — ``logging`` configuration for the CLI's
  ``--verbose``/``--quiet`` flags.

Design rule: the *disabled* path must be free.  Nothing in ``repro.core``
imports this package; the detector entry points take ``observer=None``
and guard every emission behind a single ``is not None`` test, so a run
without a sink costs one predictable branch per step.  See
``docs/observability.md`` for the full taxonomy, the metrics catalog,
and the overhead guarantees.
"""

from repro.obs.bus import EventBus, JsonlSink, MemorySink, NullSink, read_events
from repro.obs.events import (
    EVENT_TYPES,
    EventSchemaError,
    replay_phases,
    validate_event,
)
from repro.obs.manifest import (
    diff_manifests,
    load_manifest,
    manifest_path_for,
    summarize_manifest,
    write_manifest,
)
from repro.obs.metrics import GLOBAL_METRICS, Histogram, MetricsRegistry
from repro.obs.profiling import ChunkProfile, ChunkProfiler
from repro.obs.timeseries import FlightRecorder, read_flight_record
from repro.obs.trace import Tracer, chrome_trace, read_spans
from repro.obs.logsetup import setup_logging

__all__ = [
    "EVENT_TYPES",
    "EventBus",
    "EventSchemaError",
    "ChunkProfile",
    "ChunkProfiler",
    "FlightRecorder",
    "GLOBAL_METRICS",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "Tracer",
    "chrome_trace",
    "diff_manifests",
    "load_manifest",
    "manifest_path_for",
    "read_events",
    "read_flight_record",
    "read_spans",
    "replay_phases",
    "setup_logging",
    "summarize_manifest",
    "validate_event",
    "write_manifest",
]
