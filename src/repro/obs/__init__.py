"""Observability: event traces, metrics, profiling, and run manifests.

The detector core and the experiment harness are instrumented with
structured, machine-readable signals — the same per-step visibility the
paper's own evaluation needed (when a transition was declared, how the
adaptive TW resized, what similarity the model reported), but available
to every run:

- :mod:`repro.obs.events` — the per-step detector event taxonomy and
  its documented schema, plus :func:`replay_phases` which reconstructs
  the exact phase sequence a run produced from its event trace;
- :mod:`repro.obs.bus` — the event bus and sinks (``NullSink``,
  ``MemorySink``, ``JsonlSink``) plus the torn-write-tolerant
  :func:`read_events` loader;
- :mod:`repro.obs.metrics` — counters, gauges and timing summaries in a
  :class:`MetricsRegistry` whose snapshots merge across processes;
- :mod:`repro.obs.profiling` — opt-in wall-time + ``tracemalloc``
  sampling for sweep chunks;
- :mod:`repro.obs.manifest` — the run manifest written next to every
  sweep cache (config fingerprints, environment, per-worker metrics);
- :mod:`repro.obs.logsetup` — ``logging`` configuration for the CLI's
  ``--verbose``/``--quiet`` flags.

Design rule: the *disabled* path must be free.  Nothing in ``repro.core``
imports this package; the detector entry points take ``observer=None``
and guard every emission behind a single ``is not None`` test, so a run
without a sink costs one predictable branch per step.  See
``docs/observability.md`` for the full taxonomy, the metrics catalog,
and the overhead guarantees.
"""

from repro.obs.bus import EventBus, JsonlSink, MemorySink, NullSink, read_events
from repro.obs.events import (
    EVENT_TYPES,
    EventSchemaError,
    replay_phases,
    validate_event,
)
from repro.obs.manifest import (
    diff_manifests,
    load_manifest,
    manifest_path_for,
    summarize_manifest,
    write_manifest,
)
from repro.obs.metrics import GLOBAL_METRICS, MetricsRegistry
from repro.obs.profiling import ChunkProfile, ChunkProfiler
from repro.obs.logsetup import setup_logging

__all__ = [
    "EVENT_TYPES",
    "EventBus",
    "EventSchemaError",
    "ChunkProfile",
    "ChunkProfiler",
    "GLOBAL_METRICS",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "diff_manifests",
    "load_manifest",
    "manifest_path_for",
    "read_events",
    "replay_phases",
    "setup_logging",
    "summarize_manifest",
    "validate_event",
    "write_manifest",
]
