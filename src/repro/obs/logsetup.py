"""``logging`` configuration for the CLI and test harnesses.

The library itself only ever *gets* loggers (``repro.sweep`` etc.) —
it never installs handlers, so embedding applications keep full control
of where (or whether) progress output goes.  The CLI, and anything else
that wants the classic stderr progress lines, calls
:func:`setup_logging` once:

- ``verbosity > 0``  (``--verbose``) — DEBUG;
- ``verbosity == 0`` (default)       — INFO (progress lines);
- ``verbosity < 0``  (``--quiet``)   — WARNING only.

Setup is idempotent: a second call adjusts the level but installs no
duplicate handler.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["progress_logger", "setup_logging"]

#: Root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger tree.

    Returns the configured root library logger.  ``stream`` overrides
    the destination (tests pass a ``StringIO``).
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        level = logging.INFO
    logger.setLevel(level)
    logger.propagate = False
    handler: Optional[logging.Handler] = None
    for existing in logger.handlers:
        if isinstance(existing, logging.StreamHandler):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return logger


def progress_logger(name: str) -> logging.Logger:
    """A child logger under the ``repro`` tree (e.g. ``repro.sweep``)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")
