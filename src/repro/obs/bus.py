"""The event bus and its sinks.

An *observer* is anything with an ``emit(event: dict)`` method.  The
instrumented entry points (``run_detector``, ``PhaseDetector``) accept
one directly — a single sink is the common case and costs no fan-out
indirection — or an :class:`EventBus` when several sinks should see the
same stream.

Sinks:

- :class:`NullSink` — drops everything; the explicit-object form of the
  default ``observer=None`` (which is cheaper still: the emitting code
  skips event construction entirely).
- :class:`MemorySink` — buffers events in a list (tests, ad-hoc
  analysis).
- :class:`JsonlSink` — appends one compact JSON object per line; the
  on-disk trace format ``repro obs tail`` reads.

:func:`read_events` loads a JSONL trace back, tolerating a torn final
line (a crashed or killed writer), so a partial trace is still usable
up to its last complete event.
"""

from __future__ import annotations

import io
import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.events import EventSchemaError, validate_event

PathLike = Union[str, os.PathLike]

__all__ = [
    "EventBus",
    "EventTraceError",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "read_events",
]


class EventTraceError(ValueError):
    """Raised when an on-disk event trace is malformed mid-file."""


class NullSink:
    """Swallows every event.  Exists so 'no observability' is spellable
    as an object; passing ``observer=None`` is cheaper (no event dicts
    are even built)."""

    __slots__ = ()

    def emit(self, event: Dict[str, object]) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Buffers events in :attr:`events` (primarily for tests)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def clear(self) -> None:
        self.events.clear()


class JsonlSink:
    """Append events to ``path``, one compact JSON object per line.

    Args:
        path: the trace file to create (parent directories are made).
        validate: check each event against the schema before writing
            (useful in tests; off by default on the hot path).
        buffered: keep Python-level buffering (default).  Pass ``False``
            to flush after every event — slower, but a crash tears at
            most one line, which :func:`read_events` tolerates anyway.

    Usable as a context manager.

    Thread-safety: :meth:`emit` serializes each event *outside* the
    lock, then takes an internal lock for the single ``write()`` call —
    concurrent session writers (e.g. several serving sessions sharing
    one sink) interleave whole lines, never fragments of two events.
    Ordering across writers is whatever the lock arbitration yields;
    within one writer it is emission order.
    """

    def __init__(self, path: PathLike, validate: bool = False, buffered: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._validate = validate
        self._buffered = buffered
        self._handle: Optional[io.TextIOBase] = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()
        self.emitted = 0

    def emit(self, event: Dict[str, object]) -> None:
        if self._validate:
            validate_event(event)
        line = json.dumps(event, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                raise ValueError(f"JsonlSink({self.path}) is closed")
            self._handle.write(line)
            if not self._buffered:
                self._handle.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventBus:
    """Fan one event stream out to several sinks.

    The bus itself satisfies the observer protocol, so it plugs into
    the same ``observer=`` parameter a bare sink does.
    """

    def __init__(self) -> None:
        self._sinks: List = []

    def subscribe(self, sink) -> None:
        self._sinks.append(sink)

    def unsubscribe(self, sink) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> List:
        return list(self._sinks)

    def emit(self, event: Dict[str, object]) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


def read_events(
    path: PathLike, validate: bool = False
) -> Iterator[Dict[str, object]]:
    """Stream events back from a JSONL trace.

    A torn *final* line (interrupted writer) is silently dropped;
    undecodable content anywhere else raises :class:`EventTraceError`,
    as does a schema violation when ``validate`` is set.
    """
    path = Path(path)
    pending: Optional[str] = None  # last seen undecodable line
    pending_number = 0
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending is not None:
                # An undecodable line followed by more content is
                # corruption, not a torn tail.
                raise EventTraceError(
                    f"{path}:{pending_number}: undecodable event line"
                )
            try:
                event = json.loads(stripped)
            except json.JSONDecodeError:
                pending = stripped
                pending_number = number
                continue
            if not isinstance(event, dict):
                raise EventTraceError(
                    f"{path}:{number}: event is not a JSON object"
                )
            if validate:
                try:
                    validate_event(event)
                except EventSchemaError as exc:
                    raise EventTraceError(f"{path}:{number}: {exc}") from None
            yield event
