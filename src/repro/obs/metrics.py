"""Counters, gauges, timings and histograms with mergeable snapshots.

A :class:`MetricsRegistry` is a named bag of four instrument kinds:

- :class:`Counter` — a monotonically increasing count (records
  evaluated, cache hits);
- :class:`Gauge` — a last-write-wins value (worker count, trace
  length);
- :class:`Timing` — a streaming summary of observed durations
  (count / total / min / max, so mean is derivable) — enough to answer
  "where does the wall time go" without keeping samples;
- :class:`Histogram` — a fixed-bucket log-scale distribution of
  observed durations.  Same count/total/min/max summary as a
  :class:`Timing`, plus bucket counts from which percentiles
  (:meth:`Histogram.quantile`) are derivable from any snapshot — live,
  mid-run, or merged across workers.

Snapshots are plain JSON-safe dicts.  :meth:`MetricsRegistry.merge`
folds another snapshot in (counters add, gauges take the other's value,
timings and histograms combine), which is how per-process registries
from ``ProcessPoolExecutor`` workers collapse into the one the run
manifest records.  Every merge is associative, so snapshots may arrive
in any order or grouping.

Instrument updates are thread-safe: each instrument guards its fields
with one small lock, so the serve layer's thread-backed sinks can share
a registry with the asyncio loop.  The *uninstrumented* path is
untouched — code holding no instrument pays nothing, and the
``observer=None`` convention of :mod:`repro.core` still costs one
``is not None`` branch (see ``docs/observability.md``).

:data:`GLOBAL_METRICS` is the process-wide default registry used by the
trace I/O layer; anything that owns a run (e.g. a ``Sweep``) keeps its
own.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "GLOBAL_METRICS",
    "Histogram",
    "MetricsRegistry",
    "Timing",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins numeric value."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Timing:
    """A streaming duration summary: count, total, min, max."""

    __slots__ = ("count", "total", "minimum", "maximum", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds < self.minimum:
                self.minimum = seconds
            if seconds > self.maximum:
                self.maximum = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
        }

    def merge_dict(self, other: Dict[str, float]) -> None:
        count = int(other.get("count", 0))
        if not count:
            return
        with self._lock:
            self.count += count
            self.total += float(other.get("total", 0.0))
            self.minimum = min(self.minimum, float(other.get("min", float("inf"))))
            self.maximum = max(self.maximum, float(other.get("max", 0.0)))


# -- the histogram bucket layout -----------------------------------------------
#
# Every Histogram shares one fixed log-scale layout, so bucket counts
# from different processes line up index-for-index and merging is a
# plain elementwise add (associative and commutative).  The layout
# covers 100 ns .. 100 s at 8 buckets per decade — finer than a power
# of two ladder, coarse enough that a snapshot stays small — with an
# underflow bucket below and an overflow bucket above.

#: Lower bound of the first log bucket (seconds).
HISTOGRAM_MIN = 1e-7

#: Log buckets per decade.
HISTOGRAM_BUCKETS_PER_DECADE = 8

#: Decades covered by the log buckets (1e-7 .. 1e2 seconds).
HISTOGRAM_DECADES = 9

#: Total bucket count: underflow + log buckets + overflow.
HISTOGRAM_BUCKETS = HISTOGRAM_DECADES * HISTOGRAM_BUCKETS_PER_DECADE + 2

_LOG_BUCKETS = HISTOGRAM_DECADES * HISTOGRAM_BUCKETS_PER_DECADE


def _bucket_index(value: float) -> int:
    """The bucket a value falls in (0 = underflow, last = overflow)."""
    if value < HISTOGRAM_MIN:
        return 0
    index = int(math.log10(value / HISTOGRAM_MIN) * HISTOGRAM_BUCKETS_PER_DECADE)
    if index >= _LOG_BUCKETS:
        return HISTOGRAM_BUCKETS - 1
    return index + 1


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``[lower, upper)`` bounds of bucket ``index`` in seconds.

    The underflow bucket is ``[0, HISTOGRAM_MIN)``; the overflow bucket
    is ``[top, inf)``.
    """
    if index <= 0:
        return (0.0, HISTOGRAM_MIN)
    if index >= HISTOGRAM_BUCKETS - 1:
        return (HISTOGRAM_MIN * 10.0 ** (HISTOGRAM_DECADES), float("inf"))
    lo = HISTOGRAM_MIN * 10.0 ** ((index - 1) / HISTOGRAM_BUCKETS_PER_DECADE)
    hi = HISTOGRAM_MIN * 10.0 ** (index / HISTOGRAM_BUCKETS_PER_DECADE)
    return (lo, hi)


class Histogram:
    """A fixed-bucket log-scale duration distribution.

    Percentiles are derived from the bucket counts by linear
    interpolation inside the covering bucket, clamped to the exact
    observed ``[min, max]`` — good to one bucket width (about 33% in
    value at 8 buckets per decade), which is plenty to tell a 2 ms p99
    from a 20 ms one.

    Snapshots (:meth:`to_dict`) store the non-empty buckets sparsely;
    :meth:`merge_dict` adds bucket counts elementwise, so merging is
    associative and commutative like every other instrument.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "counts", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.counts = [0] * HISTOGRAM_BUCKETS
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        index = _bucket_index(seconds)
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds < self.minimum:
                self.minimum = seconds
            if seconds > self.maximum:
                self.maximum = seconds
            self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), interpolated from buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                lo, hi = bucket_bounds(index)
                if not math.isfinite(hi):
                    hi = max(self.maximum, lo)
                fraction = (target - cumulative) / bucket_count
                value = lo + (hi - lo) * fraction
                return min(max(value, self.minimum), self.maximum)
            cumulative += bucket_count
        return self.maximum

    def percentiles(self) -> Dict[str, float]:
        """The p50/p95/p99 summary live views render."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> Dict[str, object]:
        buckets = {
            str(index): count
            for index, count in enumerate(self.counts)
            if count
        }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "buckets": buckets,
        }

    def merge_dict(self, other: Dict[str, object]) -> None:
        count = int(other.get("count", 0))  # type: ignore[arg-type]
        if not count:
            return
        with self._lock:
            self.count += count
            self.total += float(other.get("total", 0.0))  # type: ignore[arg-type]
            self.minimum = min(
                self.minimum, float(other.get("min", float("inf")))  # type: ignore[arg-type]
            )
            self.maximum = max(
                self.maximum, float(other.get("max", 0.0))  # type: ignore[arg-type]
            )
            for key, bucket_count in other.get("buckets", {}).items():  # type: ignore[union-attr]
                index = int(key)
                if not 0 <= index < HISTOGRAM_BUCKETS:
                    raise ValueError(f"histogram bucket index {key!r} out of range")
                self.counts[index] += int(bucket_count)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from a snapshot entry (client-side views)."""
        histogram = cls()
        histogram.merge_dict(data)
        return histogram


class MetricsRegistry:
    """Named counters/gauges/timings/histograms with JSON snapshots
    that merge."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timings: Dict[str, Timing] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge())
        return gauge

    def timing(self, name: str) -> Timing:
        timing = self._timings.get(name)
        if timing is None:
            with self._lock:
                timing = self._timings.setdefault(name, Timing())
        return timing

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram())
        return histogram

    @contextmanager
    def time(self, name: str):
        """Context manager: observe the block's wall time (monotonic)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.timing(name).observe(time.perf_counter() - started)

    @contextmanager
    def time_histogram(self, name: str):
        """Like :meth:`time`, but into a :class:`Histogram` —
        percentiles, not just the min/mean/max summary."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - started)

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-safe view of every instrument's current value."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            timings = sorted(self._timings.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "timings": {name: t.to_dict() for name, t in timings},
            "histograms": {name: h.to_dict() for name, h in histograms},
        }

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges take the incoming value, timings and
        histograms combine their summaries.  Merging is associative, so
        per-worker snapshots can arrive in any order.  Snapshots from
        older writers simply lack the ``histograms`` section.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))          # type: ignore[arg-type]
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))          # type: ignore[arg-type]
        for name, summary in snapshot.get("timings", {}).items():
            self.timing(name).merge_dict(summary)       # type: ignore[arg-type]
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_dict(summary)    # type: ignore[arg-type]

    @staticmethod
    def merged(snapshots: Iterable[Dict[str, Dict[str, object]]]) -> "MetricsRegistry":
        """A fresh registry holding the fold of ``snapshots``."""
        registry = MetricsRegistry()
        for snapshot in snapshots:
            registry.merge(snapshot)
        return registry

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timings.clear()
            self._histograms.clear()

    def get(self, kind: str, name: str) -> Optional[object]:
        """Look an instrument up without creating it (None if absent)."""
        store = {"counter": self._counters, "gauge": self._gauges,
                 "timing": self._timings, "histogram": self._histograms}[kind]
        return store.get(name)


#: Process-wide default registry (trace I/O, cache hit rates).  Worker
#: processes each get their own copy-on-fork/fresh-on-spawn instance;
#: the parallel executor ships their snapshots back explicitly.
GLOBAL_METRICS = MetricsRegistry()
