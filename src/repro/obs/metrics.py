"""Counters, gauges and timing summaries with mergeable snapshots.

A :class:`MetricsRegistry` is a named bag of three instrument kinds:

- :class:`Counter` — a monotonically increasing count (records
  evaluated, cache hits);
- :class:`Gauge` — a last-write-wins value (worker count, trace
  length);
- :class:`Timing` — a streaming summary of observed durations
  (count / total / min / max, so mean is derivable) — enough to answer
  "where does the wall time go" without keeping samples.

Snapshots are plain JSON-safe dicts.  :meth:`MetricsRegistry.merge`
folds another snapshot in (counters add, gauges take the other's value,
timings combine), which is how per-process registries from
``ProcessPoolExecutor`` workers collapse into the one the run manifest
records.

Instrument lookups are ``dict.setdefault`` under the hood and increments
are plain attribute writes, so sprinkling counters on I/O-frequency code
paths (file reads, cache probes) is safe; per-element hot loops should
stay uninstrumented — see the overhead guarantees in
``docs/observability.md``.

:data:`GLOBAL_METRICS` is the process-wide default registry used by the
trace I/O layer; anything that owns a run (e.g. a ``Sweep``) keeps its
own.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable, Optional

__all__ = ["Counter", "Gauge", "GLOBAL_METRICS", "MetricsRegistry", "Timing"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins numeric value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timing:
    """A streaming duration summary: count, total, min, max."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
        }

    def merge_dict(self, other: Dict[str, float]) -> None:
        count = int(other.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(other.get("total", 0.0))
        self.minimum = min(self.minimum, float(other.get("min", float("inf"))))
        self.maximum = max(self.maximum, float(other.get("max", 0.0)))


class MetricsRegistry:
    """Named counters/gauges/timings with JSON snapshots that merge."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timings: Dict[str, Timing] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def timing(self, name: str) -> Timing:
        timing = self._timings.get(name)
        if timing is None:
            timing = self._timings[name] = Timing()
        return timing

    @contextmanager
    def time(self, name: str):
        """Context manager: observe the block's wall time (monotonic)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.timing(name).observe(time.perf_counter() - started)

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-safe view of every instrument's current value."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "timings": {
                name: t.to_dict() for name, t in sorted(self._timings.items())
            },
        }

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges take the incoming value, timings combine
        their summaries.  Merging is associative, so per-worker
        snapshots can arrive in any order.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))          # type: ignore[arg-type]
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))          # type: ignore[arg-type]
        for name, summary in snapshot.get("timings", {}).items():
            self.timing(name).merge_dict(summary)       # type: ignore[arg-type]

    @staticmethod
    def merged(snapshots: Iterable[Dict[str, Dict[str, object]]]) -> "MetricsRegistry":
        """A fresh registry holding the fold of ``snapshots``."""
        registry = MetricsRegistry()
        for snapshot in snapshots:
            registry.merge(snapshot)
        return registry

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timings.clear()

    def get(self, kind: str, name: str) -> Optional[object]:
        """Look an instrument up without creating it (None if absent)."""
        store = {"counter": self._counters, "gauge": self._gauges,
                 "timing": self._timings}[kind]
        return store.get(name)


#: Process-wide default registry (trace I/O, cache hit rates).  Worker
#: processes each get their own copy-on-fork/fresh-on-spawn instance;
#: the parallel executor ships their snapshots back explicitly.
GLOBAL_METRICS = MetricsRegistry()
