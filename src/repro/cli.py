"""Command-line interface.

Subcommands::

    repro trace <workload> --out DIR        # run a workload, save both traces
    repro oracle <file.cloop> --mpl N       # print the baseline solution
    repro detect <file.btrace> --cw N ...   # run one detector, print phases
    repro detect ... --checkpoint F --checkpoint-at N  # suspend mid-trace
    repro detect <file.btrace> --resume F   # resume from a checkpoint
    repro bank <file.btrace> --cw N         # bank-vs-sequential benchmark
    repro score <workload|files> --mpl N    # detector-vs-oracle accuracy
    repro characteristics                   # Table 1(a) for the suite
    repro sweep --profile quick --jobs 4    # (re)fill the sweep record cache
    repro generate --profile default        # regenerate all tables/figures
    repro serve --port 7007                 # streaming detection server (TCP)
    repro serve --flight-record f.jsonl     # ... with a telemetry flight record
    repro serve-bench --sessions 1000       # serving load generator + verify
    repro serve-stats --port 7007           # one-shot stats/healthz of a server
    repro obs summary                       # render a sweep or serve manifest
    repro obs tail <events.jsonl>           # last events of a detector trace
    repro obs diff <a.json> <b.json>        # compare two run manifests
    repro obs top --port 7007               # live serve telemetry (polling)
    repro obs trace export spans.jsonl --chrome  # spans -> chrome://tracing

Global ``--verbose``/``--quiet`` control the ``repro`` logger level
(progress lines go to stderr at INFO).  ``detect``/``score`` accept
``--events FILE`` to record the detector's structured event stream as
JSONL; ``sweep --profiling`` samples wall time and memory per chunk.
See ``docs/observability.md``.

Run ``repro <subcommand> --help`` for each command's options.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.baseline import solve_baseline
from repro.core.config import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.engine import run_detector
from repro.experiments.report import render_table
from repro.obs.bus import JsonlSink
from repro.obs.logsetup import setup_logging
from repro.profiles.callloop import CallLoopTrace
from repro.profiles.io import read_trace, write_trace_binary
from repro.scoring import score_states
from repro.workloads import load_traces, workload, workload_names
from repro.workloads.characteristics import BenchmarkCharacteristics


def _add_detector_arguments(
    parser: argparse.ArgumentParser, cw_required: bool = True
) -> None:
    parser.add_argument(
        "--cw", type=int, required=cw_required, help="current-window size"
    )
    parser.add_argument("--tw", type=int, default=None, help="trailing-window size (default: CW)")
    parser.add_argument("--skip", type=int, default=1, help="skip factor (default 1)")
    parser.add_argument(
        "--trailing", choices=[p.value for p in TrailingPolicy], default="constant"
    )
    parser.add_argument("--anchor", choices=[p.value for p in AnchorPolicy], default="rn")
    parser.add_argument("--resize", choices=[p.value for p in ResizePolicy], default="slide")
    parser.add_argument("--model", choices=[m.value for m in ModelKind], default="unweighted")
    parser.add_argument(
        "--analyzer", choices=[a.value for a in AnalyzerKind], default="threshold"
    )
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--delta", type=float, default=0.05)
    parser.add_argument(
        "--family", default="windowed", metavar="NAME",
        help="detector family from the repro.comparators registry "
             "(windowed, focus, newma, das_pearson, lu_dynamo, "
             "dhodapkar_smith; default windowed)",
    )
    parser.add_argument(
        "--stat-threshold", type=float, default=None, metavar="BAR",
        help="changepoint families' decision bar "
             "(default: the family's documented default)",
    )
    parser.add_argument("--newma-fast", type=float, default=0.2,
                        help="NEWMA fast forgetting factor (default 0.2)")
    parser.add_argument("--newma-slow", type=float, default=0.05,
                        help="NEWMA slow forgetting factor (default 0.05)")
    parser.add_argument("--sketch-dim", type=int, default=64,
                        help="NEWMA sketch dimensionality (default 64)")
    parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="record the detector's event stream to FILE as JSONL",
    )


def _config_from_args(args: argparse.Namespace) -> DetectorConfig:
    if args.family != "windowed":
        from repro.comparators import engine_family

        try:
            engine_family(args.family)
        except ValueError as error:
            print(error, file=sys.stderr)
            raise SystemExit(2)
    return DetectorConfig(
        cw_size=args.cw,
        tw_size=args.tw,
        skip_factor=args.skip,
        trailing=TrailingPolicy(args.trailing),
        anchor=AnchorPolicy(args.anchor),
        resize=ResizePolicy(args.resize),
        model=ModelKind(args.model),
        analyzer=AnalyzerKind(args.analyzer),
        threshold=args.threshold,
        delta=args.delta,
        family=args.family,
        stat_threshold=args.stat_threshold,
        newma_fast=args.newma_fast,
        newma_slow=args.newma_slow,
        sketch_dim=args.sketch_dim,
    )


def cmd_trace(args: argparse.Namespace) -> int:
    wl = workload(args.workload)
    branch_trace, call_loop = wl.run(args.scale)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    branch_path = out / f"{wl.name}.btrace"
    callloop_path = out / f"{wl.name}.cloop"
    write_trace_binary(branch_trace, branch_path)
    call_loop.save(callloop_path)
    print(f"{wl.name}: {len(branch_trace):,} branches, {len(call_loop):,} events")
    print(f"wrote {branch_path} and {callloop_path}")
    return 0


def cmd_oracle(args: argparse.Namespace) -> int:
    call_loop = CallLoopTrace.load(args.callloop)
    solution = solve_baseline(call_loop, args.mpl)
    print(
        f"{solution.num_phases} phases, {solution.percent_in_phase:.1f}% in phase "
        f"(MPL={args.mpl}, {solution.num_elements:,} elements)"
    )
    limit = args.limit if args.limit > 0 else solution.num_phases
    for phase in solution.phases[:limit]:
        print(f"  [{phase.start:>9}, {phase.end:>9})  {phase.kind.value}")
    if solution.num_phases > limit:
        print(f"  ... and {solution.num_phases - limit} more")
    return 0


def _run_with_events(trace, config, events_path):
    """Run the engine, optionally recording its event stream as JSONL."""
    if events_path is None:
        return run_detector(trace, config)
    with JsonlSink(events_path) as sink:
        result = run_detector(trace, config, observer=sink)
    print(f"events: {sink.emitted} -> {events_path}")
    return result


def _print_detection(config, result, total: int) -> None:
    print(f"detector: {config.describe()}")
    print(f"{len(result.detected_phases)} phases over {total:,} elements")
    for phase in result.detected_phases:
        print(
            f"  [{phase.detected_start:>9}, {phase.end:>9})  "
            f"anchor-corrected start {phase.corrected_start}"
        )


def _detect_checkpoint(args: argparse.Namespace, trace) -> int:
    """Run detection up to ``--checkpoint-at``, then serialize and stop."""
    from repro.core.stream import StreamingDetector

    config = _config_from_args(args)
    at = args.checkpoint_at
    if at is None or not 0 < at < len(trace):
        print(
            f"--checkpoint needs --checkpoint-at N with 0 < N < {len(trace)} "
            f"(got {at})",
            file=sys.stderr,
        )
        return 1
    streaming = StreamingDetector(config)
    streaming.feed(trace.array[:at])
    path = Path(args.checkpoint)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(streaming.checkpoint()) + "\n", encoding="utf-8")
    print(f"detector: {config.describe()}")
    print(
        f"checkpoint after {streaming.elements_fed:,} of {len(trace):,} "
        f"elements -> {path}"
    )
    print(f"resume with: repro detect {args.trace} --resume {path}")
    return 0


def _detect_resume(args: argparse.Namespace, trace) -> int:
    """Resume a checkpointed detection over the rest of the trace."""
    from repro.core.runtime import CheckpointError
    from repro.core.stream import StreamingDetector

    try:
        data = json.loads(Path(args.resume).read_text(encoding="utf-8"))
        streaming = StreamingDetector.restore(data)
    except (OSError, json.JSONDecodeError, CheckpointError) as error:
        print(f"cannot resume from {args.resume}: {error}", file=sys.stderr)
        return 1
    fed = streaming.elements_fed
    if fed > len(trace):
        print(
            f"checkpoint is {fed:,} elements in but the trace has only "
            f"{len(trace):,}",
            file=sys.stderr,
        )
        return 1
    streaming.feed(trace.array[fed:])
    result = streaming.finish()
    print(f"resumed at element {fed:,} from {args.resume}")
    _print_detection(streaming.config, result, len(trace))
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    if args.resume is not None and args.checkpoint is not None:
        print("--resume and --checkpoint are mutually exclusive", file=sys.stderr)
        return 1
    if args.resume is not None:
        return _detect_resume(args, trace)
    if args.cw is None:
        print("--cw is required (unless resuming with --resume)", file=sys.stderr)
        return 1
    if args.checkpoint is not None:
        return _detect_checkpoint(args, trace)
    config = _config_from_args(args)
    result = _run_with_events(trace, config, args.events)
    _print_detection(config, result, len(trace))
    return 0


def cmd_bank(args: argparse.Namespace) -> int:
    """Benchmark a multi-config DetectorBank against sequential runs."""
    import time

    from repro.core.bank import DetectorBank

    trace = read_trace(args.trace)
    base = _config_from_args(args)
    configs = _bank_variants(base, args.size)
    print(
        f"bank benchmark: {len(configs)} configs over {len(trace):,} elements "
        f"(best of {args.repeats})"
    )

    serial_best = float("inf")
    serial_results = None
    for _ in range(args.repeats):
        started = time.perf_counter()
        results = [run_detector(trace, config) for config in configs]
        serial_best = min(serial_best, time.perf_counter() - started)
        serial_results = results
    bank_best = float("inf")
    bank_results = None
    for _ in range(args.repeats):
        started = time.perf_counter()
        results = DetectorBank(configs).run(trace)
        bank_best = min(bank_best, time.perf_counter() - started)
        bank_results = results

    identical = all(
        a.detected_phases == b.detected_phases
        and bool((a.states == b.states).all())
        for a, b in zip(serial_results, bank_results)
    )
    speedup = serial_best / bank_best if bank_best > 0 else float("inf")
    print(f"  sequential: {serial_best:.4f}s ({len(configs)} run_detector calls)")
    print(f"  bank:       {bank_best:.4f}s (single pass)")
    print(f"  speedup:    {speedup:.2f}x; results identical: {identical}")
    return 0 if identical else 1


def _bank_variants(base: DetectorConfig, count: int) -> List[DetectorConfig]:
    """A deterministic spread of ``count`` configs around ``base``.

    Cycles model x trailing x threshold so the bank exercises mixed
    members the way a sweep grid does.  Non-windowed families have no
    model/trailing axes, so their spread cycles the decision bar
    instead.
    """
    from dataclasses import replace
    from itertools import cycle, islice

    if not base.is_windowed:
        from repro.comparators import engine_family

        spec = engine_family(base.family)
        bar = base.stat_threshold
        if bar is None:
            bar = getattr(spec.build(base), "stat_threshold", 1.0)
        multipliers = (0.75, 0.9, 1.0, 1.1, 1.25, 1.5)
        return [
            replace(base, stat_threshold=bar * multiplier)
            for multiplier in islice(cycle(multipliers), count)
        ]

    variants = [
        (model, trailing, threshold)
        for threshold in (0.4, 0.5, 0.6, 0.7)
        for model in ModelKind
        for trailing in TrailingPolicy
    ]
    return [
        replace(base, model=model, trailing=trailing, threshold=threshold)
        for model, trailing, threshold in islice(cycle(variants), count)
    ]


def cmd_score(args: argparse.Namespace) -> int:
    branch_trace, call_loop = load_traces(args.workload, scale=args.scale)
    oracle = solve_baseline(call_loop, args.mpl)
    config = _config_from_args(args)
    result = _run_with_events(branch_trace, config, args.events)
    plain = score_states(result.states, oracle.states())
    corrected = score_states(
        result.corrected_states(), oracle.states(), detected_phases=result.corrected_phases()
    )
    print(f"workload {args.workload}: {len(branch_trace):,} elements, MPL={args.mpl}")
    print(f"oracle: {oracle.num_phases} phases ({oracle.percent_in_phase:.1f}% in phase)")
    print(f"detector: {config.describe()} -> {len(result.detected_phases)} phases")
    print(f"score:            {plain}")
    print(f"anchor-corrected: {corrected}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.vm.compiler import compile_source
    from repro.vm.profiler import profile_trace, render_profile

    wl = workload(args.workload)
    branch_trace, _ = load_traces(args.workload, scale=args.scale)
    program = compile_source(wl.program_source(args.scale), name=wl.name)
    profile = profile_trace(branch_trace)
    print(f"workload {wl.name} (mirrors {wl.mirrors}):")
    print(render_profile(profile, program, top=args.top))
    return 0


def cmd_characteristics(args: argparse.Namespace) -> int:
    rows = []
    for name in workload_names():
        branch_trace, call_loop = load_traces(name, scale=args.scale)
        row = BenchmarkCharacteristics.of(branch_trace, call_loop)
        rows.append(
            (row.name, row.dynamic_branches, row.loop_executions,
             row.method_invocations, row.recursion_roots)
        )
    print(
        render_table(
            ["Benchmark", "Dynamic Branches", "Loop Executions",
             "Method Invocations", "Recursion Roots"],
            rows,
            title="Table 1(a): Benchmark Characteristics",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.config_space import PROFILES, family_grid, paper_grid
    from repro.experiments.parallel import resolve_jobs
    from repro.experiments.sweep import Sweep

    profile = PROFILES[args.profile]
    jobs = resolve_jobs(args.jobs)
    benchmarks = args.benchmarks or None
    cache_dir = Path(args.cache_dir) if args.cache_dir is not None else None
    tracer = None
    if args.trace is not None:
        from repro.obs.trace import Tracer

        tracer = Tracer()
        if jobs is not None and jobs > 1:
            print("--trace records serial evaluation only; forcing --jobs 1",
                  file=sys.stderr)
            jobs = 1
    if args.numba:
        # The env variable is the single switch the kernel layer
        # consults, so setting it here covers parallel workers too
        # (fork/spawn both inherit the environment).  Soft-failing: a
        # numba-less host silently keeps the NumPy path.
        os.environ["REPRO_NUMBA"] = "1"
    sweep = Sweep(
        profile, cache_dir=cache_dir, benchmarks=benchmarks,
        bank=not args.no_bank,
        kernels=False if args.no_kernels else None,
        batched=False if args.no_batched else None,
        mmap=False if args.no_mmap else None,
        store=not args.no_store,
        tracer=tracer,
    )
    grid = paper_grid(profile)
    if args.families:
        try:
            grid = grid + family_grid(profile, tuple(args.families))
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    records = sweep.ensure(
        grid, progress=not args.quiet, jobs=jobs,
        profiling=args.profiling,
    )
    print(
        f"sweep '{profile.name}': {len(records)} records over "
        f"{len(sweep.benchmarks)} benchmarks (jobs={jobs})"
    )
    print(f"cache: {sweep.cache_path}")
    print(f"manifest: {sweep.manifest_path}")
    if sweep.store:
        print(f"results db: {sweep.db_path}")
    if tracer is not None:
        tracer.save(args.trace)
        print(f"spans: {len(tracer.spans)} -> {args.trace}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.bus import read_events
    from repro.obs.manifest import (
        diff_manifests,
        load_manifest,
        manifest_path_for,
        summarize_manifest,
    )

    def resolve_manifest(path_arg: Optional[str]) -> Path:
        if path_arg is not None:
            path = Path(path_arg)
            if path.suffix == ".jsonl":
                return manifest_path_for(path)
            return path
        from repro.workloads.suite import DEFAULT_CACHE_DIR

        cache_dir = (
            Path(args.cache_dir) if args.cache_dir is not None else DEFAULT_CACHE_DIR
        )
        return cache_dir / f"sweep-{args.profile}.manifest.json"

    if args.obs_command == "summary":
        path = resolve_manifest(args.path)
        if not path.exists():
            print(f"no run manifest at {path} (run `repro sweep` first)",
                  file=sys.stderr)
            return 1
        print(summarize_manifest(load_manifest(path)))
        return 0
    if args.obs_command == "tail":
        events = list(read_events(args.trace, validate=args.validate))
        for event in events[-args.count:] if args.count > 0 else events:
            print(json.dumps(event, separators=(",", ":")))
        return 0
    # diff
    print(diff_manifests(load_manifest(args.old), load_manifest(args.new)))
    return 0


async def _poll_top(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs.console import top_frame
    from repro.serve.client import ServeClient

    client = await ServeClient.connect(args.host, args.port)
    try:
        frames = 1 if args.once else args.frames
        emitted = 0
        while True:
            stats = await client.stats()
            print(top_frame(stats), flush=True)
            emitted += 1
            if frames and emitted >= frames:
                return 0
            await asyncio.sleep(args.interval)
    finally:
        await client.aclose()


def cmd_obs_top(args: argparse.Namespace) -> int:
    import asyncio

    try:
        return asyncio.run(_poll_top(args))
    except KeyboardInterrupt:
        return 0
    except (ConnectionRefusedError, OSError) as error:
        print(f"cannot reach server at {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1


def cmd_obs_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import SpanTraceError, chrome_trace, read_spans

    try:
        header, spans = read_spans(args.spans)
    except (OSError, SpanTraceError) as error:
        print(f"cannot read span trace: {error}", file=sys.stderr)
        return 1
    if args.chrome:
        document = chrome_trace(spans)
        rendered = json.dumps(document, indent=2) + "\n"
        if args.out is not None:
            Path(args.out).write_text(rendered, encoding="utf-8")
            print(f"{len(spans)} spans -> {args.out} "
                  f"(open in chrome://tracing or Perfetto)")
        else:
            print(rendered, end="")
        return 0
    print(f"span trace {header.get('trace_id')}: {len(spans)} spans "
          f"({header.get('dropped', 0)} dropped)")
    for span in spans:
        start = float(span.get("start", 0.0))
        end = float(span.get("end", start))
        print(f"  {span.get('name')}: span={span.get('span')} "
              f"parent={span.get('parent')} {(end - start) * 1e3:.3f}ms")
    return 0


async def _fetch_serve_stats(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    client = await ServeClient.connect(args.host, args.port)
    try:
        stats = await client.stats()
        healthz = await client.healthz()
    finally:
        await client.aclose()
    return stats, healthz


def cmd_serve_stats(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs.console import render_healthz, render_stats

    try:
        stats, healthz = asyncio.run(_fetch_serve_stats(args))
    except (ConnectionRefusedError, OSError) as error:
        print(f"cannot reach server at {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"stats": stats, "healthz": healthz}, indent=2))
        return 0
    print(render_healthz(healthz))
    print(render_stats(stats))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import PhaseServer

    tracer = None
    if args.trace is not None:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    server = PhaseServer(
        spool_dir=Path(args.spool) if args.spool else None,
        max_resident=args.max_resident,
        queue_size=args.queue_size,
        idle_timeout=args.idle_timeout,
        events=args.events,
        flight_record=Path(args.flight_record) if args.flight_record else None,
        flight_interval=args.flight_interval,
        tracer=tracer,
    )

    async def _run() -> None:
        await server.start(host=args.host, port=args.port)
        print(f"serving on {args.host}:{server.port} "
              f"(max_resident={args.max_resident}, spool={server.spool_dir})",
              file=sys.stderr)
        stop = asyncio.Event()
        try:
            await stop.wait()
        finally:
            manifest_path = Path(args.manifest) if args.manifest else None
            manifest = await server.drain(manifest_path)
            print(f"drained {len(manifest['sessions'])} sessions",
                  file=sys.stderr)
            if tracer is not None:
                tracer.save(args.trace)
                print(f"spans: {len(tracer.spans)} -> {args.trace}",
                      file=sys.stderr)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import serve_bench

    if args.family != "windowed":
        from repro.comparators import engine_family

        try:
            engine_family(args.family)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    row = serve_bench(
        sessions=args.sessions,
        elements_per_session=args.elements,
        chunk=args.chunk,
        source=args.source,
        scale=args.scale,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        max_resident=args.max_resident,
        queue_size=args.queue_size,
        seed=args.seed,
        transport=args.transport,
        connections=args.connections,
        verify=not args.no_verify,
        park_sessions=args.park_sessions,
        park_max_resident=args.park_max_resident,
        flight_record=Path(args.flight_record) if args.flight_record else None,
        flight_interval=args.flight_interval,
        family=args.family,
    )
    if args.json:
        Path(args.json).write_text(json.dumps(row, indent=2) + "\n")
    main_row = row["main"]
    print(f"serve-bench: {main_row['sessions']} sessions x "
          f"{args.elements} elements over {args.transport} "
          f"({row['source']} replay, {row['family']} family)")
    print(f"  throughput: {main_row['events_per_sec']:,.0f} elements/sec "
          f"({main_row['elapsed_seconds']:.3f}s)")
    if main_row["latency_p50_ms"] is not None:
        print(f"  chunk latency: p50 {main_row['latency_p50_ms']:.3f} ms, "
              f"p99 {main_row['latency_p99_ms']:.3f} ms")
    if main_row["verified"] is not None:
        print(f"  verified vs offline: {main_row['verified']}"
              + (f" (mismatched: {main_row['mismatched']})"
                 if main_row["mismatched"] else ""))
    parked = row.get("parked")
    if parked is not None:
        print(f"  parked run: {parked['sessions']} sessions, "
              f"{parked['parks']} parks / {parked['rehydrations']} rehydrations, "
              f"verified: {parked['verified']}")
    failed = (main_row.get("verified") is False
              or (parked is not None and parked.get("verified") is False))
    return 1 if failed else 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.experiments.generate import main as generate_main

    forwarded: List[str] = ["--profile", args.profile]
    if args.out is not None:
        forwarded += ["--out", str(args.out)]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.families:
        forwarded += ["--families", *args.families]
    return generate_main(forwarded)


def _results_db_path(args: argparse.Namespace) -> Path:
    if getattr(args, "db", None):
        return Path(args.db)
    from repro.workloads.suite import DEFAULT_CACHE_DIR

    cache_dir = (
        Path(args.cache_dir) if args.cache_dir is not None else DEFAULT_CACHE_DIR
    )
    return cache_dir / f"sweep-{args.profile}.sqlite"


def cmd_results(args: argparse.Namespace) -> int:
    from repro.experiments.store import ResultDB, open_readonly

    db_path = _results_db_path(args)
    if args.results_command == "ingest":
        from repro.workloads.suite import DEFAULT_CACHE_DIR

        cache_dir = (
            Path(args.cache_dir) if args.cache_dir is not None else DEFAULT_CACHE_DIR
        )
        cache_path = cache_dir / f"sweep-{args.profile}.jsonl"
        if not cache_path.exists():
            print(f"no record cache at {cache_path} (run `repro sweep` first)",
                  file=sys.stderr)
            return 1
        with ResultDB(db_path) as db:
            ingested = db.sync_from_cache(
                cache_path, args.profile, full=args.rebuild
            )
            total = len(db.load_records(args.profile))
        print(f"ingested {ingested} rows from {cache_path}")
        print(f"{db_path}: {total} records for profile '{args.profile}'")
        return 0
    if not db_path.exists():
        print(f"no result database at {db_path} "
              f"(run `repro sweep` or `repro results ingest` first)",
              file=sys.stderr)
        return 1
    if args.results_command == "query":
        where = {}
        for dim in ("benchmark", "family", "model", "analyzer", "anchor", "resize"):
            value = getattr(args, dim, None)
            if value is not None:
                where[dim] = value
        if args.mpl is not None:
            where["mpl_nominal"] = args.mpl
        if args.cw is not None:
            where["cw_nominal"] = args.cw
        with ResultDB(db_path) as db:
            try:
                columns, rows = db.best_scores(
                    args.profile, by=tuple(args.by), metric=args.metric,
                    where=where or None, limit=args.limit,
                )
            except ValueError as error:
                print(error, file=sys.stderr)
                return 2
        if args.json:
            for row in rows:
                print(json.dumps(dict(zip(columns, row))))
        else:
            rendered = [
                tuple(
                    f"{value:.4f}" if isinstance(value, float) else str(value)
                    for value in row
                )
                for row in rows
            ]
            print(render_table(columns, rendered,
                               title=f"best {args.metric} per "
                                     f"{' x '.join(args.by)}"))
            print(f"({len(rows)} groups, profile '{args.profile}')")
        return 0
    if args.results_command == "render":
        from repro.experiments.config_space import PROFILES
        from repro.experiments.generate import render_from_records

        with ResultDB(db_path) as db:
            records = db.load_records(args.profile)
            benchmarks = db.benchmarks(args.profile)
        if not records:
            print(f"{db_path}: no records for profile '{args.profile}'",
                  file=sys.stderr)
            return 1
        out_dir = Path(args.out) if args.out is not None else None
        artifacts = render_from_records(
            records, benchmarks, PROFILES[args.profile], out_dir=out_dir
        )
        if out_dir is not None:
            print(f"wrote {len(artifacts)} artifacts to {out_dir}")
        else:
            for name in sorted(artifacts):
                print(artifacts[name])
                print()
        return 0
    if args.results_command == "runs":
        with ResultDB(db_path) as db:
            runs = db.runs()
        for run in runs:
            print(json.dumps(run))
        if not runs:
            print("(no runs recorded)", file=sys.stderr)
        return 0
    # sql — ad-hoc read-only queries
    connection = open_readonly(db_path)
    try:
        try:
            cursor = connection.execute(args.statement)
        except Exception as error:  # sqlite3.Error: surface and fail
            print(error, file=sys.stderr)
            return 2
        if cursor.description is not None:
            columns = [desc[0] for desc in cursor.description]
            for row in cursor:
                print(json.dumps(dict(zip(columns, row))))
    finally:
        connection.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online Phase Detection Algorithms (CGO 2006) reproduction",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more logging (DEBUG); repeatable",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0, dest="quiet_global",
        help="less logging (warnings only)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    trace_parser = subparsers.add_parser("trace", help="run a workload, save its traces")
    trace_parser.add_argument("workload", choices=workload_names())
    trace_parser.add_argument("--scale", type=float, default=1.0)
    trace_parser.add_argument("--out", default="traces")
    trace_parser.set_defaults(handler=cmd_trace)

    oracle_parser = subparsers.add_parser("oracle", help="solve the baseline for a call-loop trace")
    oracle_parser.add_argument("callloop", help="a .cloop file")
    oracle_parser.add_argument("--mpl", type=int, required=True)
    oracle_parser.add_argument("--limit", type=int, default=20, help="phases to print (0 = all)")
    oracle_parser.set_defaults(handler=cmd_oracle)

    detect_parser = subparsers.add_parser("detect", help="run one detector over a branch trace")
    detect_parser.add_argument("trace", help="a .btrace or .trace file")
    _add_detector_arguments(detect_parser, cw_required=False)
    detect_parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="suspend: write a versioned JSON checkpoint to FILE and stop "
             "(requires --checkpoint-at; see docs/formats.md)",
    )
    detect_parser.add_argument(
        "--checkpoint-at", type=int, default=None, metavar="N",
        help="take the checkpoint after N elements",
    )
    detect_parser.add_argument(
        "--resume", default=None, metavar="FILE",
        help="resume a detection from a checkpoint FILE "
             "(detector options come from the checkpoint)",
    )
    detect_parser.set_defaults(handler=cmd_detect)

    bank_parser = subparsers.add_parser(
        "bank", help="benchmark a multi-config DetectorBank vs sequential runs"
    )
    bank_parser.add_argument("trace", help="a .btrace or .trace file")
    _add_detector_arguments(bank_parser)
    bank_parser.add_argument(
        "--size", type=int, default=16, help="bank member count (default 16)"
    )
    bank_parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (default 3)"
    )
    bank_parser.set_defaults(handler=cmd_bank)

    score_parser = subparsers.add_parser("score", help="score a detector against the oracle")
    score_parser.add_argument("workload", choices=workload_names())
    score_parser.add_argument("--scale", type=float, default=1.0)
    score_parser.add_argument("--mpl", type=int, required=True)
    _add_detector_arguments(score_parser)
    score_parser.set_defaults(handler=cmd_score)

    profile_parser = subparsers.add_parser(
        "profile", help="hot-branch profile of a workload's trace"
    )
    profile_parser.add_argument("workload", choices=workload_names())
    profile_parser.add_argument("--scale", type=float, default=1.0)
    profile_parser.add_argument("--top", type=int, default=10)
    profile_parser.set_defaults(handler=cmd_profile)

    characteristics_parser = subparsers.add_parser(
        "characteristics", help="print Table 1(a) for the workload suite"
    )
    characteristics_parser.add_argument("--scale", type=float, default=1.0)
    characteristics_parser.set_defaults(handler=cmd_characteristics)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run (or warm) the parameter sweep record cache"
    )
    sweep_parser.add_argument("--profile", default="default")
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS, else all cores)",
    )
    sweep_parser.add_argument(
        "--benchmarks",
        nargs="+",
        choices=workload_names(),
        default=None,
        help="subset of workloads (default: all eight)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, help="trace/record cache directory"
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress progress on stderr"
    )
    sweep_parser.add_argument(
        "--profiling", action="store_true",
        help="sample wall time and tracemalloc peak per work chunk",
    )
    sweep_parser.add_argument(
        "--no-bank", action="store_true",
        help="evaluate one run_detector call per grid point instead of "
             "single-pass multi-config banks (same records, slower)",
    )
    sweep_parser.add_argument(
        "--no-kernels", action="store_true",
        help="disable the array-native detector kernels and use the "
             "incremental fused loop everywhere (same records, slower)",
    )
    sweep_parser.add_argument(
        "--no-batched", action="store_true",
        help="run vectorized bank members through independent per-lane "
             "calls instead of the shared batched advancer (same "
             "records, slower)",
    )
    sweep_parser.add_argument(
        "--numba", action="store_true",
        help="compile the weighted similarity kernel with numba when "
             "available (sets REPRO_NUMBA=1; soft-fails to the NumPy "
             "path when numba is not installed — same records either way)",
    )
    sweep_parser.add_argument(
        "--no-mmap", action="store_true",
        help="heap-copy cached traces instead of mapping them read-only "
             "(same records; also settable via REPRO_MMAP=0)",
    )
    sweep_parser.add_argument(
        "--no-store", action="store_true",
        help="bypass the content-addressed chunk store and SQLite result "
             "database; parallel results return over the pipe with the "
             "legacy ordered-delivery barrier (same cache bytes, no "
             "resume, no `repro results`)",
    )
    sweep_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record sweep/bank/kernel spans to FILE as JSONL "
             "(serial evaluation; export with `repro obs trace export`)",
    )
    sweep_parser.add_argument(
        "--families", nargs="+", default=None, metavar="NAME",
        help="also sweep these detector families (focus, newma, ...) — "
             "appends their grid points to the paper grid",
    )
    sweep_parser.set_defaults(handler=cmd_sweep)

    obs_parser = subparsers.add_parser(
        "obs", help="inspect run manifests and event traces"
    )
    obs_subparsers = obs_parser.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_subparsers.add_parser(
        "summary", help="render a sweep's run manifest"
    )
    obs_summary.add_argument(
        "path", nargs="?", default=None,
        help="a .manifest.json (or its sweep .jsonl cache); "
             "default: resolved from --profile/--cache-dir",
    )
    obs_summary.add_argument("--profile", default="default")
    obs_summary.add_argument("--cache-dir", default=None)
    obs_summary.set_defaults(handler=cmd_obs)

    obs_tail = obs_subparsers.add_parser(
        "tail", help="print the last events of a JSONL event trace"
    )
    obs_tail.add_argument("trace", help="an events .jsonl file")
    obs_tail.add_argument(
        "-n", "--count", type=int, default=10, help="events to print (0 = all)"
    )
    obs_tail.add_argument(
        "--validate", action="store_true", help="check events against the schema"
    )
    obs_tail.set_defaults(handler=cmd_obs)

    obs_diff = obs_subparsers.add_parser(
        "diff", help="compare two run manifests"
    )
    obs_diff.add_argument("old", help="baseline manifest .json")
    obs_diff.add_argument("new", help="comparison manifest .json")
    obs_diff.set_defaults(handler=cmd_obs)

    obs_top = obs_subparsers.add_parser(
        "top", help="live serve telemetry: poll a server's stats verb"
    )
    obs_top.add_argument("--host", default="127.0.0.1")
    obs_top.add_argument("--port", type=int, required=True)
    obs_top.add_argument("--interval", type=float, default=1.0,
                         help="seconds between polls (default 1)")
    obs_top.add_argument("--frames", type=int, default=0,
                         help="frames to print before exiting (0 = forever)")
    obs_top.add_argument("--once", action="store_true",
                         help="print one frame and exit")
    obs_top.set_defaults(handler=cmd_obs_top)

    obs_trace = obs_subparsers.add_parser(
        "trace", help="inspect or export a span-trace JSONL file"
    )
    obs_trace_sub = obs_trace.add_subparsers(dest="trace_command", required=True)
    obs_trace_export = obs_trace_sub.add_parser(
        "export", help="export spans (--chrome: the Chrome trace-event format)"
    )
    obs_trace_export.add_argument("spans", help="a .spans.jsonl file")
    obs_trace_export.add_argument(
        "--chrome", action="store_true",
        help="emit the Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    obs_trace_export.add_argument(
        "--out", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    obs_trace_export.set_defaults(handler=cmd_obs_trace)

    serve_parser = subparsers.add_parser(
        "serve", help="run the streaming phase-detection server (TCP)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="0 binds an ephemeral port (printed)")
    serve_parser.add_argument("--max-resident", type=int, default=1024,
                              help="sessions kept hydrated before LRU parking")
    serve_parser.add_argument("--queue-size", type=int, default=8,
                              help="per-session inbound queue bound (chunks)")
    serve_parser.add_argument("--idle-timeout", type=float, default=None,
                              help="park sessions idle this many seconds")
    serve_parser.add_argument("--spool", default=None,
                              help="spool directory for parked checkpoints")
    serve_parser.add_argument("--events", choices=["phase", "all"],
                              default="phase",
                              help="serve phase boundaries only, or all events")
    serve_parser.add_argument("--manifest", default=None,
                              help="write the serve-run manifest here on drain")
    serve_parser.add_argument("--flight-record", default=None, metavar="FILE",
                              help="spool interval telemetry samples to FILE "
                                   "as JSONL (see docs/formats.md)")
    serve_parser.add_argument("--flight-interval", type=float, default=None,
                              help="seconds between flight-recorder samples "
                                   "(enables the recorder; default 1 with "
                                   "--flight-record)")
    serve_parser.add_argument("--trace", default=None, metavar="FILE",
                              help="record session-lifecycle spans to FILE "
                                   "as JSONL on drain")
    serve_parser.set_defaults(handler=cmd_serve)

    serve_bench_parser = subparsers.add_parser(
        "serve-bench",
        help="seeded serving load generator + offline verification",
    )
    serve_bench_parser.add_argument("--sessions", type=int, default=1000)
    serve_bench_parser.add_argument("--elements", type=int, default=2000,
                                    help="elements streamed per session")
    serve_bench_parser.add_argument("--chunk", type=int, default=256)
    serve_bench_parser.add_argument("--source", choices=["suite", "synthetic"],
                                    default="suite")
    serve_bench_parser.add_argument("--scale", type=float, default=0.3,
                                    help="suite workload scale")
    serve_bench_parser.add_argument("--cache-dir", default=None)
    serve_bench_parser.add_argument("--transport", choices=["local", "tcp"],
                                    default="local")
    serve_bench_parser.add_argument("--connections", type=int, default=8,
                                    help="wire connections (tcp transport)")
    serve_bench_parser.add_argument("--max-resident", type=int, default=None)
    serve_bench_parser.add_argument("--queue-size", type=int, default=8)
    serve_bench_parser.add_argument("--seed", type=int, default=17)
    serve_bench_parser.add_argument(
        "--family", default="windowed", metavar="NAME",
        help="detector family the generated sessions run "
             "(default windowed; e.g. focus, newma)",
    )
    serve_bench_parser.add_argument("--no-verify", action="store_true",
                                    help="skip the offline byte comparison")
    serve_bench_parser.add_argument("--park-sessions", type=int, default=64,
                                    help="size of the forced-eviction run "
                                         "(0 skips it)")
    serve_bench_parser.add_argument("--park-max-resident", type=int, default=8)
    serve_bench_parser.add_argument("--json", default=None,
                                    help="also write the full result row here")
    serve_bench_parser.add_argument("--flight-record", default=None,
                                    metavar="FILE",
                                    help="spool the main run's telemetry "
                                         "samples to FILE as JSONL")
    serve_bench_parser.add_argument("--flight-interval", type=float,
                                    default=0.25,
                                    help="seconds between flight samples "
                                         "(default 0.25)")
    serve_bench_parser.set_defaults(handler=cmd_serve_bench)

    serve_stats_parser = subparsers.add_parser(
        "serve-stats",
        help="one-shot stats + healthz of a running phase server",
    )
    serve_stats_parser.add_argument("--host", default="127.0.0.1")
    serve_stats_parser.add_argument("--port", type=int, required=True)
    serve_stats_parser.add_argument("--json", action="store_true",
                                    help="print the raw protocol replies")
    serve_stats_parser.set_defaults(handler=cmd_serve_stats)

    generate_parser = subparsers.add_parser(
        "generate", help="regenerate every table and figure"
    )
    generate_parser.add_argument("--profile", default="default")
    generate_parser.add_argument("--out", default=None)
    generate_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="sweep worker processes (default: REPRO_JOBS, else all cores)",
    )
    generate_parser.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="NAME",
        help="detector families to add (cross-family table/figure)",
    )
    generate_parser.set_defaults(handler=cmd_generate)

    results_parser = subparsers.add_parser(
        "results", help="query the SQLite sweep result database"
    )
    results_subparsers = results_parser.add_subparsers(
        dest="results_command", required=True
    )

    def _add_db_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--profile", default="default")
        sub.add_argument(
            "--cache-dir", default=None,
            help="cache directory holding sweep-<profile>.sqlite",
        )
        sub.add_argument(
            "--db", default=None,
            help="explicit database path (overrides --profile/--cache-dir)",
        )

    results_query = results_subparsers.add_parser(
        "query",
        help="best score per combination of grid dimensions",
    )
    _add_db_arguments(results_query)
    results_query.add_argument(
        "--by", nargs="+", default=["family"], metavar="DIM",
        help="group-by dimensions: benchmark, family, cw_nominal, model, "
             "analyzer, anchor, resize, mpl_nominal (default: family)",
    )
    results_query.add_argument(
        "--metric", default="score",
        help="metric to maximize: score, corrected_score, correlation, "
             "sensitivity, false_positives (default: score)",
    )
    results_query.add_argument("--benchmark", default=None, help="filter")
    results_query.add_argument("--family", default=None, help="filter")
    results_query.add_argument("--model", default=None, help="filter")
    results_query.add_argument("--analyzer", default=None,
                               help="filter (label form, e.g. 'thr=0.6')")
    results_query.add_argument("--anchor", default=None, help="filter")
    results_query.add_argument("--resize", default=None, help="filter")
    results_query.add_argument("--mpl", type=int, default=None,
                               help="filter on mpl_nominal")
    results_query.add_argument("--cw", type=int, default=None,
                               help="filter on cw_nominal")
    results_query.add_argument("--limit", type=int, default=None)
    results_query.add_argument("--json", action="store_true",
                               help="one JSON object per group")
    results_query.set_defaults(handler=cmd_results)

    results_render = results_subparsers.add_parser(
        "render",
        help="regenerate Tables 2(a)-2(b) and Figures 4-8 from the database",
    )
    _add_db_arguments(results_render)
    results_render.add_argument(
        "--out", default=None, help="directory for rendered .txt artifacts"
    )
    results_render.set_defaults(handler=cmd_results)

    results_ingest = results_subparsers.add_parser(
        "ingest",
        help="sync the JSONL record cache into the database",
    )
    _add_db_arguments(results_ingest)
    results_ingest.add_argument(
        "--rebuild", action="store_true",
        help="drop the profile's rows and re-read the whole cache",
    )
    results_ingest.set_defaults(handler=cmd_results)

    results_runs = results_subparsers.add_parser(
        "runs", help="list recorded sweep runs (JSONL)"
    )
    _add_db_arguments(results_runs)
    results_runs.set_defaults(handler=cmd_results)

    results_sql = results_subparsers.add_parser(
        "sql", help="run one read-only SQL statement (JSONL rows)"
    )
    _add_db_arguments(results_sql)
    results_sql.add_argument("statement", help="e.g. 'SELECT ... FROM record_view'")
    results_sql.set_defaults(handler=cmd_results)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(verbosity=args.verbose - args.quiet_global)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
