"""MiniLang lexer.

MiniLang is the small structured language the workloads are written in;
it compiles to MiniVM bytecode.  The lexer produces a flat token stream
with line/column positions for error reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.vm.errors import MiniLangSyntaxError

KEYWORDS = frozenset({"fn", "var", "if", "else", "while", "for", "return", "halt"})

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = ("==", "!=", "<=", ">=", "&&", "||")
_SINGLE_OPS = "+-*/%<>!=(){},;"


class TokenKind(enum.Enum):
    """Token categories produced by the lexer."""

    INT = "int"
    NAME = "name"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniLang ``source``; appends a terminating EOF token.

    Raises:
        MiniLangSyntaxError: on any character that starts no token.
    """
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            newline = source.find("\n", index)
            index = length if newline == -1 else newline
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            yield Token(TokenKind.INT, text, line, column)
            column += len(text)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.NAME
            yield Token(kind, text, line, column)
            column += len(text)
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, index):
                yield Token(TokenKind.OP, op, line, column)
                index += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_OPS:
            yield Token(TokenKind.OP, char, line, column)
            index += 1
            column += 1
            continue
        raise MiniLangSyntaxError(f"unexpected character {char!r}", line, column)
    yield Token(TokenKind.EOF, "", line, column)
