"""Error hierarchy for the MiniVM substrate."""

from __future__ import annotations


class VMError(Exception):
    """Base class for all MiniVM errors."""


class AssemblyError(VMError):
    """Raised by the assembler on malformed assembly source."""

    def __init__(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        super().__init__(f"{prefix}{message}")
        self.line = line


class MiniLangSyntaxError(VMError):
    """Raised by the MiniLang lexer/parser on malformed source."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class CompileError(VMError):
    """Raised by the MiniLang compiler on semantic errors."""


class ValidationError(VMError):
    """Raised when a Program fails static validation."""


class ExecutionError(VMError):
    """Raised by the interpreter on a runtime fault."""


class StackOverflowError(ExecutionError):
    """Raised when the call stack exceeds the configured limit."""


class FuelExhaustedError(ExecutionError):
    """Raised when execution exceeds its instruction budget."""
