"""Trace sinks: where the interpreter's instrumentation events go.

The interpreter is generic over a sink.  Three sinks are provided:

- :class:`CollectingSink` — materializes both the branch trace and the
  call-loop trace (the configuration the workload suite uses).
- :class:`CountingSink` — counts events without storing them (cheap
  smoke runs).
- :class:`NullSink` — discards everything (pure-execution timing).
"""

from __future__ import annotations

from typing import List

from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind
from repro.profiles.trace import BranchTrace


class NullSink:
    """Discards all instrumentation events."""

    def branch(self, element: int) -> None:
        """Record one dynamic conditional branch (ignored)."""

    def call_event(self, kind: EventKind, ident: int, time: int) -> None:
        """Record one call-loop event (ignored)."""


class CountingSink:
    """Counts events by kind without storing them."""

    def __init__(self) -> None:
        self.num_branches = 0
        self.num_method_entries = 0
        self.num_method_exits = 0
        self.num_loop_entries = 0
        self.num_loop_exits = 0

    def branch(self, element: int) -> None:
        """Count one dynamic conditional branch."""
        self.num_branches += 1

    def call_event(self, kind: EventKind, ident: int, time: int) -> None:
        """Count one call-loop event."""
        if kind == EventKind.METHOD_ENTRY:
            self.num_method_entries += 1
        elif kind == EventKind.METHOD_EXIT:
            self.num_method_exits += 1
        elif kind == EventKind.LOOP_ENTRY:
            self.num_loop_entries += 1
        else:
            self.num_loop_exits += 1


class CollectingSink:
    """Materializes the branch trace and the call-loop trace."""

    def __init__(self) -> None:
        self.elements: List[int] = []
        self.events: List[CallLoopEvent] = []

    def branch(self, element: int) -> None:
        """Append one dynamic conditional branch profile element."""
        self.elements.append(element)

    def call_event(self, kind: EventKind, ident: int, time: int) -> None:
        """Append one call-loop event stamped with the branch-trace offset."""
        self.events.append(CallLoopEvent(kind, ident, time))

    def branch_trace(self, name: str = "") -> BranchTrace:
        """Build the collected :class:`BranchTrace`."""
        return BranchTrace(self.elements, name=name)

    def call_loop_trace(self, name: str = "") -> CallLoopTrace:
        """Build the collected :class:`CallLoopTrace`."""
        return CallLoopTrace(self.events, name=name, num_branches=len(self.elements))
