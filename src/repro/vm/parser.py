"""MiniLang recursive-descent parser.

Grammar (EBNF)::

    module     := functiondef*
    functiondef:= 'fn' NAME '(' [NAME (',' NAME)*] ')' block
    block      := '{' stmt* '}'
    stmt       := 'var' NAME '=' expr ';'
               | NAME '=' expr ';'
               | 'if' '(' expr ')' block ['else' (block | ifstmt)]
               | 'while' '(' expr ')' block
               | 'for' '(' [simple] ';' [expr] ';' [simple] ')' block
               | 'return' [expr] ';'
               | 'halt' ';'
               | expr ';'
    simple     := 'var' NAME '=' expr | NAME '=' expr | expr
    expr       := or
    or         := and ('||' and)*
    and        := equality ('&&' equality)*
    equality   := relational (('==' | '!=') relational)*
    relational := additive (('<' | '<=' | '>' | '>=') additive)*
    additive   := term (('+' | '-') term)*
    term       := unary (('*' | '/' | '%') unary)*
    unary      := ('-' | '!') unary | primary
    primary    := INT | NAME | NAME '(' [expr (',' expr)*] ')' | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.vm.ast_nodes import (
    Assign,
    Binary,
    Call,
    ExprStmt,
    For,
    FunctionDef,
    Halt,
    If,
    IntLiteral,
    Module,
    Name,
    Return,
    Unary,
    VarDecl,
    While,
)
from repro.vm.errors import MiniLangSyntaxError
from repro.vm.lexer import Token, TokenKind, tokenize


def parse(source: str) -> Module:
    """Parse MiniLang ``source`` into a :class:`Module`.

    Raises:
        MiniLangSyntaxError: on any syntax error.
    """
    return _Parser(tokenize(source)).parse_module()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._loop_counter = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind is kind and (text is None or token.text == text)

    def _match(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        token = self._current
        wanted = text if text is not None else kind.value
        raise MiniLangSyntaxError(
            f"expected {wanted!r}, got {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _fresh_loop_label(self, line: int) -> str:
        self._loop_counter += 1
        return f"loop_{line}_{self._loop_counter}"

    # -- grammar ---------------------------------------------------------------

    def parse_module(self) -> Module:
        functions: List[FunctionDef] = []
        while not self._check(TokenKind.EOF):
            functions.append(self._function())
        if not functions:
            raise MiniLangSyntaxError("empty module", 1, 1)
        return Module(line=1, functions=tuple(functions))

    def _function(self) -> FunctionDef:
        start = self._expect(TokenKind.KEYWORD, "fn")
        name = self._expect(TokenKind.NAME).text
        self._expect(TokenKind.OP, "(")
        params: List[str] = []
        if not self._check(TokenKind.OP, ")"):
            params.append(self._expect(TokenKind.NAME).text)
            while self._match(TokenKind.OP, ","):
                params.append(self._expect(TokenKind.NAME).text)
        self._expect(TokenKind.OP, ")")
        body = self._block()
        if len(set(params)) != len(params):
            raise MiniLangSyntaxError(
                f"duplicate parameter in function {name!r}", start.line, start.column
            )
        return FunctionDef(line=start.line, name=name, params=tuple(params), body=body)

    def _block(self) -> Tuple:
        self._expect(TokenKind.OP, "{")
        statements = []
        while not self._check(TokenKind.OP, "}"):
            if self._check(TokenKind.EOF):
                token = self._current
                raise MiniLangSyntaxError("unterminated block", token.line, token.column)
            statements.append(self._statement())
        self._expect(TokenKind.OP, "}")
        return tuple(statements)

    def _statement(self):
        token = self._current
        if self._check(TokenKind.KEYWORD, "var"):
            stmt = self._simple_statement()
            self._expect(TokenKind.OP, ";")
            return stmt
        if self._check(TokenKind.KEYWORD, "if"):
            return self._if_statement()
        if self._check(TokenKind.KEYWORD, "while"):
            return self._while_statement()
        if self._check(TokenKind.KEYWORD, "for"):
            return self._for_statement()
        if self._match(TokenKind.KEYWORD, "return"):
            value = None
            if not self._check(TokenKind.OP, ";"):
                value = self._expression()
            self._expect(TokenKind.OP, ";")
            return Return(line=token.line, value=value)
        if self._match(TokenKind.KEYWORD, "halt"):
            self._expect(TokenKind.OP, ";")
            return Halt(line=token.line)
        stmt = self._simple_statement()
        self._expect(TokenKind.OP, ";")
        return stmt

    def _simple_statement(self):
        """A statement without its trailing ';': var decl, assignment, or expr."""
        token = self._current
        if self._match(TokenKind.KEYWORD, "var"):
            ident = self._expect(TokenKind.NAME).text
            self._expect(TokenKind.OP, "=")
            return VarDecl(line=token.line, ident=ident, value=self._expression())
        if (
            self._check(TokenKind.NAME)
            and self._tokens[self._pos + 1].kind is TokenKind.OP
            and self._tokens[self._pos + 1].text == "="
        ):
            ident = self._advance().text
            self._advance()  # '='
            return Assign(line=token.line, ident=ident, value=self._expression())
        return ExprStmt(line=token.line, value=self._expression())

    def _if_statement(self):
        token = self._expect(TokenKind.KEYWORD, "if")
        self._expect(TokenKind.OP, "(")
        cond = self._expression()
        self._expect(TokenKind.OP, ")")
        then_body = self._block()
        else_body: Tuple = ()
        if self._match(TokenKind.KEYWORD, "else"):
            if self._check(TokenKind.KEYWORD, "if"):
                else_body = (self._if_statement(),)
            else:
                else_body = self._block()
        return If(line=token.line, cond=cond, then_body=then_body, else_body=else_body)

    def _while_statement(self):
        token = self._expect(TokenKind.KEYWORD, "while")
        self._expect(TokenKind.OP, "(")
        cond = self._expression()
        self._expect(TokenKind.OP, ")")
        body = self._block()
        return While(
            line=token.line, cond=cond, body=body, label=self._fresh_loop_label(token.line)
        )

    def _for_statement(self):
        token = self._expect(TokenKind.KEYWORD, "for")
        self._expect(TokenKind.OP, "(")
        init = None
        if not self._check(TokenKind.OP, ";"):
            init = self._simple_statement()
        self._expect(TokenKind.OP, ";")
        cond = None
        if not self._check(TokenKind.OP, ";"):
            cond = self._expression()
        self._expect(TokenKind.OP, ";")
        step = None
        if not self._check(TokenKind.OP, ")"):
            step = self._simple_statement()
        self._expect(TokenKind.OP, ")")
        body = self._block()
        return For(
            line=token.line,
            init=init,
            cond=cond,
            step=step,
            body=body,
            label=self._fresh_loop_label(token.line),
        )

    # -- expressions -------------------------------------------------------------

    def _expression(self):
        return self._or()

    def _binary_chain(self, sub, ops):
        left = sub()
        while self._current.kind is TokenKind.OP and self._current.text in ops:
            op = self._advance()
            right = sub()
            left = Binary(line=op.line, op=op.text, left=left, right=right)
        return left

    def _or(self):
        return self._binary_chain(self._and, ("||",))

    def _and(self):
        return self._binary_chain(self._equality, ("&&",))

    def _equality(self):
        return self._binary_chain(self._relational, ("==", "!="))

    def _relational(self):
        return self._binary_chain(self._additive, ("<", "<=", ">", ">="))

    def _additive(self):
        return self._binary_chain(self._term, ("+", "-"))

    def _term(self):
        return self._binary_chain(self._unary, ("*", "/", "%"))

    def _unary(self):
        token = self._current
        if token.kind is TokenKind.OP and token.text in ("-", "!"):
            self._advance()
            return Unary(line=token.line, op=token.text, operand=self._unary())
        return self._primary()

    def _primary(self):
        token = self._current
        if token.kind is TokenKind.INT:
            self._advance()
            return IntLiteral(line=token.line, value=int(token.text))
        if token.kind is TokenKind.NAME:
            self._advance()
            if self._match(TokenKind.OP, "("):
                args = []
                if not self._check(TokenKind.OP, ")"):
                    args.append(self._expression())
                    while self._match(TokenKind.OP, ","):
                        args.append(self._expression())
                self._expect(TokenKind.OP, ")")
                return Call(line=token.line, callee=token.text, args=tuple(args))
            return Name(line=token.line, ident=token.text)
        if self._match(TokenKind.OP, "("):
            expr = self._expression()
            self._expect(TokenKind.OP, ")")
            return expr
        raise MiniLangSyntaxError(
            f"expected an expression, got {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )
