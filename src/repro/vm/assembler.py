"""MiniVM assembler and disassembler.

The assembly format is line-oriented::

    ; comment
    .func main params=0 locals=2
      push 0
      store 0
    head:
      load 0
      push 10
      lt
      br_ifz done
      loop_begin body_loop
      ...
      loop_end body_loop
      load 0
      push 1
      add
      store 0
      jmp head
    done:
      push 0
      ret
    .endfunc

Jump targets are labels; ``call`` takes a function *name* and an arity;
``loop_begin``/``loop_end`` take a loop *label* (ids are assigned
program-wide in first-seen order).  The assembler resolves all names and
produces a validated :class:`~repro.vm.program.Program`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vm.errors import AssemblyError
from repro.vm.isa import (
    BINARY_ARG_OPS,
    JUMP_OPS,
    MNEMONICS,
    OPCODES_BY_MNEMONIC,
    UNARY_ARG_OPS,
    Instruction,
    Opcode,
)
from repro.vm.program import Function, LoopInfo, Program


class _PendingFunction:
    def __init__(self, name: str, num_params: int, num_locals: int, line: int) -> None:
        self.name = name
        self.num_params = num_params
        self.num_locals = num_locals
        self.line = line
        # (mnemonic opcode, raw operand strings, source line)
        self.raw_code: List[Tuple[Opcode, List[str], int]] = []
        self.labels: Dict[str, int] = {}


def assemble(source: str, entry: str = "main", name: str = "") -> Program:
    """Assemble MiniVM assembly ``source`` into a validated Program.

    Raises:
        AssemblyError: on any syntactic or resolution error.
    """
    pending: List[_PendingFunction] = []
    current: Optional[_PendingFunction] = None

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".func"):
            if current is not None:
                raise AssemblyError("nested .func", line_no)
            current = _parse_func_header(line, line_no)
        elif line == ".endfunc":
            if current is None:
                raise AssemblyError(".endfunc outside a function", line_no)
            pending.append(current)
            current = None
        elif line.endswith(":"):
            if current is None:
                raise AssemblyError("label outside a function", line_no)
            label = line[:-1].strip()
            if not label.isidentifier():
                raise AssemblyError(f"bad label {label!r}", line_no)
            if label in current.labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no)
            current.labels[label] = len(current.raw_code)
        else:
            if current is None:
                raise AssemblyError("instruction outside a function", line_no)
            parts = line.split()
            mnemonic = parts[0].lower()
            if mnemonic not in OPCODES_BY_MNEMONIC:
                raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no)
            current.raw_code.append(
                (OPCODES_BY_MNEMONIC[mnemonic], parts[1:], line_no)
            )

    if current is not None:
        raise AssemblyError(f"unterminated .func {current.name!r}", current.line)
    if not pending:
        raise AssemblyError("no functions defined")

    func_ids = {pf.name: index for index, pf in enumerate(pending)}
    if len(func_ids) != len(pending):
        raise AssemblyError("duplicate function names")

    loop_ids: Dict[Tuple[int, str], int] = {}
    loops: List[LoopInfo] = []
    functions: List[Function] = []
    for pf in pending:
        code = _resolve(pf, func_ids, loop_ids, loops, func_ids[pf.name], pending)
        functions.append(
            Function(
                name=pf.name,
                func_id=func_ids[pf.name],
                num_params=pf.num_params,
                num_locals=pf.num_locals,
                code=code,
            )
        )
    return Program(functions, entry=entry, loops=loops, name=name)


def _parse_func_header(line: str, line_no: int) -> _PendingFunction:
    parts = line.split()
    if len(parts) < 2:
        raise AssemblyError(".func requires a name", line_no)
    fname = parts[1]
    if not fname.isidentifier():
        raise AssemblyError(f"bad function name {fname!r}", line_no)
    num_params = 0
    num_locals: Optional[int] = None
    for option in parts[2:]:
        if "=" not in option:
            raise AssemblyError(f"bad .func option {option!r}", line_no)
        key, _, value = option.partition("=")
        try:
            number = int(value)
        except ValueError:
            raise AssemblyError(f"bad .func option value {option!r}", line_no) from None
        if key == "params":
            num_params = number
        elif key == "locals":
            num_locals = number
        else:
            raise AssemblyError(f"unknown .func option {key!r}", line_no)
    if num_locals is None:
        num_locals = num_params
    return _PendingFunction(fname, num_params, num_locals, line_no)


def _resolve(
    pf: _PendingFunction,
    func_ids: Dict[str, int],
    loop_ids: Dict[Tuple[int, str], int],
    loops: List[LoopInfo],
    this_func_id: int,
    pending: List[_PendingFunction],
) -> List[Instruction]:
    code: List[Instruction] = []
    for op, operands, line_no in pf.raw_code:
        if op in JUMP_OPS:
            _expect_operands(op, operands, 1, line_no)
            target = operands[0]
            if target not in pf.labels:
                raise AssemblyError(f"unknown label {target!r}", line_no)
            code.append(Instruction(op, pf.labels[target]))
        elif op == Opcode.CALL:
            _expect_operands(op, operands, 2, line_no)
            callee = operands[0]
            if callee not in func_ids:
                raise AssemblyError(f"call to unknown function {callee!r}", line_no)
            arity = _int_operand(operands[1], line_no)
            code.append(Instruction(op, func_ids[callee], arity))
        elif op in (Opcode.LOOP_BEGIN, Opcode.LOOP_END):
            _expect_operands(op, operands, 1, line_no)
            key = (this_func_id, operands[0])
            if key not in loop_ids:
                loop_ids[key] = len(loops)
                loops.append(
                    LoopInfo(loop_id=len(loops), function_id=this_func_id, label=operands[0])
                )
            code.append(Instruction(op, loop_ids[key]))
        elif op in UNARY_ARG_OPS:
            _expect_operands(op, operands, 1, line_no)
            code.append(Instruction(op, _int_operand(operands[0], line_no)))
        elif op in BINARY_ARG_OPS:
            _expect_operands(op, operands, 2, line_no)
            code.append(
                Instruction(
                    op,
                    _int_operand(operands[0], line_no),
                    _int_operand(operands[1], line_no),
                )
            )
        else:
            _expect_operands(op, operands, 0, line_no)
            code.append(Instruction(op))
    return code


def _expect_operands(op: Opcode, operands: List[str], count: int, line_no: int) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"{MNEMONICS[op]} takes {count} operand(s), got {len(operands)}", line_no
        )


def _int_operand(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"expected integer operand, got {text!r}", line_no) from None


def disassemble(program: Program) -> str:
    """Render ``program`` back to assembly text (labels are synthesized)."""
    loop_labels = {loop.loop_id: loop.label or f"loop{loop.loop_id}" for loop in program.loops}
    lines: List[str] = []
    for func in program.functions:
        lines.append(f".func {func.name} params={func.num_params} locals={func.num_locals}")
        targets = sorted(
            {instr.arg for instr in func.code if instr.op in JUMP_OPS}
        )
        label_for = {pc: f"L{index}" for index, pc in enumerate(targets)}
        for pc, instr in enumerate(func.code):
            if pc in label_for:
                lines.append(f"{label_for[pc]}:")
            if instr.op in JUMP_OPS:
                lines.append(f"  {MNEMONICS[instr.op]} {label_for[instr.arg]}")
            elif instr.op == Opcode.CALL:
                callee = program[instr.arg].name
                lines.append(f"  call {callee} {instr.arg2}")
            elif instr.op in (Opcode.LOOP_BEGIN, Opcode.LOOP_END):
                lines.append(f"  {MNEMONICS[instr.op]} {loop_labels.get(instr.arg, instr.arg)}")
            else:
                lines.append(f"  {instr}")
        if len(func.code) in label_for:
            lines.append(f"{label_for[len(func.code)]}:")
        lines.append(".endfunc")
        lines.append("")
    return "\n".join(lines)
