"""The instrumented MiniVM interpreter.

Executes a validated :class:`~repro.vm.program.Program` while emitting

- one packed profile element per executed **conditional** branch
  (``BR_IF`` / ``BR_IFZ``), and
- call-loop events on function entry/exit and at the ``LOOP_BEGIN`` /
  ``LOOP_END`` markers, each stamped with the branch count at the time
  of the event,

which together are exactly the two traces the paper's modified Jikes RVM
produced.  The interpreter is deterministic: the only source of
"randomness" is the ``RND`` opcode, driven by a seeded 64-bit LCG.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.profiles.callloop import EventKind
from repro.profiles.element import encode_element
from repro.vm.errors import ExecutionError, FuelExhaustedError, StackOverflowError
from repro.vm.program import Program
from repro.vm.tracing import NullSink

_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407
_MASK64 = (1 << 64) - 1

_ENTRY_KIND = EventKind.METHOD_ENTRY
_EXIT_KIND = EventKind.METHOD_EXIT
_LOOP_ENTRY_KIND = EventKind.LOOP_ENTRY
_LOOP_EXIT_KIND = EventKind.LOOP_EXIT


class Interpreter:
    """Executes MiniVM programs with instrumentation.

    Args:
        max_call_depth: call-stack limit (recursion guard).
        max_fuel: instruction budget; ``None`` means unlimited.
    """

    def __init__(self, max_call_depth: int = 2_000, max_fuel: Optional[int] = None) -> None:
        self.max_call_depth = max_call_depth
        self.max_fuel = max_fuel

    def run(
        self,
        program: Program,
        sink=None,
        args: Optional[List[int]] = None,
        seed: int = 0x5EED,
    ) -> int:
        """Run ``program`` from its entry function and return its result.

        Args:
            program: a validated program.
            sink: a trace sink (defaults to :class:`NullSink`).
            args: integer arguments for the entry function.
            seed: seed for the ``RND`` opcode's LCG.

        Returns:
            The integer returned by the entry function (0 if it halts).

        Raises:
            ExecutionError: on runtime faults (bad arity, division by
                zero, stack underflow, call-depth or fuel exhaustion).
        """
        sink = sink if sink is not None else NullSink()
        entry = program.entry_function
        args = list(args or [])
        if len(args) != entry.num_params:
            raise ExecutionError(
                f"entry function {entry.name!r} takes {entry.num_params} args, "
                f"got {len(args)}"
            )

        # Flatten instructions into tuples once per run for dispatch speed.
        flat_code: List[List[tuple]] = [
            [(int(i.op), i.arg, i.arg2) for i in f.code] for f in program.functions
        ]
        num_locals = [f.num_locals for f in program.functions]

        branch = sink.branch
        call_event = sink.call_event

        memory: Dict[int, int] = {}
        rng_state = (seed ^ 0x9E3779B97F4A7C15) & _MASK64

        branch_count = 0
        func_id = entry.func_id
        code = flat_code[func_id]
        pc = 0
        locals_: List[int] = args + [0] * (entry.num_locals - entry.num_params)
        stack: List[int] = []
        # Loops currently open in this frame, so RET/HALT can emit the
        # LOOP_EXIT events an early return would otherwise skip.
        open_loops: List[int] = []
        # Call stack frames: (func_id, return pc, locals, operand stack, open loops)
        frames: List[tuple] = []
        fuel = self.max_fuel if self.max_fuel is not None else -1

        call_event(_ENTRY_KIND, func_id, 0)

        while True:
            if fuel == 0:
                raise FuelExhaustedError(
                    f"instruction budget exhausted in {program[func_id].name}@{pc}"
                )
            fuel -= 1
            try:
                op, arg, arg2 = code[pc]
            except IndexError:
                raise ExecutionError(
                    f"pc {pc} out of range in function {program[func_id].name!r}"
                ) from None
            pc += 1

            if op == 0:  # PUSH
                stack.append(arg)
            elif op == 3:  # LOAD
                stack.append(locals_[arg])
            elif op == 4:  # STORE
                locals_[arg] = stack.pop()
            elif op == 19:  # BR_IF
                taken = stack.pop() != 0
                branch(encode_element(func_id, pc - 1, taken))
                branch_count += 1
                if taken:
                    pc = arg
            elif op == 20:  # BR_IFZ
                taken = stack.pop() == 0
                branch(encode_element(func_id, pc - 1, taken))
                branch_count += 1
                if taken:
                    pc = arg
            elif op == 18:  # JMP
                pc = arg
            elif op == 5:  # ADD
                right = stack.pop()
                stack[-1] += right
            elif op == 6:  # SUB
                right = stack.pop()
                stack[-1] -= right
            elif op == 7:  # MUL
                right = stack.pop()
                stack[-1] *= right
            elif op == 8:  # DIV
                right = stack.pop()
                if right == 0:
                    raise ExecutionError(f"division by zero in {program[func_id].name}")
                left = stack[-1]
                stack[-1] = -(-left // right) if (left < 0) != (right < 0) else left // right
            elif op == 9:  # MOD
                right = stack.pop()
                if right == 0:
                    raise ExecutionError(f"modulo by zero in {program[func_id].name}")
                left = stack[-1]
                quotient = -(-left // right) if (left < 0) != (right < 0) else left // right
                stack[-1] = left - quotient * right
            elif op == 12:  # EQ
                right = stack.pop()
                stack[-1] = 1 if stack[-1] == right else 0
            elif op == 13:  # NE
                right = stack.pop()
                stack[-1] = 1 if stack[-1] != right else 0
            elif op == 14:  # LT
                right = stack.pop()
                stack[-1] = 1 if stack[-1] < right else 0
            elif op == 15:  # LE
                right = stack.pop()
                stack[-1] = 1 if stack[-1] <= right else 0
            elif op == 16:  # GT
                right = stack.pop()
                stack[-1] = 1 if stack[-1] > right else 0
            elif op == 17:  # GE
                right = stack.pop()
                stack[-1] = 1 if stack[-1] >= right else 0
            elif op == 10:  # NEG
                stack[-1] = -stack[-1]
            elif op == 11:  # NOT
                stack[-1] = 1 if stack[-1] == 0 else 0
            elif op == 1:  # POP
                stack.pop()
            elif op == 2:  # DUP
                stack.append(stack[-1])
            elif op == 21:  # CALL
                if len(frames) >= self.max_call_depth:
                    raise StackOverflowError(
                        f"call depth {self.max_call_depth} exceeded calling "
                        f"{program[arg].name!r}"
                    )
                new_locals = [0] * num_locals[arg]
                if arg2:
                    new_locals[:arg2] = stack[-arg2:]
                    del stack[-arg2:]
                frames.append((func_id, pc, locals_, stack, open_loops))
                func_id = arg
                code = flat_code[func_id]
                pc = 0
                locals_ = new_locals
                stack = []
                open_loops = []
                call_event(_ENTRY_KIND, func_id, branch_count)
            elif op == 22:  # RET
                result = stack.pop() if stack else 0
                while open_loops:
                    call_event(_LOOP_EXIT_KIND, open_loops.pop(), branch_count)
                call_event(_EXIT_KIND, func_id, branch_count)
                if not frames:
                    return result
                func_id, pc, locals_, stack, open_loops = frames.pop()
                code = flat_code[func_id]
                stack.append(result)
            elif op == 24:  # LOOP_BEGIN
                open_loops.append(arg)
                call_event(_LOOP_ENTRY_KIND, arg, branch_count)
            elif op == 25:  # LOOP_END
                if open_loops:
                    open_loops.pop()
                call_event(_LOOP_EXIT_KIND, arg, branch_count)
            elif op == 26:  # RND
                bound = stack.pop()
                if bound <= 0:
                    raise ExecutionError(f"rnd bound must be positive, got {bound}")
                rng_state = (rng_state * _LCG_MUL + _LCG_ADD) & _MASK64
                stack.append((rng_state >> 33) % bound)
            elif op == 27:  # GLOAD
                stack.append(memory.get(stack.pop(), 0))
            elif op == 28:  # GSTORE
                addr = stack.pop()
                memory[addr] = stack.pop()
            elif op == 23:  # HALT
                while frames:
                    while open_loops:
                        call_event(_LOOP_EXIT_KIND, open_loops.pop(), branch_count)
                    call_event(_EXIT_KIND, func_id, branch_count)
                    frame = frames.pop()
                    func_id = frame[0]
                    open_loops = frame[4]
                while open_loops:
                    call_event(_LOOP_EXIT_KIND, open_loops.pop(), branch_count)
                call_event(_EXIT_KIND, func_id, branch_count)
                return 0
            else:
                raise ExecutionError(f"unknown opcode {op}")


def run_program(program: Program, sink=None, args=None, seed: int = 0x5EED, **kwargs) -> int:
    """Convenience wrapper: run ``program`` with a fresh :class:`Interpreter`."""
    return Interpreter(**kwargs).run(program, sink=sink, args=args, seed=seed)
