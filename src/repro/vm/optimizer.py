"""MiniLang/MiniVM optimizations: AST constant folding and a bytecode
peephole pass.

Opt-in (``compile_source(..., optimize=True)`` via
:func:`optimize_module` / :func:`peephole`): the workload suite compiles
unoptimized so traces stay byte-stable, but the optimizer demonstrates —
and the tests verify — that the instrumentation design survives a real
compiler pass: program *results* are preserved exactly, while folded
branches legitimately disappear from the profile (just as a JIT's
optimized code would emit fewer profile events).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.vm.ast_nodes import (
    Assign,
    Binary,
    Call,
    ExprStmt,
    For,
    FunctionDef,
    Halt,
    If,
    IntLiteral,
    Module,
    Name,
    Return,
    Unary,
    VarDecl,
    While,
)
from repro.vm.isa import Instruction, Opcode
from repro.vm.program import Function, Program


def _trunc_div(left: int, right: int) -> int:
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


def fold_expr(expr):
    """Recursively constant-fold one expression."""
    if isinstance(expr, (IntLiteral, Name)):
        return expr
    if isinstance(expr, Unary):
        operand = fold_expr(expr.operand)
        if isinstance(operand, IntLiteral):
            if expr.op == "-":
                return IntLiteral(line=expr.line, value=-operand.value)
            return IntLiteral(line=expr.line, value=int(operand.value == 0))
        return Unary(line=expr.line, op=expr.op, operand=operand)
    if isinstance(expr, Binary):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if isinstance(left, IntLiteral) and isinstance(right, IntLiteral):
            if expr.op in _FOLDABLE:
                return IntLiteral(line=expr.line, value=_FOLDABLE[expr.op](left.value, right.value))
            if expr.op in ("/", "%") and right.value != 0:
                quotient = _trunc_div(left.value, right.value)
                value = quotient if expr.op == "/" else left.value - quotient * right.value
                return IntLiteral(line=expr.line, value=value)
            if expr.op == "&&":
                return IntLiteral(
                    line=expr.line, value=int(left.value != 0 and right.value != 0)
                )
            if expr.op == "||":
                return IntLiteral(
                    line=expr.line, value=int(left.value != 0 or right.value != 0)
                )
        # Short-circuit with a constant left side folds structurally.
        if isinstance(left, IntLiteral) and expr.op == "&&" and left.value == 0:
            return IntLiteral(line=expr.line, value=0)
        if isinstance(left, IntLiteral) and expr.op == "||" and left.value != 0:
            return IntLiteral(line=expr.line, value=1)
        return Binary(line=expr.line, op=expr.op, left=left, right=right)
    if isinstance(expr, Call):
        return Call(
            line=expr.line,
            callee=expr.callee,
            args=tuple(fold_expr(a) for a in expr.args),
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _fold_stmt(stmt) -> Optional[object]:
    """Fold one statement; returns None when the statement folds away."""
    if isinstance(stmt, VarDecl):
        return VarDecl(line=stmt.line, ident=stmt.ident, value=fold_expr(stmt.value))
    if isinstance(stmt, Assign):
        return Assign(line=stmt.line, ident=stmt.ident, value=fold_expr(stmt.value))
    if isinstance(stmt, ExprStmt):
        value = fold_expr(stmt.value)
        if isinstance(value, IntLiteral):
            return None  # pure constant for effect: dead
        return ExprStmt(line=stmt.line, value=value)
    if isinstance(stmt, If):
        cond = fold_expr(stmt.cond)
        then_body = _fold_body(stmt.then_body)
        else_body = _fold_body(stmt.else_body)
        if isinstance(cond, IntLiteral):
            # The branch is static: splice the chosen arm into the
            # enclosing body.  Arms are block-scoped, so splicing is
            # only safe when the arm declares no variables; otherwise
            # keep the (now constant-condition) If node.
            chosen = then_body if cond.value != 0 else else_body
            if not _declares(chosen):
                return _Splice(chosen)
        return If(line=stmt.line, cond=cond, then_body=then_body, else_body=else_body)
    if isinstance(stmt, While):
        cond = fold_expr(stmt.cond)
        if isinstance(cond, IntLiteral) and cond.value == 0:
            return None  # the loop never runs
        return While(line=stmt.line, cond=cond, body=_fold_body(stmt.body), label=stmt.label)
    if isinstance(stmt, For):
        return For(
            line=stmt.line,
            init=_fold_stmt(stmt.init) if stmt.init is not None else None,
            cond=fold_expr(stmt.cond) if stmt.cond is not None else None,
            step=_fold_stmt(stmt.step) if stmt.step is not None else None,
            body=_fold_body(stmt.body),
            label=stmt.label,
        )
    if isinstance(stmt, Return):
        value = fold_expr(stmt.value) if stmt.value is not None else None
        return Return(line=stmt.line, value=value)
    if isinstance(stmt, Halt):
        return stmt
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


class _Splice:
    """Marker: replace a statement with an inline sequence."""

    def __init__(self, statements: Tuple) -> None:
        self.statements = statements


def _declares(body) -> bool:
    return any(isinstance(s, VarDecl) for s in body)


def _fold_body(body) -> Tuple:
    folded: List = []
    for stmt in body:
        result = _fold_stmt(stmt)
        if result is None:
            continue
        if isinstance(result, _Splice):
            folded.extend(result.statements)
        else:
            folded.append(result)
    return tuple(folded)


def optimize_module(module: Module) -> Module:
    """Constant-fold every function in ``module``."""
    return Module(
        line=module.line,
        functions=tuple(
            FunctionDef(
                line=f.line, name=f.name, params=f.params, body=_fold_body(f.body)
            )
            for f in module.functions
        ),
    )


# -- bytecode peephole -----------------------------------------------------------

_BINOP_EVAL = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.EQ: lambda a, b: int(a == b),
    Opcode.NE: lambda a, b: int(a != b),
    Opcode.LT: lambda a, b: int(a < b),
    Opcode.LE: lambda a, b: int(a <= b),
    Opcode.GT: lambda a, b: int(a > b),
    Opcode.GE: lambda a, b: int(a >= b),
}


def peephole(program: Program) -> Program:
    """Local bytecode rewrites that cannot change observable behavior.

    Currently: ``PUSH a; PUSH b; <pure binop>`` → ``PUSH (a op b)`` and
    ``PUSH x; POP`` → (nothing).  Jump targets are preserved by only
    rewriting windows no jump lands inside.
    """
    functions = []
    for func in program.functions:
        functions.append(
            Function(
                name=func.name,
                func_id=func.func_id,
                num_params=func.num_params,
                num_locals=func.num_locals,
                code=_peephole_code(func.code),
            )
        )
    return Program(functions, entry=program.entry, loops=program.loops, name=program.name)


def _peephole_code(code: List[Instruction]) -> List[Instruction]:
    targets = {
        instr.arg
        for instr in code
        if instr.op in (Opcode.JMP, Opcode.BR_IF, Opcode.BR_IFZ)
    }
    changed = True
    while changed:
        changed = False
        result: List[Instruction] = []
        remap: List[int] = []  # old pc -> new pc
        index = 0
        while index < len(code):
            window_clear = not any(
                (index + offset) in targets for offset in (1, 2)
            )
            if (
                window_clear
                and index + 2 < len(code)
                and code[index].op is Opcode.PUSH
                and code[index + 1].op is Opcode.PUSH
                and code[index + 2].op in _BINOP_EVAL
            ):
                folded = _BINOP_EVAL[code[index + 2].op](
                    code[index].arg, code[index + 1].arg
                )
                remap.extend([len(result)] * 3)
                result.append(Instruction(Opcode.PUSH, folded))
                index += 3
                changed = True
                continue
            if (
                index + 1 < len(code)
                and (index + 1) not in targets
                and code[index].op is Opcode.PUSH
                and code[index + 1].op is Opcode.POP
            ):
                remap.extend([len(result)] * 2)
                index += 2
                changed = True
                continue
            remap.append(len(result))
            result.append(code[index])
            index += 1
        remap.append(len(result))  # one-past-the-end maps too
        code = [
            Instruction(i.op, remap[i.arg], i.arg2)
            if i.op in (Opcode.JMP, Opcode.BR_IF, Opcode.BR_IFZ)
            else i
            for i in result
        ]
        targets = {
            instr.arg
            for instr in code
            if instr.op in (Opcode.JMP, Opcode.BR_IF, Opcode.BR_IFZ)
        }
    return code
