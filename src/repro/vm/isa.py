"""MiniVM instruction set.

A small stack ISA, sufficient to express the loop/recursion/branch
structure that the paper's phase analysis cares about:

- integer arithmetic and comparisons on an operand stack,
- local variable slots per frame,
- conditional branches (**the only instructions that emit profile
  elements**),
- calls/returns,
- explicit loop markers (``LOOP_BEGIN``/``LOOP_END``) inserted by the
  MiniLang compiler around every loop, mirroring the loop
  instrumentation the paper added to Jikes RVM's optimizing compiler,
- a deterministic per-run PRNG instruction (``RND``) so workloads can
  have data-dependent branches while staying reproducible,
- a flat global memory (``GLOAD``/``GSTORE``) for array-ish workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class Opcode(enum.IntEnum):
    """All MiniVM opcodes."""

    # Stack & locals
    PUSH = 0     # arg: constant            -> push arg
    POP = 1      #                          -> discard top
    DUP = 2      #                          -> duplicate top
    LOAD = 3     # arg: slot                -> push locals[slot]
    STORE = 4    # arg: slot                -> locals[slot] = pop
    # Arithmetic
    ADD = 5
    SUB = 6
    MUL = 7
    DIV = 8      # integer division, truncation toward zero; div by 0 faults
    MOD = 9
    NEG = 10
    NOT = 11     # logical not: push 1 if pop == 0 else 0
    # Comparisons (push 1/0)
    EQ = 12
    NE = 13
    LT = 14
    LE = 15
    GT = 16
    GE = 17
    # Control flow
    JMP = 18     # arg: target pc (unconditional; no profile element)
    BR_IF = 19   # arg: target pc; pop cond; jump if cond != 0  [emits element]
    BR_IFZ = 20  # arg: target pc; pop cond; jump if cond == 0  [emits element]
    CALL = 21    # arg: function id, arg2: number of arguments
    RET = 22     # pop return value, pop frame
    HALT = 23    # stop execution of the whole program
    # Instrumentation markers
    LOOP_BEGIN = 24  # arg: static loop id
    LOOP_END = 25    # arg: static loop id
    # Builtins
    RND = 26     # pop n; push deterministic pseudo-random int in [0, n)
    GLOAD = 27   # pop addr; push memory[addr] (0 if unset)
    GSTORE = 28  # pop addr, pop value; memory[addr] = value


#: Opcodes that take one integer operand.
UNARY_ARG_OPS = frozenset(
    {
        Opcode.PUSH,
        Opcode.LOAD,
        Opcode.STORE,
        Opcode.JMP,
        Opcode.BR_IF,
        Opcode.BR_IFZ,
        Opcode.LOOP_BEGIN,
        Opcode.LOOP_END,
    }
)

#: Opcodes that take two integer operands.
BINARY_ARG_OPS = frozenset({Opcode.CALL})

#: Opcodes that take no operand.
NO_ARG_OPS = frozenset(op for op in Opcode) - UNARY_ARG_OPS - BINARY_ARG_OPS

#: Conditional-branch opcodes: the only ones that emit profile elements.
BRANCH_OPS = frozenset({Opcode.BR_IF, Opcode.BR_IFZ})

#: Opcodes whose operand is a code offset within the same function.
JUMP_OPS = frozenset({Opcode.JMP, Opcode.BR_IF, Opcode.BR_IFZ})

MNEMONICS: Dict[Opcode, str] = {op: op.name.lower() for op in Opcode}
OPCODES_BY_MNEMONIC: Dict[str, Opcode] = {name: op for op, name in MNEMONICS.items()}


@dataclass(frozen=True)
class Instruction:
    """One decoded MiniVM instruction.

    ``arg``/``arg2`` are ``None`` for opcodes that do not use them.
    """

    op: Opcode
    arg: Optional[int] = None
    arg2: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op in UNARY_ARG_OPS:
            if self.arg is None or self.arg2 is not None:
                raise ValueError(f"{self.op.name} takes exactly one operand")
        elif self.op in BINARY_ARG_OPS:
            if self.arg is None or self.arg2 is None:
                raise ValueError(f"{self.op.name} takes exactly two operands")
        else:
            if self.arg is not None or self.arg2 is not None:
                raise ValueError(f"{self.op.name} takes no operand")

    def __str__(self) -> str:
        parts = [MNEMONICS[self.op]]
        if self.arg is not None:
            parts.append(str(self.arg))
        if self.arg2 is not None:
            parts.append(str(self.arg2))
        return " ".join(parts)
