"""MiniLang abstract syntax tree.

All nodes are frozen dataclasses; positions (source line) are kept for
compiler error messages.  The tree is deliberately small: integers,
names, calls, binary/unary operators, and the five statement forms the
workloads need (var, assignment, if/else, while/for, return).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Node:
    """Base class for all AST nodes."""

    line: int


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class IntLiteral(Node):
    """An integer constant."""

    value: int


@dataclass(frozen=True)
class Name(Node):
    """A reference to a local variable or parameter."""

    ident: str


@dataclass(frozen=True)
class Unary(Node):
    """A unary operation: ``-`` or ``!``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    """A binary operation, including short-circuit ``&&`` / ``||``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call(Node):
    """A call to a user function or a builtin (``rnd``, ``mem``, ``setmem``)."""

    callee: str
    args: Tuple["Expr", ...]


Expr = (IntLiteral, Name, Unary, Binary, Call)


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class VarDecl(Node):
    """``var name = expr;`` — declares and initializes a new local."""

    ident: str
    value: "Expr"


@dataclass(frozen=True)
class Assign(Node):
    """``name = expr;``"""

    ident: str
    value: "Expr"


@dataclass(frozen=True)
class ExprStmt(Node):
    """An expression evaluated for effect; its value is discarded."""

    value: "Expr"


@dataclass(frozen=True)
class If(Node):
    """``if (cond) { ... } else { ... }`` — else branch optional."""

    cond: "Expr"
    then_body: Tuple["Stmt", ...]
    else_body: Tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class While(Node):
    """``while (cond) { ... }`` — compiles to an instrumented loop."""

    cond: "Expr"
    body: Tuple["Stmt", ...]
    label: str = ""


@dataclass(frozen=True)
class For(Node):
    """``for (init; cond; step) { ... }`` — sugar over While."""

    init: Optional["Stmt"]
    cond: Optional["Expr"]
    step: Optional["Stmt"]
    body: Tuple["Stmt", ...]
    label: str = ""


@dataclass(frozen=True)
class Return(Node):
    """``return expr;`` or ``return;`` (returns 0)."""

    value: Optional["Expr"] = None


@dataclass(frozen=True)
class Halt(Node):
    """``halt;`` — stops the whole program."""


Stmt = (VarDecl, Assign, ExprStmt, If, While, For, Return, Halt)


# -- top level -----------------------------------------------------------------


@dataclass(frozen=True)
class FunctionDef(Node):
    """``fn name(params...) { body }``"""

    name: str
    params: Tuple[str, ...]
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Module(Node):
    """A parsed MiniLang source file."""

    functions: Tuple[FunctionDef, ...]

    def function(self, name: str) -> FunctionDef:
        """Look up a function definition by name."""
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
