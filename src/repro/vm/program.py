"""Program and Function containers, plus static validation.

A :class:`Program` is the executable unit: a list of functions, an entry
function, and the static loop table.  Function ids index the function
list; loop ids are globally unique across the program.  Validation
checks every structural property the interpreter assumes, so the
interpreter itself can stay fast and unchecked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.vm.errors import ValidationError
from repro.vm.isa import JUMP_OPS, Instruction, Opcode


@dataclass
class Function:
    """One MiniVM function.

    Attributes:
        name: source-level name (unique within a program).
        func_id: dense id — must equal the function's index in the program.
        num_params: number of parameters (stored in locals[0..num_params)).
        num_locals: total local slots, including parameters.
        code: the instruction sequence.
    """

    name: str
    func_id: int
    num_params: int
    num_locals: int
    code: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.code)


@dataclass
class LoopInfo:
    """Static metadata for one loop: which function owns it, and a label."""

    loop_id: int
    function_id: int
    label: str = ""


class Program:
    """A validated, executable MiniVM program."""

    def __init__(
        self,
        functions: Sequence[Function],
        entry: str = "main",
        loops: Optional[Sequence[LoopInfo]] = None,
        name: str = "",
    ) -> None:
        self.functions: List[Function] = list(functions)
        self.name = name
        self.loops: List[LoopInfo] = list(loops or [])
        self._by_name: Dict[str, Function] = {f.name: f for f in self.functions}
        if entry not in self._by_name:
            raise ValidationError(f"entry function {entry!r} not defined")
        self.entry = entry
        self.validate()

    @property
    def entry_function(self) -> Function:
        """The function execution starts in."""
        return self._by_name[self.entry]

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ValidationError(f"no function named {name!r}") from None

    def __getitem__(self, func_id: int) -> Function:
        return self.functions[func_id]

    def num_instructions(self) -> int:
        """Total static instruction count across all functions."""
        return sum(len(f.code) for f in self.functions)

    def validate(self) -> None:
        """Check every structural invariant the interpreter relies on.

        Raises:
            ValidationError: on the first violated invariant.
        """
        if len(self._by_name) != len(self.functions):
            raise ValidationError("duplicate function names")
        for index, func in enumerate(self.functions):
            if func.func_id != index:
                raise ValidationError(
                    f"function {func.name!r} has id {func.func_id}, expected {index}"
                )
            if func.num_params < 0 or func.num_locals < func.num_params:
                raise ValidationError(
                    f"function {func.name!r}: bad locals layout "
                    f"(params={func.num_params}, locals={func.num_locals})"
                )
            self._validate_code(func)
        seen_loops = set()
        for loop in self.loops:
            if loop.loop_id in seen_loops:
                raise ValidationError(f"duplicate loop id {loop.loop_id}")
            seen_loops.add(loop.loop_id)
            if not 0 <= loop.function_id < len(self.functions):
                raise ValidationError(
                    f"loop {loop.loop_id} references missing function {loop.function_id}"
                )

    def _validate_code(self, func: Function) -> None:
        size = len(func.code)
        if size == 0:
            raise ValidationError(f"function {func.name!r} has no code")
        loop_ids = {loop.loop_id for loop in self.loops}
        for pc, instr in enumerate(func.code):
            where = f"{func.name}@{pc}"
            if instr.op in JUMP_OPS:
                if not 0 <= instr.arg < size:
                    raise ValidationError(
                        f"{where}: jump target {instr.arg} out of range [0, {size})"
                    )
            elif instr.op == Opcode.CALL:
                if not 0 <= instr.arg < len(self.functions):
                    raise ValidationError(f"{where}: call to missing function {instr.arg}")
                callee = self.functions[instr.arg]
                if instr.arg2 != callee.num_params:
                    raise ValidationError(
                        f"{where}: call passes {instr.arg2} args, "
                        f"{callee.name!r} takes {callee.num_params}"
                    )
            elif instr.op in (Opcode.LOAD, Opcode.STORE):
                if not 0 <= instr.arg < func.num_locals:
                    raise ValidationError(
                        f"{where}: local slot {instr.arg} out of range "
                        f"[0, {func.num_locals})"
                    )
            elif instr.op in (Opcode.LOOP_BEGIN, Opcode.LOOP_END):
                if self.loops and instr.arg not in loop_ids:
                    raise ValidationError(f"{where}: unknown loop id {instr.arg}")
        last = func.code[-1].op
        if last not in (Opcode.RET, Opcode.HALT, Opcode.JMP):
            raise ValidationError(
                f"function {func.name!r} may fall off the end "
                f"(last opcode {last.name})"
            )
