"""Post-hoc profile analysis: hot branches, per-function breakdowns.

The paper's overhead discussion separates *profile collection* from
*detection*.  This module covers the collection side's natural
companion questions: which branch sites dominate a trace, how biased
are they, and how is execution distributed across functions — the
statistics a VM would use to decide what to instrument at all.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.profiles.element import decode_element
from repro.profiles.trace import BranchTrace
from repro.vm.program import Program


@dataclass(frozen=True)
class BranchSiteStats:
    """Execution statistics of one static branch site."""

    method_id: int
    offset: int
    executions: int
    taken: int

    @property
    def not_taken(self) -> int:
        return self.executions - self.taken

    @property
    def taken_ratio(self) -> float:
        """Fraction of executions that took the branch."""
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """How predictable the branch is: max(p, 1-p) of the taken ratio."""
        ratio = self.taken_ratio
        return max(ratio, 1.0 - ratio)


@dataclass(frozen=True)
class TraceProfile:
    """Aggregated branch-site statistics for one trace."""

    sites: List[BranchSiteStats]
    total_branches: int

    def hottest(self, count: int = 10) -> List[BranchSiteStats]:
        """The ``count`` most-executed branch sites."""
        return sorted(self.sites, key=lambda s: -s.executions)[:count]

    def per_function(self) -> Dict[int, int]:
        """method id -> dynamic branch count."""
        totals: Dict[int, int] = {}
        for site in self.sites:
            totals[site.method_id] = totals.get(site.method_id, 0) + site.executions
        return totals

    def coverage(self, top: int) -> float:
        """Fraction of dynamic branches covered by the ``top`` hottest sites."""
        if self.total_branches == 0:
            return 0.0
        hot = sum(site.executions for site in self.hottest(top))
        return hot / self.total_branches

    def mean_bias(self) -> float:
        """Execution-weighted mean branch bias (predictability)."""
        if self.total_branches == 0:
            return 0.0
        weighted = sum(site.bias * site.executions for site in self.sites)
        return weighted / self.total_branches


def profile_trace(trace: BranchTrace) -> TraceProfile:
    """Aggregate a branch trace into per-site statistics."""
    data = trace.array
    total = int(data.size)
    if total == 0:
        return TraceProfile(sites=[], total_branches=0)
    # Site = element >> 1 (drop the taken bit); count both outcomes.
    sites_array = data >> np.int64(1)
    taken_array = (data & np.int64(1)).astype(bool)
    executions = Counter(sites_array.tolist())
    taken_counts = Counter(sites_array[taken_array].tolist())
    sites: List[BranchSiteStats] = []
    for site, count in executions.items():
        decoded = decode_element(int(site) << 1)
        sites.append(
            BranchSiteStats(
                method_id=decoded.method_id,
                offset=decoded.offset,
                executions=count,
                taken=taken_counts.get(site, 0),
            )
        )
    sites.sort(key=lambda s: (s.method_id, s.offset))
    return TraceProfile(sites=sites, total_branches=total)


def render_profile(
    profile: TraceProfile,
    program: Optional[Program] = None,
    top: int = 10,
) -> str:
    """Human-readable hot-branch report; function names resolve via
    ``program`` when provided."""
    def function_name(method_id: int) -> str:
        if program is not None and 0 <= method_id < len(program.functions):
            return program.functions[method_id].name
        return f"m{method_id}"

    lines = [
        f"{profile.total_branches:,} dynamic branches over "
        f"{len(profile.sites)} static sites "
        f"(mean bias {profile.mean_bias():.3f})"
    ]
    for site in profile.hottest(top):
        share = 100.0 * site.executions / profile.total_branches
        lines.append(
            f"  {function_name(site.method_id)}@{site.offset:<5} "
            f"{site.executions:>9,} ({share:5.1f}%)  "
            f"taken {site.taken_ratio:6.1%}  bias {site.bias:.2f}"
        )
    return "\n".join(lines)
