"""MiniLang → MiniVM bytecode compiler.

Single-module, two-pass compilation: first collect function signatures,
then generate code.  Every ``while``/``for`` loop is wrapped in
``LOOP_BEGIN``/``LOOP_END`` markers (the loop instrumentation the paper
added to Jikes RVM), and every conditional construct lowers to the
``BR_IF``/``BR_IFZ`` instructions that emit profile elements.

Builtins:

- ``rnd(n)`` — deterministic pseudo-random integer in ``[0, n)``.
- ``mem(addr)`` — read global memory (0 if unset).
- ``setmem(addr, value)`` — write global memory; evaluates to 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vm.ast_nodes import (
    Assign,
    Binary,
    Call,
    ExprStmt,
    For,
    FunctionDef,
    Halt,
    If,
    IntLiteral,
    Module,
    Name,
    Return,
    Unary,
    VarDecl,
    While,
)
from repro.vm.errors import CompileError
from repro.vm.isa import Instruction, Opcode
from repro.vm.parser import parse
from repro.vm.program import Function, LoopInfo, Program

_BUILTIN_ARITY = {"rnd": 1, "mem": 1, "setmem": 2}

_BINOP_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
}


def compile_source(
    source: str, entry: str = "main", name: str = "", optimize: bool = False
) -> Program:
    """Parse and compile MiniLang ``source`` into a validated Program.

    With ``optimize=True``, the AST is constant-folded and the bytecode
    peephole-cleaned (see :mod:`repro.vm.optimizer`); results are
    identical but folded branches emit no profile elements.
    """
    module = parse(source)
    if optimize:
        from repro.vm.optimizer import optimize_module, peephole

        return peephole(compile_module(optimize_module(module), entry=entry, name=name))
    return compile_module(module, entry=entry, name=name)


def compile_module(module: Module, entry: str = "main", name: str = "") -> Program:
    """Compile a parsed :class:`Module` into a validated Program."""
    signatures: Dict[str, Tuple[int, int]] = {}
    for index, func in enumerate(module.functions):
        if func.name in signatures:
            raise CompileError(f"function {func.name!r} defined twice")
        if func.name in _BUILTIN_ARITY:
            raise CompileError(f"function {func.name!r} shadows a builtin")
        signatures[func.name] = (index, len(func.params))

    loops: List[LoopInfo] = []
    functions: List[Function] = []
    for index, func_def in enumerate(module.functions):
        compiler = _FunctionCompiler(func_def, index, signatures, loops)
        functions.append(compiler.compile())
    return Program(functions, entry=entry, loops=loops, name=name)


class _Emitter:
    """Appends instructions and backpatches forward jump targets."""

    def __init__(self) -> None:
        self.code: List[Instruction] = []

    def emit(self, op: Opcode, arg: Optional[int] = None, arg2: Optional[int] = None) -> int:
        self.code.append(Instruction(op, arg, arg2))
        return len(self.code) - 1

    def emit_jump(self, op: Opcode) -> int:
        """Emit a jump with a placeholder target; patch it later."""
        # Placeholder 0 is always a valid-looking target; patched before use.
        self.code.append(Instruction(op, 0))
        return len(self.code) - 1

    def patch(self, index: int, target: Optional[int] = None) -> None:
        """Point the jump at ``index`` to ``target`` (default: next pc)."""
        resolved = len(self.code) if target is None else target
        old = self.code[index]
        self.code[index] = Instruction(old.op, resolved, old.arg2)

    @property
    def here(self) -> int:
        return len(self.code)


class _Scope:
    """A lexical scope mapping names to local slots."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, int] = {}

    def lookup(self, name: str) -> Optional[int]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _FunctionCompiler:
    def __init__(
        self,
        func_def: FunctionDef,
        func_id: int,
        signatures: Dict[str, Tuple[int, int]],
        loops: List[LoopInfo],
    ) -> None:
        self._def = func_def
        self._func_id = func_id
        self._signatures = signatures
        self._loops = loops
        self._emitter = _Emitter()
        self._scope = _Scope()
        self._num_slots = 0

    def compile(self) -> Function:
        for param in self._def.params:
            self._declare(param, self._def.line)
        for stmt in self._def.body:
            self._stmt(stmt)
        # Implicit `return 0;` so control can never fall off the end.
        self._emitter.emit(Opcode.PUSH, 0)
        self._emitter.emit(Opcode.RET)
        return Function(
            name=self._def.name,
            func_id=self._func_id,
            num_params=len(self._def.params),
            num_locals=self._num_slots,
            code=self._emitter.code,
        )

    # -- scope helpers --------------------------------------------------------

    def _declare(self, name: str, line: int) -> int:
        if name in self._scope.names:
            raise CompileError(
                f"{self._def.name}:{line}: {name!r} already declared in this scope"
            )
        slot = self._num_slots
        self._num_slots += 1
        self._scope.names[name] = slot
        return slot

    def _resolve(self, name: str, line: int) -> int:
        slot = self._scope.lookup(name)
        if slot is None:
            raise CompileError(f"{self._def.name}:{line}: undefined variable {name!r}")
        return slot

    def _push_scope(self) -> None:
        self._scope = _Scope(self._scope)

    def _pop_scope(self) -> None:
        assert self._scope.parent is not None
        self._scope = self._scope.parent

    def _new_loop(self, label: str) -> int:
        loop_id = len(self._loops)
        self._loops.append(LoopInfo(loop_id=loop_id, function_id=self._func_id, label=label))
        return loop_id

    # -- statements --------------------------------------------------------------

    def _stmt(self, stmt) -> None:
        if isinstance(stmt, VarDecl):
            self._expr(stmt.value)
            slot = self._declare(stmt.ident, stmt.line)
            self._emitter.emit(Opcode.STORE, slot)
        elif isinstance(stmt, Assign):
            self._expr(stmt.value)
            self._emitter.emit(Opcode.STORE, self._resolve(stmt.ident, stmt.line))
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.value)
            self._emitter.emit(Opcode.POP)
        elif isinstance(stmt, If):
            self._if(stmt)
        elif isinstance(stmt, While):
            self._while(stmt)
        elif isinstance(stmt, For):
            self._for(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is None:
                self._emitter.emit(Opcode.PUSH, 0)
            else:
                self._expr(stmt.value)
            self._emitter.emit(Opcode.RET)
        elif isinstance(stmt, Halt):
            self._emitter.emit(Opcode.HALT)
        else:  # pragma: no cover - parser produces only the above
            raise CompileError(f"unknown statement node {type(stmt).__name__}")

    def _body(self, statements) -> None:
        self._push_scope()
        for stmt in statements:
            self._stmt(stmt)
        self._pop_scope()

    def _if(self, stmt: If) -> None:
        self._expr(stmt.cond)
        skip_then = self._emitter.emit_jump(Opcode.BR_IFZ)
        self._body(stmt.then_body)
        if stmt.else_body:
            skip_else = self._emitter.emit_jump(Opcode.JMP)
            self._emitter.patch(skip_then)
            self._body(stmt.else_body)
            self._emitter.patch(skip_else)
        else:
            self._emitter.patch(skip_then)

    def _while(self, stmt: While) -> None:
        loop_id = self._new_loop(stmt.label or f"while_{stmt.line}")
        self._emitter.emit(Opcode.LOOP_BEGIN, loop_id)
        head = self._emitter.here
        self._expr(stmt.cond)
        exit_jump = self._emitter.emit_jump(Opcode.BR_IFZ)
        self._body(stmt.body)
        self._emitter.emit(Opcode.JMP, head)
        self._emitter.patch(exit_jump)
        self._emitter.emit(Opcode.LOOP_END, loop_id)

    def _for(self, stmt: For) -> None:
        self._push_scope()
        if stmt.init is not None:
            self._stmt(stmt.init)
        loop_id = self._new_loop(stmt.label or f"for_{stmt.line}")
        self._emitter.emit(Opcode.LOOP_BEGIN, loop_id)
        head = self._emitter.here
        exit_jump = None
        if stmt.cond is not None:
            self._expr(stmt.cond)
            exit_jump = self._emitter.emit_jump(Opcode.BR_IFZ)
        self._body(stmt.body)
        if stmt.step is not None:
            self._stmt(stmt.step)
        self._emitter.emit(Opcode.JMP, head)
        if exit_jump is not None:
            self._emitter.patch(exit_jump)
        self._emitter.emit(Opcode.LOOP_END, loop_id)
        self._pop_scope()

    # -- expressions ----------------------------------------------------------------

    def _expr(self, expr) -> None:
        if isinstance(expr, IntLiteral):
            self._emitter.emit(Opcode.PUSH, expr.value)
        elif isinstance(expr, Name):
            self._emitter.emit(Opcode.LOAD, self._resolve(expr.ident, expr.line))
        elif isinstance(expr, Unary):
            self._expr(expr.operand)
            self._emitter.emit(Opcode.NEG if expr.op == "-" else Opcode.NOT)
        elif isinstance(expr, Binary):
            if expr.op == "&&":
                self._and(expr)
            elif expr.op == "||":
                self._or(expr)
            else:
                self._expr(expr.left)
                self._expr(expr.right)
                self._emitter.emit(_BINOP_OPCODES[expr.op])
        elif isinstance(expr, Call):
            self._call(expr)
        else:  # pragma: no cover - parser produces only the above
            raise CompileError(f"unknown expression node {type(expr).__name__}")

    def _and(self, expr: Binary) -> None:
        self._expr(expr.left)
        short = self._emitter.emit_jump(Opcode.BR_IFZ)
        self._expr(expr.right)
        self._emitter.emit(Opcode.NOT)
        self._emitter.emit(Opcode.NOT)
        done = self._emitter.emit_jump(Opcode.JMP)
        self._emitter.patch(short)
        self._emitter.emit(Opcode.PUSH, 0)
        self._emitter.patch(done)

    def _or(self, expr: Binary) -> None:
        self._expr(expr.left)
        short = self._emitter.emit_jump(Opcode.BR_IF)
        self._expr(expr.right)
        self._emitter.emit(Opcode.NOT)
        self._emitter.emit(Opcode.NOT)
        done = self._emitter.emit_jump(Opcode.JMP)
        self._emitter.patch(short)
        self._emitter.emit(Opcode.PUSH, 1)
        self._emitter.patch(done)

    def _call(self, expr: Call) -> None:
        if expr.callee in _BUILTIN_ARITY:
            expected = _BUILTIN_ARITY[expr.callee]
            if len(expr.args) != expected:
                raise CompileError(
                    f"{self._def.name}:{expr.line}: builtin {expr.callee!r} takes "
                    f"{expected} argument(s), got {len(expr.args)}"
                )
            if expr.callee == "rnd":
                self._expr(expr.args[0])
                self._emitter.emit(Opcode.RND)
            elif expr.callee == "mem":
                self._expr(expr.args[0])
                self._emitter.emit(Opcode.GLOAD)
            else:  # setmem(addr, value): interpreter pops addr, then value
                self._expr(expr.args[1])
                self._expr(expr.args[0])
                self._emitter.emit(Opcode.GSTORE)
                self._emitter.emit(Opcode.PUSH, 0)
            return
        signature = self._signatures.get(expr.callee)
        if signature is None:
            raise CompileError(
                f"{self._def.name}:{expr.line}: call to undefined function "
                f"{expr.callee!r}"
            )
        func_id, arity = signature
        if len(expr.args) != arity:
            raise CompileError(
                f"{self._def.name}:{expr.line}: {expr.callee!r} takes {arity} "
                f"argument(s), got {len(expr.args)}"
            )
        for arg in expr.args:
            self._expr(arg)
        self._emitter.emit(Opcode.CALL, func_id, arity)
