"""MiniVM: the instrumented execution substrate.

This package stands in for the paper's modified Jikes RVM.  It provides:

- a small stack ISA (:mod:`repro.vm.isa`),
- an assembler/disassembler for ISA-level programs
  (:mod:`repro.vm.assembler`),
- **MiniLang**, a structured language with functions, loops, recursion,
  and data-dependent branches, plus its lexer/parser/compiler
  (:mod:`repro.vm.lexer`, :mod:`repro.vm.parser`,
  :mod:`repro.vm.compiler`),
- an instrumented interpreter that emits the conditional-branch trace
  and the call-loop trace (:mod:`repro.vm.interpreter`,
  :mod:`repro.vm.tracing`).
"""

from repro.vm.assembler import assemble, disassemble
from repro.vm.compiler import compile_module, compile_source
from repro.vm.errors import (
    AssemblyError,
    CompileError,
    ExecutionError,
    FuelExhaustedError,
    MiniLangSyntaxError,
    StackOverflowError,
    ValidationError,
    VMError,
)
from repro.vm.interpreter import Interpreter, run_program
from repro.vm.isa import Instruction, Opcode
from repro.vm.parser import parse
from repro.vm.program import Function, LoopInfo, Program
from repro.vm.tracing import CollectingSink, CountingSink, NullSink

__all__ = [
    "assemble",
    "disassemble",
    "compile_module",
    "compile_source",
    "parse",
    "Interpreter",
    "run_program",
    "Instruction",
    "Opcode",
    "Function",
    "LoopInfo",
    "Program",
    "CollectingSink",
    "CountingSink",
    "NullSink",
    "VMError",
    "AssemblyError",
    "CompileError",
    "MiniLangSyntaxError",
    "ValidationError",
    "ExecutionError",
    "StackOverflowError",
    "FuelExhaustedError",
]
