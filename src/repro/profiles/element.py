"""Profile element encoding.

The paper (Section 4.1) represents each dynamic conditional branch as a
single integer that encodes a unique method ID, the bytecode offset of
the branch within that method, and a bit recording whether the branch
was taken.  We use the packed layout::

    bits [1 + OFFSET_BITS, ...)  method id
    bits [1, 1 + OFFSET_BITS)    bytecode offset
    bit  0                       taken

so two dynamic executions of the same static branch with the same
outcome map to the same profile element, which is exactly the property
the set-based similarity models rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

OFFSET_BITS = 16
TAKEN_BITS = 1

MAX_OFFSET = (1 << OFFSET_BITS) - 1
MAX_METHOD_ID = (1 << (63 - OFFSET_BITS - TAKEN_BITS)) - 1

_OFFSET_SHIFT = TAKEN_BITS
_METHOD_SHIFT = TAKEN_BITS + OFFSET_BITS

#: Public alias: right-shift a packed element by this to get its method id.
METHOD_SHIFT = _METHOD_SHIFT


def encode_element(method_id: int, offset: int, taken: bool) -> int:
    """Pack a branch site + outcome into a single profile-element integer.

    Args:
        method_id: unique id of the method containing the branch.
        offset: bytecode offset of the branch within the method.
        taken: whether the branch was taken.

    Returns:
        A non-negative integer uniquely identifying (method, offset, taken).

    Raises:
        ValueError: if either field is out of range.
    """
    if not 0 <= method_id <= MAX_METHOD_ID:
        raise ValueError(f"method_id {method_id} out of range [0, {MAX_METHOD_ID}]")
    if not 0 <= offset <= MAX_OFFSET:
        raise ValueError(f"offset {offset} out of range [0, {MAX_OFFSET}]")
    return (method_id << _METHOD_SHIFT) | (offset << _OFFSET_SHIFT) | int(bool(taken))


def decode_element(element: int) -> "ProfileElement":
    """Unpack a profile-element integer produced by :func:`encode_element`."""
    if element < 0:
        raise ValueError(f"profile element must be non-negative, got {element}")
    taken = bool(element & 1)
    offset = (element >> _OFFSET_SHIFT) & MAX_OFFSET
    method_id = element >> _METHOD_SHIFT
    return ProfileElement(method_id=method_id, offset=offset, taken=taken)


@dataclass(frozen=True)
class ProfileElement:
    """A decoded profile element: one dynamic conditional-branch outcome."""

    method_id: int
    offset: int
    taken: bool

    def encode(self) -> int:
        """Pack this element back into its integer form."""
        return encode_element(self.method_id, self.offset, self.taken)

    @property
    def site(self) -> int:
        """The static branch site (method id + offset), ignoring the outcome."""
        return (self.method_id << _METHOD_SHIFT) | (self.offset << _OFFSET_SHIFT)

    def __str__(self) -> str:
        arrow = "T" if self.taken else "N"
        return f"m{self.method_id}@{self.offset}:{arrow}"
