"""Branch-trace substrate: profile elements, traces, trace I/O, synthetic generators.

The paper's detectors consume a *conditional branch trace*: a sequence of
profile elements, each encoding a unique source location (method id +
bytecode offset) plus a taken bit.  This package provides that substrate:

- :mod:`repro.profiles.element` — the packed integer encoding.
- :mod:`repro.profiles.trace` — the :class:`BranchTrace` container.
- :mod:`repro.profiles.io` — text and binary on-disk formats.
- :mod:`repro.profiles.synthetic` — synthetic phased-trace generators
  used by tests and micro-benchmarks.
- :mod:`repro.profiles.alphabet` — branch-site alphabet bookkeeping.
"""

from repro.profiles.element import (
    MAX_METHOD_ID,
    MAX_OFFSET,
    ProfileElement,
    decode_element,
    encode_element,
)
from repro.profiles.trace import BranchTrace, TraceStats
from repro.profiles.alphabet import BranchAlphabet
from repro.profiles.io import (
    read_trace,
    read_trace_binary,
    read_trace_text,
    stream_trace,
    write_trace,
    write_trace_binary,
    write_trace_text,
)
from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind
from repro.profiles.multithread import demux, detect_per_thread, interleave
from repro.profiles.perturb import (
    drop_elements,
    inject_noise,
    sample_elements,
    swap_segments,
)
from repro.profiles.synthetic import (
    PhaseSpec,
    SyntheticTraceBuilder,
    make_phased_trace,
    make_noise_trace,
    make_periodic_trace,
)

__all__ = [
    "MAX_METHOD_ID",
    "MAX_OFFSET",
    "ProfileElement",
    "decode_element",
    "encode_element",
    "BranchTrace",
    "TraceStats",
    "BranchAlphabet",
    "read_trace",
    "read_trace_binary",
    "read_trace_text",
    "stream_trace",
    "write_trace",
    "write_trace_binary",
    "write_trace_text",
    "CallLoopEvent",
    "CallLoopTrace",
    "EventKind",
    "demux",
    "detect_per_thread",
    "interleave",
    "drop_elements",
    "inject_noise",
    "sample_elements",
    "swap_segments",
    "PhaseSpec",
    "SyntheticTraceBuilder",
    "make_phased_trace",
    "make_noise_trace",
    "make_periodic_trace",
]
