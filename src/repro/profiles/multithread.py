"""Multi-threaded traces — the paper's flagged framework extension.

Section 4.1: "We currently consider single-threaded applications only,
though the framework can be extended to handle multi-threaded
applications."  The extension is mechanical once the profile carries a
thread id per element: demultiplex the stream and run one detector per
thread.  This module provides:

- :func:`interleave` — merge per-thread branch traces under a
  round-robin or random scheduler, returning the merged trace plus the
  per-element thread ids (the side-band a threaded VM would record);
- :func:`demux` — split a merged trace back into per-thread traces;
- :func:`detect_per_thread` — run one detector per thread and map each
  thread's P/T states back onto merged-trace positions.

The companion tests demonstrate *why* the demux matters: a single
global detector sees an interleaving of unrelated working sets and
misses phases that per-thread detection finds trivially.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

import numpy as np

from repro.profiles.trace import BranchTrace

if TYPE_CHECKING:  # core depends on profiles; import it lazily at runtime
    from repro.core.config import DetectorConfig


def interleave(
    traces: Dict[int, BranchTrace],
    quantum: int = 1,
    schedule: str = "round_robin",
    seed: int = 0,
) -> Tuple[BranchTrace, np.ndarray]:
    """Merge per-thread traces under a simple scheduler.

    Args:
        traces: thread id -> that thread's branch trace.
        quantum: elements executed per scheduling slot.
        schedule: ``"round_robin"`` or ``"random"`` (uniform over
            threads with work remaining).
        seed: RNG seed for the random schedule.

    Returns:
        ``(merged trace, thread_ids)`` where ``thread_ids[i]`` is the
        thread that produced merged element ``i``.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum}")
    if schedule not in ("round_robin", "random"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if not traces:
        return BranchTrace([], name="interleaved"), np.empty(0, dtype=np.int64)

    rng = random.Random(seed)
    order = sorted(traces)
    positions = {tid: 0 for tid in order}
    remaining = [tid for tid in order if len(traces[tid])]
    merged: List[int] = []
    owners: List[int] = []
    next_index = 0
    while remaining:
        if schedule == "round_robin":
            tid = remaining[next_index % len(remaining)]
            next_index += 1
        else:
            tid = remaining[rng.randrange(len(remaining))]
        trace = traces[tid]
        start = positions[tid]
        stop = min(start + quantum, len(trace))
        merged.extend(trace.array[start:stop].tolist())
        owners.extend([tid] * (stop - start))
        positions[tid] = stop
        if stop >= len(trace):
            remaining.remove(tid)
            next_index = 0 if not remaining else next_index % len(remaining)
    return (
        BranchTrace(merged, name="interleaved"),
        np.asarray(owners, dtype=np.int64),
    )


def demux(trace: BranchTrace, thread_ids: np.ndarray) -> Dict[int, BranchTrace]:
    """Split a merged trace into per-thread traces."""
    thread_ids = np.asarray(thread_ids)
    if thread_ids.shape != (len(trace),):
        raise ValueError(
            f"thread_ids length {thread_ids.size} != trace length {len(trace)}"
        )
    result: Dict[int, BranchTrace] = {}
    for tid in np.unique(thread_ids).tolist():
        mask = thread_ids == tid
        result[tid] = BranchTrace(trace.array[mask], name=f"{trace.name}#t{tid}")
    return result


def detect_per_thread(
    trace: BranchTrace,
    thread_ids: np.ndarray,
    config: "DetectorConfig",
    configs: "Optional[Dict[int, DetectorConfig]]" = None,
) -> np.ndarray:
    """Per-thread detection mapped back onto merged positions.

    Each thread's sub-trace runs through its own detector (``configs``
    may override the shared ``config`` per thread); the returned boolean
    array marks each merged element with its thread-local state.
    """
    from repro.core.engine import run_detector

    thread_ids = np.asarray(thread_ids)
    if thread_ids.shape != (len(trace),):
        raise ValueError(
            f"thread_ids length {thread_ids.size} != trace length {len(trace)}"
        )
    states = np.zeros(len(trace), dtype=bool)
    for tid, sub_trace in demux(trace, thread_ids).items():
        sub_config = configs.get(tid, config) if configs else config
        result = run_detector(sub_trace, sub_config)
        states[np.flatnonzero(thread_ids == tid)] = result.states
    return states
