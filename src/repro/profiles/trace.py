"""The BranchTrace container.

A :class:`BranchTrace` is the immutable unit of input to every detector
and to the baseline oracle: a dense array of packed profile elements
plus optional provenance metadata.  Internally it is a ``numpy`` int64
array so that whole-trace statistics (distinct sites, entropy, run
structure) stay cheap even for million-element traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.profiles.element import METHOD_SHIFT, ProfileElement, decode_element


@dataclass(frozen=True)
class TraceStats:
    """Whole-trace summary statistics."""

    length: int
    distinct_elements: int
    distinct_methods: int
    entropy_bits: float
    most_common_element: int
    most_common_fraction: float


class BranchTrace:
    """An immutable sequence of packed profile elements.

    The element array may be any int64-compatible buffer, including a
    read-only ``np.memmap`` over an on-disk ``.btrace`` payload (the
    zero-copy sweep path) — every view, statistic, and detector kernel
    works on read-only backing, and hashing/equality depend only on the
    element data, never on how it is stored.

    Args:
        elements: packed profile-element integers (any int sequence or
            numpy array; coerced to an int64 array — zero-copy when the
            input is already int64, e.g. a little-endian memmap).
        name: optional provenance label (e.g. the workload name).
        meta: optional free-form metadata dictionary.
    """

    __slots__ = ("_data", "name", "meta", "_unique", "_codes", "_code_list", "_prev")

    def __init__(
        self,
        elements: Union[Sequence[int], np.ndarray],
        name: str = "",
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        data = np.asarray(elements, dtype=np.int64)
        if data.ndim != 1:
            raise ValueError(f"trace must be one-dimensional, got shape {data.shape}")
        if data.size and data.min() < 0:
            raise ValueError("profile elements must be non-negative")
        data.setflags(write=False)
        self._data = data
        self.name = name
        self.meta = dict(meta or {})
        # Lazy caches; the data array is immutable, so neither ever
        # needs invalidation.
        self._unique: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._codes: Optional[np.ndarray] = None
        self._code_list: Optional[list] = None
        self._prev: Optional[np.ndarray] = None

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self._data.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data.tolist())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return BranchTrace(self._data[index], name=self.name, meta=self.meta)
        return int(self._data[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BranchTrace):
            return NotImplemented
        return np.array_equal(self._data, other._data)

    def __hash__(self) -> int:
        # __eq__ compares only the element data, so the hash must be a
        # function of the data alone (name/meta must not participate).
        return hash((int(self._data.size), self._data[:64].tobytes()))

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"BranchTrace({label!r}, length={len(self)})"

    # -- views ---------------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The underlying read-only int64 array."""
        return self._data

    def decoded(self) -> Iterator[ProfileElement]:
        """Iterate decoded :class:`ProfileElement` values (slow; for debugging)."""
        for value in self._data.tolist():
            yield decode_element(value)

    def chunks(self, size: int) -> Iterator[np.ndarray]:
        """Yield consecutive chunks of at most ``size`` elements."""
        if size <= 0:
            raise ValueError("chunk size must be positive")
        for start in range(0, len(self), size):
            yield self._data[start : start + size]

    # -- statistics ----------------------------------------------------------

    def unique(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted distinct elements and their occurrence counts.

        Computed once and cached — :meth:`stats`,
        :meth:`distinct_elements`, and :meth:`dense_codes` all share the
        same ``np.unique`` pass.  The array is immutable, so the cache
        never needs invalidation.
        """
        if self._unique is None:
            values, counts = np.unique(self._data, return_counts=True)
            values.setflags(write=False)
            counts.setflags(write=False)
            self._unique = (values, counts)
        return self._unique

    def dense_codes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense remap of the trace: ``(codes, values)``.

        ``values`` is the sorted distinct-element array from
        :meth:`unique` and ``codes`` an int32 array with
        ``values[codes[i]] == array[i]`` — packed int64 profile
        elements mapped to contiguous small ints, so detector kernels
        can replace per-element hash lookups with flat array indexing
        (see :mod:`repro.core.kernels`).  Cached on the trace and shared
        across every detector lane of a bank pass.
        """
        values, _ = self.unique()
        if self._codes is None:
            codes = np.searchsorted(values, self._data).astype(np.int32)
            codes.setflags(write=False)
            self._codes = codes
        return self._codes, values

    def dense_code_list(self) -> Tuple[list, int]:
        """The dense codes materialized once as a plain Python list.

        Returns ``(codes_list, n_codes)``.  The incremental dense kernel
        (:class:`~repro.core.kernels.DenseAdvancer`) indexes codes with
        Python-level loops, where a list beats repeated ndarray item
        access; the list is built once per trace and shared by every
        bank batch instead of re-materialized per
        :meth:`~repro.core.bank.DetectorBank.run` call.
        """
        if self._code_list is None:
            codes, values = self.dense_codes()
            self._code_list = codes.tolist()
            return self._code_list, int(values.size)
        return self._code_list, int(self.unique()[0].size)

    def prev_links(self) -> np.ndarray:
        """Previous-occurrence links: ``prev[i]`` is the index of the
        previous occurrence of ``array[i]`` (or -1 for first occurrences).

        The interval-stabbing similarity kernels of
        :mod:`repro.core.kernels` derive every unweighted window count
        from these links; like :meth:`dense_codes` the array is computed
        once per trace and shared by every detector lane of a batched
        bank pass.
        """
        if self._prev is None:
            from repro.core.kernels import _prev_occurrence

            codes, _ = self.dense_codes()
            prev = _prev_occurrence(codes)
            prev.setflags(write=False)
            self._prev = prev
        return self._prev

    def adopt_dense_codes(
        self, codes: np.ndarray, values: np.ndarray, counts: np.ndarray
    ) -> None:
        """Seed the dense-remap caches from a persisted ``.bcodes`` sidecar.

        ``codes``/``values``/``counts`` must be exactly what
        :meth:`dense_codes` and :meth:`unique` would compute for this
        trace (the sidecar reader validates them against the trace's
        content hash before calling this); the arrays may be read-only
        memmaps.  Cheap shape checks guard against a caller wiring the
        wrong sidecar to the wrong trace.
        """
        codes = np.asarray(codes, dtype=np.int32)
        values = np.asarray(values, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if codes.shape != self._data.shape:
            raise ValueError(
                f"sidecar codes length {codes.size} != trace length {self._data.size}"
            )
        if values.shape != counts.shape:
            raise ValueError(
                f"sidecar values/counts length mismatch: {values.size} vs {counts.size}"
            )
        for array in (codes, values, counts):
            array.setflags(write=False)
        self._unique = (values, counts)
        self._codes = codes
        self._code_list = None

    def stats(self) -> TraceStats:
        """Compute whole-trace summary statistics."""
        if len(self) == 0:
            return TraceStats(0, 0, 0, 0.0, -1, 0.0)
        values, counts = self.unique()
        probs = counts / counts.sum()
        entropy = float(-(probs * np.log2(probs)).sum())
        top = int(np.argmax(counts))
        methods = np.unique(values >> METHOD_SHIFT)
        return TraceStats(
            length=len(self),
            distinct_elements=int(values.size),
            distinct_methods=int(methods.size),
            entropy_bits=entropy,
            most_common_element=int(values[top]),
            most_common_fraction=float(counts[top] / len(self)),
        )

    def distinct_elements(self) -> int:
        """Number of distinct profile elements in the trace."""
        return int(self.unique()[0].size)

    def concat(self, other: "BranchTrace") -> "BranchTrace":
        """Return a new trace that is this trace followed by ``other``."""
        return BranchTrace(
            np.concatenate([self._data, other._data]),
            name=self.name or other.name,
            meta={**other.meta, **self.meta},
        )

    @staticmethod
    def from_iter(elements: Iterable[int], name: str = "") -> "BranchTrace":
        """Build a trace by materializing an iterable of packed elements."""
        return BranchTrace(np.fromiter(elements, dtype=np.int64), name=name)
