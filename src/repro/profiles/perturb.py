"""Trace perturbation: controlled corruption for robustness studies.

Online detectors in production consume *sampled* or *lossy* profiles
(the paper's remote-profiling citation motivates exactly this).  These
transforms model the common defects:

- :func:`inject_noise` — replace a fraction of elements with fresh
  never-seen elements (sampling glitches, unrelated interrupts);
- :func:`drop_elements` — delete a fraction of elements (lossy
  collection, rate-limited buffers);
- :func:`sample_elements` — keep every k-th element (systematic
  sampling, the cheapest collection strategy);
- :func:`swap_segments` — exchange two segments (out-of-order delivery).

All transforms are deterministic under a seed and preserve element
encodability.
"""

from __future__ import annotations

import random
from typing import Tuple

import numpy as np

from repro.profiles.element import MAX_METHOD_ID, encode_element
from repro.profiles.trace import BranchTrace

#: Noise elements are drawn from a reserved method-id range far above
#: anything the MiniVM or synthetic generators produce.
_NOISE_METHOD_BASE = MAX_METHOD_ID - (1 << 20)


def _fresh_noise(rng: random.Random) -> int:
    return encode_element(
        _NOISE_METHOD_BASE + rng.randrange(1 << 20),
        rng.randrange(1 << 16),
        bool(rng.getrandbits(1)),
    )


def inject_noise(trace: BranchTrace, rate: float, seed: int = 0) -> BranchTrace:
    """Replace a ``rate`` fraction of elements with fresh noise elements."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if rate == 0.0 or len(trace) == 0:
        return trace
    rng = random.Random(seed)
    data = trace.array.copy()
    count = int(round(rate * data.size))
    positions = rng.sample(range(data.size), count)
    for position in positions:
        data[position] = _fresh_noise(rng)
    return BranchTrace(data, name=f"{trace.name}+noise{rate}", meta=trace.meta)


def drop_elements(trace: BranchTrace, rate: float, seed: int = 0) -> BranchTrace:
    """Delete a ``rate`` fraction of elements uniformly at random."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if rate == 0.0 or len(trace) == 0:
        return trace
    rng = np.random.default_rng(seed)
    keep = rng.random(len(trace)) >= rate
    return BranchTrace(
        trace.array[keep], name=f"{trace.name}-drop{rate}", meta=trace.meta
    )


def sample_elements(trace: BranchTrace, period: int) -> BranchTrace:
    """Keep every ``period``-th element (systematic sampling)."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if period == 1:
        return trace
    return BranchTrace(
        trace.array[::period], name=f"{trace.name}/s{period}", meta=trace.meta
    )


def swap_segments(
    trace: BranchTrace,
    first: Tuple[int, int],
    second: Tuple[int, int],
) -> BranchTrace:
    """Exchange two equal-length, non-overlapping segments."""
    (a_start, a_end), (b_start, b_end) = sorted([first, second])
    if a_end - a_start != b_end - b_start:
        raise ValueError("segments must have equal length")
    if not (0 <= a_start <= a_end <= b_start <= b_end <= len(trace)):
        raise ValueError("segments must be in order, in range, non-overlapping")
    data = trace.array.copy()
    data[a_start:a_end], data[b_start:b_end] = (
        trace.array[b_start:b_end],
        trace.array[a_start:a_end],
    )
    return BranchTrace(data, name=f"{trace.name}~swap", meta=trace.meta)
