"""The dynamic call-loop trace.

Section 4.1 of the paper instruments loop and method entries/exits and
records, for each event, a unique identifier plus the offset into the
branch trace at that point ("the time of the latest dynamic branch").
The baseline oracle consumes this trace to find complete repetitive
instances.

Events carry:

- ``kind`` — one of :class:`EventKind`,
- ``ident`` — the static loop id or method id,
- ``time`` — number of branch profile elements emitted *before* the
  event, i.e. the event sits between trace positions ``time - 1`` and
  ``time``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union


class EventKind(enum.IntEnum):
    """The four call-loop instrumentation events."""

    METHOD_ENTRY = 0
    METHOD_EXIT = 1
    LOOP_ENTRY = 2
    LOOP_EXIT = 3


@dataclass(frozen=True)
class CallLoopEvent:
    """One instrumentation event in the call-loop trace."""

    kind: EventKind
    ident: int
    time: int

    def is_entry(self) -> bool:
        """True for METHOD_ENTRY and LOOP_ENTRY."""
        return self.kind in (EventKind.METHOD_ENTRY, EventKind.LOOP_ENTRY)

    def is_loop(self) -> bool:
        """True for LOOP_ENTRY and LOOP_EXIT."""
        return self.kind in (EventKind.LOOP_ENTRY, EventKind.LOOP_EXIT)

    def __str__(self) -> str:
        return f"{self.kind.name}({self.ident})@{self.time}"


class CallLoopTrace:
    """An ordered sequence of call-loop events for one program run."""

    __slots__ = ("_events", "name", "num_branches")

    def __init__(
        self,
        events: Iterable[CallLoopEvent] = (),
        name: str = "",
        num_branches: int = 0,
    ) -> None:
        self._events: List[CallLoopEvent] = list(events)
        self.name = name
        self.num_branches = num_branches
        self._validate()

    def _validate(self) -> None:
        last_time = 0
        for event in self._events:
            if event.time < last_time:
                raise ValueError(
                    f"call-loop events out of order: {event} after time {last_time}"
                )
            last_time = event.time

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[CallLoopEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> CallLoopEvent:
        return self._events[index]

    def __repr__(self) -> str:
        return f"CallLoopTrace({self.name!r}, events={len(self)})"

    # -- summary statistics used by Table 1(a) ------------------------------

    def loop_executions(self) -> int:
        """Number of complete loop executions (LOOP_ENTRY events)."""
        return sum(1 for e in self._events if e.kind == EventKind.LOOP_ENTRY)

    def method_invocations(self) -> int:
        """Number of method invocations (METHOD_ENTRY events)."""
        return sum(1 for e in self._events if e.kind == EventKind.METHOD_ENTRY)

    def recursion_roots(self) -> int:
        """Number of method invocations that are roots of recursive execution.

        Per Section 3.1: an invocation of method *m* is a recursion root
        if no other activation of *m* is on the stack at the time of the
        invocation **and** the execution it starts later re-invokes *m*
        (directly or transitively) before returning.
        """
        roots = 0
        # Each stack entry: [method id, is outermost activation, re-invoked?]
        stack: List[List[object]] = []
        depth_of: dict = {}
        outermost_index: dict = {}
        for event in self._events:
            if event.kind == EventKind.METHOD_ENTRY:
                mid = event.ident
                depth = depth_of.get(mid, 0)
                if depth == 0:
                    outermost_index[mid] = len(stack)
                    stack.append([mid, True, False])
                else:
                    stack[outermost_index[mid]][2] = True
                    stack.append([mid, False, False])
                depth_of[mid] = depth + 1
            elif event.kind == EventKind.METHOD_EXIT:
                if stack:
                    mid, outermost, reinvoked = stack.pop()
                    depth_of[mid] = depth_of.get(mid, 1) - 1
                    if outermost and reinvoked:
                        roots += 1
        return roots

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write a compact binary form of the trace."""
        path = Path(path)
        with path.open("wb") as handle:
            handle.write(b"RPCLOOP1")
            name_bytes = self.name.encode("utf-8")
            handle.write(len(name_bytes).to_bytes(4, "little"))
            handle.write(name_bytes)
            handle.write(self.num_branches.to_bytes(8, "little"))
            handle.write(len(self._events).to_bytes(8, "little"))
            for event in self._events:
                handle.write(int(event.kind).to_bytes(1, "little"))
                handle.write(event.ident.to_bytes(8, "little"))
                handle.write(event.time.to_bytes(8, "little"))

    @staticmethod
    def load(path: Union[str, Path]) -> "CallLoopTrace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        with path.open("rb") as handle:
            magic = handle.read(8)
            if magic != b"RPCLOOP1":
                raise ValueError(f"{path}: bad call-loop trace magic {magic!r}")
            name_len = int.from_bytes(handle.read(4), "little")
            name = handle.read(name_len).decode("utf-8")
            num_branches = int.from_bytes(handle.read(8), "little")
            count = int.from_bytes(handle.read(8), "little")
            events = []
            for _ in range(count):
                kind = EventKind(int.from_bytes(handle.read(1), "little"))
                ident = int.from_bytes(handle.read(8), "little")
                time = int.from_bytes(handle.read(8), "little")
                events.append(CallLoopEvent(kind, ident, time))
        return CallLoopTrace(events, name=name, num_branches=num_branches)
