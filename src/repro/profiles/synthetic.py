"""Synthetic phased-trace generators.

These builders produce branch traces with *known* phase structure, which
makes them the backbone of the unit/property tests: a detector's output
can be checked against ground truth without running the oracle, and the
oracle can be checked against the spec used to generate the trace.

The central abstraction is :class:`PhaseSpec`: a contiguous region of
the trace drawn from a fixed repeating pattern (a "loop body"), possibly
perturbed with noise.  Regions between phases are transitions drawn from
a wide random alphabet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.profiles.alphabet import BranchAlphabet
from repro.profiles.trace import BranchTrace


@dataclass(frozen=True)
class PhaseSpec:
    """Ground-truth description of one phase region in a synthetic trace.

    Attributes:
        start: index of the first element of the phase.
        length: number of elements in the phase.
        pattern_id: identifies the repeating pattern; equal ids mean the
            same "loop body" repeated.
    """

    start: int
    length: int
    pattern_id: int

    @property
    def end(self) -> int:
        """Index one past the last element of the phase."""
        return self.start + self.length


class SyntheticTraceBuilder:
    """Incrementally build a trace with known phase / transition regions.

    Example::

        builder = SyntheticTraceBuilder(seed=7)
        builder.add_transition(200)
        builder.add_phase(5_000, body_size=12)
        builder.add_transition(300)
        trace, specs = builder.build()
    """

    def __init__(self, seed: int = 0, name: str = "synthetic") -> None:
        self._rng = random.Random(seed)
        self._name = name
        self._elements: List[int] = []
        self._specs: List[PhaseSpec] = []
        self._alphabet = BranchAlphabet()
        self._patterns: List[List[int]] = []
        self._noise_sites = 0

    def _fresh_noise_element(self) -> int:
        self._noise_sites += 1
        label = ("noise", self._noise_sites)
        return self._alphabet.element(label, taken=bool(self._rng.getrandbits(1)))

    def new_pattern(self, body_size: int) -> int:
        """Create a fresh repeating pattern of ``body_size`` distinct sites."""
        if body_size <= 0:
            raise ValueError("body_size must be positive")
        pattern_id = len(self._patterns)
        body = [
            self._alphabet.element(("pattern", pattern_id, i), taken=(i % 2 == 0))
            for i in range(body_size)
        ]
        self._patterns.append(body)
        return pattern_id

    def add_phase(
        self,
        length: int,
        body_size: int = 10,
        pattern_id: Optional[int] = None,
        noise_rate: float = 0.0,
    ) -> PhaseSpec:
        """Append a phase: ``length`` elements cycling through a pattern body.

        Args:
            length: number of profile elements in the phase.
            body_size: number of distinct sites in a fresh pattern
                (ignored when ``pattern_id`` is given).
            pattern_id: reuse a previously created pattern (so the phase
                "repeats" an earlier one).
            noise_rate: probability, per element, of substituting a
                never-seen noise element — models warm-up jitter.

        Returns:
            The :class:`PhaseSpec` recording the ground truth.
        """
        if length <= 0:
            raise ValueError("phase length must be positive")
        if not 0.0 <= noise_rate < 1.0:
            raise ValueError("noise_rate must be in [0, 1)")
        if pattern_id is None:
            pattern_id = self.new_pattern(body_size)
        body = self._patterns[pattern_id]
        start = len(self._elements)
        for i in range(length):
            if noise_rate and self._rng.random() < noise_rate:
                self._elements.append(self._fresh_noise_element())
            else:
                self._elements.append(body[i % len(body)])
        spec = PhaseSpec(start=start, length=length, pattern_id=pattern_id)
        self._specs.append(spec)
        return spec

    def add_transition(self, length: int) -> None:
        """Append ``length`` elements of non-repeating transition noise."""
        if length < 0:
            raise ValueError("transition length must be non-negative")
        for _ in range(length):
            self._elements.append(self._fresh_noise_element())

    def build(self) -> Tuple[BranchTrace, List[PhaseSpec]]:
        """Finalize and return (trace, ground-truth phase specs)."""
        trace = BranchTrace(np.asarray(self._elements, dtype=np.int64), name=self._name)
        return trace, list(self._specs)


def make_phased_trace(
    num_phases: int = 4,
    phase_length: int = 2_000,
    transition_length: int = 200,
    body_size: int = 10,
    seed: int = 0,
) -> Tuple[BranchTrace, List[PhaseSpec]]:
    """Build a simple alternating transition/phase/transition/... trace."""
    builder = SyntheticTraceBuilder(seed=seed, name="phased")
    for _ in range(num_phases):
        builder.add_transition(transition_length)
        builder.add_phase(phase_length, body_size=body_size)
    builder.add_transition(transition_length)
    return builder.build()


def make_noise_trace(length: int = 5_000, seed: int = 0) -> BranchTrace:
    """Build a trace of pure transition noise (no repetition at all)."""
    builder = SyntheticTraceBuilder(seed=seed, name="noise")
    builder.add_transition(length)
    trace, _ = builder.build()
    return trace


def make_periodic_trace(
    length: int = 10_000, body_size: int = 16, seed: int = 0
) -> Tuple[BranchTrace, List[PhaseSpec]]:
    """Build a trace that is one long perfectly periodic phase."""
    builder = SyntheticTraceBuilder(seed=seed, name="periodic")
    builder.add_phase(length, body_size=body_size)
    return builder.build()
