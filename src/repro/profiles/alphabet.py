"""Branch-site alphabet bookkeeping.

A *branch alphabet* interns arbitrary hashable site labels (e.g. a
``(function, offset)`` pair from the MiniVM, or a string name in a
synthetic generator) into dense profile-element integers.  Keeping the
alphabet dense keeps the similarity models' hash tables small and makes
synthetic traces reproducible.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Tuple

from repro.profiles.element import encode_element


class BranchAlphabet:
    """Interns site labels into (method_id, offset) pairs and profile elements.

    Labels are assigned ids in first-seen order, so a trace produced from
    the same program is byte-identical across runs.
    """

    def __init__(self) -> None:
        self._site_ids: Dict[Hashable, Tuple[int, int]] = {}
        self._labels: List[Hashable] = []
        self._method_ids: Dict[Hashable, int] = {}
        self._method_names: List[Hashable] = []
        self._next_offset: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._site_ids

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def method_id(self, method: Hashable) -> int:
        """Return (assigning if needed) the dense id for ``method``."""
        mid = self._method_ids.get(method)
        if mid is None:
            mid = len(self._method_names)
            self._method_ids[method] = mid
            self._method_names.append(method)
            self._next_offset[mid] = 0
        return mid

    def method_name(self, method_id: int) -> Hashable:
        """Return the label originally interned for ``method_id``."""
        return self._method_names[method_id]

    def site(self, label: Hashable, method: Hashable = None) -> Tuple[int, int]:
        """Intern ``label`` as a branch site, returning (method_id, offset).

        If ``method`` is None the label itself is used as the method key,
        which gives every site its own method — fine for synthetic traces.
        """
        ids = self._site_ids.get(label)
        if ids is None:
            mid = self.method_id(method if method is not None else label)
            offset = self._next_offset[mid]
            self._next_offset[mid] = offset + 1
            ids = (mid, offset)
            self._site_ids[label] = ids
            self._labels.append(label)
        return ids

    def element(self, label: Hashable, taken: bool, method: Hashable = None) -> int:
        """Intern ``label`` and return the packed profile element for it."""
        mid, offset = self.site(label, method)
        return encode_element(mid, offset, taken)

    @property
    def num_methods(self) -> int:
        """Number of distinct methods interned so far."""
        return len(self._method_names)
