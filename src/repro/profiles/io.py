"""Trace persistence: text and binary on-disk formats.

Two formats are supported:

* **Text** (``.trace``): a human-inspectable header followed by one
  packed element per line.  Useful for small fixtures and debugging.
* **Binary** (``.btrace``): a small magic header followed by raw little-
  endian int64 data.  This is the format the workload suite caches.

Both formats round-trip exactly, including the trace name.

Successful reads and writes tick the process-wide ``io.trace_reads`` /
``io.trace_writes`` / ``io.trace_bytes_*`` counters on
:data:`repro.obs.metrics.GLOBAL_METRICS`; sweeps fold these into the
run manifest (workers ship their own snapshots back to the parent).
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.obs.metrics import GLOBAL_METRICS
from repro.profiles.trace import BranchTrace

TEXT_MAGIC = "# repro-branch-trace v1"
BINARY_MAGIC = b"RPTRACE1"

PathLike = Union[str, os.PathLike]


class TraceFormatError(ValueError):
    """Raised when an on-disk trace file is malformed."""


def write_trace_text(trace: BranchTrace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the one-element-per-line text format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"{TEXT_MAGIC}\n")
        handle.write(f"# name: {trace.name}\n")
        handle.write(f"# length: {len(trace)}\n")
        for chunk in trace.chunks(1 << 16) if len(trace) else []:
            handle.write("\n".join(map(str, chunk.tolist())))
            handle.write("\n")
    GLOBAL_METRICS.counter("io.trace_writes").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_written").inc(path.stat().st_size)


def read_trace_text(path: PathLike) -> BranchTrace:
    """Read a text-format trace written by :func:`write_trace_text`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline().rstrip("\n")
        if first != TEXT_MAGIC:
            raise TraceFormatError(f"{path}: bad magic line {first!r}")
        name = ""
        declared_length = None
        position = handle.tell()
        while True:
            position = handle.tell()
            line = handle.readline()
            if not line.startswith("#"):
                break
            body = line[1:].strip()
            if body.startswith("name:"):
                name = body[len("name:") :].strip()
            elif body.startswith("length:"):
                declared_length = int(body[len("length:") :].strip())
        handle.seek(position)
        data = np.loadtxt(handle, dtype=np.int64, ndmin=1) if _has_data(handle) else np.empty(0, np.int64)
    if declared_length is not None and data.size != declared_length:
        raise TraceFormatError(
            f"{path}: declared length {declared_length} but found {data.size} elements"
        )
    GLOBAL_METRICS.counter("io.trace_reads").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_read").inc(path.stat().st_size)
    return BranchTrace(data, name=name)


def _has_data(handle: io.TextIOBase) -> bool:
    position = handle.tell()
    chunk = handle.read(64)
    handle.seek(position)
    return bool(chunk.strip())


def write_trace_binary(trace: BranchTrace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the compact binary format."""
    path = Path(path)
    name_bytes = trace.name.encode("utf-8")
    with path.open("wb") as handle:
        handle.write(BINARY_MAGIC)
        handle.write(len(name_bytes).to_bytes(4, "little"))
        handle.write(name_bytes)
        handle.write(len(trace).to_bytes(8, "little"))
        handle.write(np.ascontiguousarray(trace.array, dtype="<i8").tobytes())
    GLOBAL_METRICS.counter("io.trace_writes").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_written").inc(path.stat().st_size)


def _read_binary_header(handle, path: Path, file_size: int) -> tuple:
    """Validate and read the binary header; return (name, length).

    Every declared size is checked against the bytes actually present so
    a corrupt header raises :class:`TraceFormatError` instead of driving
    a huge allocation (``MemoryError``) or a garbage payload.
    """
    magic = handle.read(len(BINARY_MAGIC))
    if magic != BINARY_MAGIC:
        raise TraceFormatError(f"{path}: bad magic {magic!r}")
    name_len_bytes = handle.read(4)
    if len(name_len_bytes) != 4:
        raise TraceFormatError(f"{path}: truncated header")
    name_len = int.from_bytes(name_len_bytes, "little")
    if name_len > file_size - handle.tell():
        raise TraceFormatError(
            f"{path}: declared name length {name_len} exceeds file size {file_size}"
        )
    try:
        name = handle.read(name_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"{path}: undecodable trace name: {exc}") from None
    length_bytes = handle.read(8)
    if len(length_bytes) != 8:
        raise TraceFormatError(f"{path}: truncated header")
    length = int.from_bytes(length_bytes, "little")
    remaining = file_size - handle.tell()
    if length * 8 > remaining:
        raise TraceFormatError(
            f"{path}: declared length {length} needs {length * 8} payload bytes "
            f"but only {remaining} remain"
        )
    return name, length


def read_trace_binary(path: PathLike) -> BranchTrace:
    """Read a binary-format trace written by :func:`write_trace_binary`."""
    path = Path(path)
    file_size = path.stat().st_size
    with path.open("rb") as handle:
        name, length = _read_binary_header(handle, path, file_size)
        payload = handle.read(length * 8)
        if len(payload) != length * 8:
            raise TraceFormatError(f"{path}: truncated payload")
        data = np.frombuffer(payload, dtype="<i8").astype(np.int64)
    GLOBAL_METRICS.counter("io.trace_reads").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_read").inc(file_size)
    return BranchTrace(data, name=name)


def write_trace(trace: BranchTrace, path: PathLike) -> None:
    """Write a trace, picking the format from the file extension.

    ``.btrace`` selects the binary format; anything else gets text.
    """
    if str(path).endswith(".btrace"):
        write_trace_binary(trace, path)
    else:
        write_trace_text(trace, path)


def read_trace(path: PathLike) -> BranchTrace:
    """Read a trace, picking the format from the file extension."""
    if str(path).endswith(".btrace"):
        return read_trace_binary(path)
    return read_trace_text(path)


def stream_trace(path: PathLike, chunk_size: int = 1 << 16) -> Iterator[np.ndarray]:
    """Stream a binary trace from disk in chunks without loading it whole.

    This models the online setting: the detector never needs the full
    profile in memory.  Yields int64 arrays of at most ``chunk_size``
    elements.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    path = Path(path)
    file_size = path.stat().st_size
    with path.open("rb") as handle:
        _, length = _read_binary_header(handle, path, file_size)
        remaining = length
        while remaining > 0:
            take = min(chunk_size, remaining)
            payload = handle.read(take * 8)
            if len(payload) != take * 8:
                raise TraceFormatError(f"{path}: truncated payload")
            remaining -= take
            yield np.frombuffer(payload, dtype="<i8").astype(np.int64)
