"""Trace persistence: text and binary on-disk formats.

Three formats are supported:

* **Text** (``.trace``): a human-inspectable header followed by one
  packed element per line.  Useful for small fixtures and debugging.
* **Binary** (``.btrace``): a small magic header followed by raw little-
  endian int64 data.  This is the format the workload suite caches.
  :func:`read_trace_binary` can return a **zero-copy** trace over a
  read-only ``np.memmap`` of the payload (``mmap=True``), so every
  sweep worker shares the OS page cache's one physical copy of each
  trace instead of holding a private heap copy.
* **Dense-code sidecar** (``.bcodes``): the persisted result of
  :meth:`BranchTrace.dense_codes`/``unique`` for a cached ``.btrace``,
  validated by a content hash of the trace payload, so workers load the
  dense remap (also mmap-able) instead of redoing the ``np.unique``
  pass per process.

All formats round-trip exactly; see ``docs/formats.md`` for the byte
layouts and validation rules.

Successful reads and writes tick the process-wide ``io.trace_reads`` /
``io.trace_writes`` / ``io.trace_bytes_*`` counters on
:data:`repro.obs.metrics.GLOBAL_METRICS`; sweeps fold these into the
run manifest (workers ship their own snapshots back to the parent).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO, Tuple, Union

import numpy as np

from repro.obs.metrics import GLOBAL_METRICS
from repro.profiles.trace import BranchTrace

TEXT_MAGIC = "# repro-branch-trace v1"
BINARY_MAGIC = b"RPTRACE1"
CODES_MAGIC = b"RPCODES1"
CODES_VERSION = 1

PathLike = Union[str, os.PathLike]


class TraceFormatError(ValueError):
    """Raised when an on-disk trace file is malformed."""


def mmap_enabled() -> bool:
    """True unless the ``REPRO_MMAP`` environment variable disables
    memory-mapped trace reads (``0``/``false``/``off``/``no``)."""
    return os.environ.get("REPRO_MMAP", "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def write_trace_text(trace: BranchTrace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the one-element-per-line text format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"{TEXT_MAGIC}\n")
        handle.write(f"# name: {trace.name}\n")
        handle.write(f"# length: {len(trace)}\n")
        for chunk in trace.chunks(1 << 16) if len(trace) else []:
            handle.write("\n".join(map(str, chunk.tolist())))
            handle.write("\n")
    GLOBAL_METRICS.counter("io.trace_writes").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_written").inc(path.stat().st_size)


def read_trace_text(path: PathLike) -> BranchTrace:
    """Read a text-format trace written by :func:`write_trace_text`.

    The body is parsed with a streamed :func:`np.fromiter` reader — one
    pass, no intermediate per-line array allocations — and tolerates a
    final element line without a trailing newline as well as trailing
    blank lines.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline().rstrip("\n")
        if first != TEXT_MAGIC:
            raise TraceFormatError(f"{path}: bad magic line {first!r}")
        name = ""
        declared_length = None
        body_first: Optional[str] = None
        while True:
            line = handle.readline()
            if not line:
                break
            if not line.startswith("#"):
                body_first = line
                break
            body = line[1:].strip()
            if body.startswith("name:"):
                name = body[len("name:") :].strip()
            elif body.startswith("length:"):
                declared_length = int(body[len("length:") :].strip())
        data = np.fromiter(
            _iter_text_elements(body_first, handle, path), dtype=np.int64
        )
    if declared_length is not None and data.size != declared_length:
        raise TraceFormatError(
            f"{path}: declared length {declared_length} but found {data.size} elements"
        )
    GLOBAL_METRICS.counter("io.trace_reads").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_read").inc(path.stat().st_size)
    return BranchTrace(data, name=name)


def _iter_text_elements(
    first_line: Optional[str], handle: TextIO, path: Path
) -> Iterator[int]:
    """Yield body elements from the first non-header line plus the rest.

    Blank lines (including trailing ones) are skipped; a non-integer
    token raises :class:`TraceFormatError`.
    """
    lines: Iterable[str] = handle if first_line is None else _chain_line(first_line, handle)
    for line in lines:
        for token in line.split():
            try:
                yield int(token)
            except ValueError:
                raise TraceFormatError(
                    f"{path}: invalid trace element {token!r}"
                ) from None


def _chain_line(first_line: str, handle: TextIO) -> Iterator[str]:
    yield first_line
    yield from handle


def write_trace_binary(trace: BranchTrace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the compact binary format."""
    path = Path(path)
    name_bytes = trace.name.encode("utf-8")
    with path.open("wb") as handle:
        handle.write(BINARY_MAGIC)
        handle.write(len(name_bytes).to_bytes(4, "little"))
        handle.write(name_bytes)
        handle.write(len(trace).to_bytes(8, "little"))
        handle.write(np.ascontiguousarray(trace.array, dtype="<i8").tobytes())
    GLOBAL_METRICS.counter("io.trace_writes").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_written").inc(path.stat().st_size)


def _read_binary_header(handle, path: Path, file_size: int) -> tuple:
    """Validate and read the binary header; return (name, length).

    Every declared size is checked against the bytes actually present so
    a corrupt header raises :class:`TraceFormatError` instead of driving
    a huge allocation (``MemoryError``) or a garbage payload.
    """
    magic = handle.read(len(BINARY_MAGIC))
    if magic != BINARY_MAGIC:
        raise TraceFormatError(f"{path}: bad magic {magic!r}")
    name_len_bytes = handle.read(4)
    if len(name_len_bytes) != 4:
        raise TraceFormatError(f"{path}: truncated header")
    name_len = int.from_bytes(name_len_bytes, "little")
    if name_len > file_size - handle.tell():
        raise TraceFormatError(
            f"{path}: declared name length {name_len} exceeds file size {file_size}"
        )
    try:
        name = handle.read(name_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"{path}: undecodable trace name: {exc}") from None
    length_bytes = handle.read(8)
    if len(length_bytes) != 8:
        raise TraceFormatError(f"{path}: truncated header")
    length = int.from_bytes(length_bytes, "little")
    remaining = file_size - handle.tell()
    if length * 8 > remaining:
        raise TraceFormatError(
            f"{path}: declared length {length} needs {length * 8} payload bytes "
            f"but only {remaining} remain"
        )
    return name, length


def read_trace_binary(path: PathLike, mmap: bool = False) -> BranchTrace:
    """Read a binary-format trace written by :func:`write_trace_binary`.

    With ``mmap=True`` the payload is not copied into the heap: the
    returned trace wraps a read-only ``np.memmap`` view of the file, so
    concurrent readers (e.g. every worker of a parallel sweep) share
    one physical copy through the OS page cache.  Header validation is
    identical in both modes; the mapped payload must not be rewritten
    while the trace is alive (the suite cache never rewrites an entry
    in place — stale entries get new fingerprinted names).
    """
    path = Path(path)
    file_size = path.stat().st_size
    with path.open("rb") as handle:
        name, length = _read_binary_header(handle, path, file_size)
        if mmap and length:
            offset = handle.tell()
            data = np.memmap(path, dtype="<i8", mode="r", offset=offset, shape=(length,))
        else:
            payload = handle.read(length * 8)
            if len(payload) != length * 8:
                raise TraceFormatError(f"{path}: truncated payload")
            data = np.frombuffer(payload, dtype="<i8").astype(np.int64)
    GLOBAL_METRICS.counter("io.trace_reads").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_read").inc(file_size)
    return BranchTrace(data, name=name)


def write_trace(trace: BranchTrace, path: PathLike) -> None:
    """Write a trace, picking the format from the file extension.

    ``.btrace`` selects the binary format; anything else gets text.
    """
    if str(path).endswith(".btrace"):
        write_trace_binary(trace, path)
    else:
        write_trace_text(trace, path)


def read_trace(path: PathLike, mmap: bool = False) -> BranchTrace:
    """Read a trace, picking the format from the file extension.

    ``mmap`` applies to binary traces only (text traces are always
    parsed into the heap).
    """
    if str(path).endswith(".btrace"):
        return read_trace_binary(path, mmap=mmap)
    return read_trace_text(path)


def stream_trace(path: PathLike, chunk_size: int = 1 << 16) -> Iterator[np.ndarray]:
    """Stream a binary trace from disk in chunks without loading it whole.

    This models the online setting: the detector never needs the full
    profile in memory.  Yields int64 arrays of at most ``chunk_size``
    elements.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    path = Path(path)
    file_size = path.stat().st_size
    with path.open("rb") as handle:
        _, length = _read_binary_header(handle, path, file_size)
        remaining = length
        while remaining > 0:
            take = min(chunk_size, remaining)
            payload = handle.read(take * 8)
            if len(payload) != take * 8:
                raise TraceFormatError(f"{path}: truncated payload")
            remaining -= take
            yield np.frombuffer(payload, dtype="<i8").astype(np.int64)


# ---------------------------------------------------------------------------
# Dense-code sidecars (.bcodes)
# ---------------------------------------------------------------------------


def trace_content_hash(trace: BranchTrace) -> bytes:
    """SHA-256 of the trace's payload bytes (little-endian int64).

    This is exactly the byte sequence a ``.btrace`` file stores after
    its header, so the hash binds a sidecar to the trace *content*
    regardless of the trace's name or how it was loaded (heap or mmap).
    """
    data = np.ascontiguousarray(trace.array, dtype="<i8")
    return hashlib.sha256(data).digest()


def codes_path_for(trace_path: PathLike) -> Path:
    """The ``.bcodes`` sidecar path next to a ``.btrace`` file."""
    return Path(trace_path).with_suffix(".bcodes")


def write_codes_sidecar(trace: BranchTrace, path: PathLike) -> None:
    """Persist ``trace``'s dense remap as a ``.bcodes`` sidecar.

    Layout (all integers little-endian; see ``docs/formats.md``)::

        magic "RPCODES1" | version u32 | content hash (32 bytes sha256)
        | n_codes u64 | length u64
        | values  n_codes x i64 | counts n_codes x i64
        | codes   length  x i32

    The write is atomic (temp file + ``os.replace``), so concurrent
    readers only ever see a complete sidecar.
    """
    path = Path(path)
    values, counts = trace.unique()
    codes, _ = trace.dense_codes()
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with tmp.open("wb") as handle:
        handle.write(CODES_MAGIC)
        handle.write(CODES_VERSION.to_bytes(4, "little"))
        handle.write(trace_content_hash(trace))
        handle.write(int(values.size).to_bytes(8, "little"))
        handle.write(len(trace).to_bytes(8, "little"))
        handle.write(np.ascontiguousarray(values, dtype="<i8").tobytes())
        handle.write(np.ascontiguousarray(counts, dtype="<i8").tobytes())
        handle.write(np.ascontiguousarray(codes, dtype="<i4").tobytes())
    os.replace(tmp, path)
    GLOBAL_METRICS.counter("io.codes_writes").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_written").inc(path.stat().st_size)


_CODES_HEADER_SIZE = len(CODES_MAGIC) + 4 + 32 + 8 + 8


def read_codes_sidecar(
    path: PathLike, trace: BranchTrace, mmap: bool = False
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read and validate a ``.bcodes`` sidecar for ``trace``.

    Validation (each failure raises :class:`TraceFormatError`): magic,
    version, declared sizes against the bytes present, the recorded
    trace length against ``len(trace)``, and the recorded content hash
    against :func:`trace_content_hash` — a sidecar left behind by an
    older/different trace is therefore *stale*, never silently wrong.

    Returns ``(codes, values, counts)`` — memmap-backed read-only views
    with ``mmap=True``, heap arrays otherwise.  The caller adopts them
    via :meth:`BranchTrace.adopt_dense_codes`.
    """
    path = Path(path)
    file_size = path.stat().st_size
    with path.open("rb") as handle:
        magic = handle.read(len(CODES_MAGIC))
        if magic != CODES_MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        header = handle.read(4 + 32 + 8 + 8)
        if len(header) != 4 + 32 + 8 + 8:
            raise TraceFormatError(f"{path}: truncated header")
        version = int.from_bytes(header[:4], "little")
        if version != CODES_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported sidecar version {version} "
                f"(this build reads version {CODES_VERSION})"
            )
        content_hash = header[4:36]
        n_codes = int.from_bytes(header[36:44], "little")
        length = int.from_bytes(header[44:52], "little")
        expected = _CODES_HEADER_SIZE + n_codes * 16 + length * 4
        if expected != file_size:
            raise TraceFormatError(
                f"{path}: declared {n_codes} codes over {length} elements "
                f"needs {expected} bytes but the file has {file_size}"
            )
        if length != len(trace):
            raise TraceFormatError(
                f"{path}: sidecar covers {length} elements but the trace "
                f"has {len(trace)}"
            )
        if content_hash != trace_content_hash(trace):
            raise TraceFormatError(f"{path}: content hash mismatch (stale sidecar)")
        values_offset = _CODES_HEADER_SIZE
        counts_offset = values_offset + n_codes * 8
        codes_offset = counts_offset + n_codes * 8
        if mmap and length:
            values = np.memmap(path, dtype="<i8", mode="r",
                               offset=values_offset, shape=(n_codes,))
            counts = np.memmap(path, dtype="<i8", mode="r",
                               offset=counts_offset, shape=(n_codes,))
            codes = np.memmap(path, dtype="<i4", mode="r",
                              offset=codes_offset, shape=(length,))
        else:
            payload = handle.read(expected - _CODES_HEADER_SIZE)
            values = np.frombuffer(
                payload, dtype="<i8", count=n_codes
            ).astype(np.int64)
            counts = np.frombuffer(
                payload, dtype="<i8", count=n_codes, offset=n_codes * 8
            ).astype(np.int64)
            codes = np.frombuffer(
                payload, dtype="<i4", count=length, offset=n_codes * 16
            ).astype(np.int32)
    GLOBAL_METRICS.counter("io.codes_reads").inc()
    GLOBAL_METRICS.counter("io.trace_bytes_read").inc(file_size)
    return codes, values, counts


def ensure_codes_sidecar(
    trace: BranchTrace, trace_path: PathLike, mmap: bool = False
) -> bool:
    """Attach ``trace_path``'s dense-code sidecar to ``trace``.

    Loads and adopts a valid sidecar; a missing, stale, corrupt, or
    unreadable one is regenerated transparently from the trace (written
    once, atomically) and the fresh remap adopted.  Returns True when
    the sidecar was loaded, False when it had to be (re)built.  An
    unwritable cache directory degrades gracefully: the remap is still
    computed and adopted, only the persistence is skipped.
    """
    codes_path = codes_path_for(trace_path)
    if codes_path.exists():
        try:
            codes, values, counts = read_codes_sidecar(codes_path, trace, mmap=mmap)
            trace.adopt_dense_codes(codes, values, counts)
            GLOBAL_METRICS.counter("io.codes_cache_hits").inc()
            return True
        except (TraceFormatError, OSError, ValueError):
            pass  # stale or torn: fall through and rebuild
    GLOBAL_METRICS.counter("io.codes_cache_misses").inc()
    try:
        write_codes_sidecar(trace, codes_path)
    except OSError:
        trace.dense_codes()  # compute in-memory; persistence unavailable
    return False
