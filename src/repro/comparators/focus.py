"""FOCuS (arXiv 2110.08205): functional-pruning CUSUM phase detection.

The classic CUSUM changepoint test needs the post-change mean to be
known; running one CUSUM per candidate change magnitude is exact but
costs O(n) statistics per step.  FOCuS (Functional Online CUSUM) shows
the maximization over *all* magnitudes simultaneously reduces to a
maximization over candidate change *times*, and that the candidates
that can ever attain the maximum are exactly the vertices of the convex
hull of the cumulative-sum path — so each new observation prunes the
candidate set with an amortized O(1) hull update (O(log n) expected
hull size for the statistic scan), while remaining exactly equivalent
to the infinite bank of CUSUMs.

We apply it to the branch-profile stream: each ``skipFactor`` group is
reduced to the mean of a deterministic ±1 hash of its elements (a
1-dimensional random projection of the branch-frequency vector), the
pre-change mean/scale are estimated over a warm-up prefix, and the
two-sided FOCuS statistic over the standardized stream drives the
phase decisions:

- statistic below ``stat_threshold`` → the recent stream matches the
  baseline → **phase** (the paper's P state);
- statistic at/above the bar → a changepoint — the phase (if open)
  ends, the baseline and candidate set reset, and a fresh warm-up
  re-estimates the new behavior (the windowed grid's ``clear_and_seed``
  analog).

This is the FOCuS0 (known pre-change parameters) variant, with the
pre-change parameters re-estimated after every detection; see
``docs/detectors.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DetectorConfig
from repro.core.decision import DecisionEngine, PhaseDecision
from repro.core.state import PhaseState

__all__ = ["FocusEngine", "FOCUS_STAT_THRESHOLD", "hash_sign"]

#: Default decision bar for the FOCuS statistic.  Under the null the
#: statistic behaves like half a chi-squared(1) of the best candidate;
#: 16.0 ≈ a one-sided 5.7-sigma peak — high enough that hash noise on a
#: stable stream stays below it, low enough that real mixture shifts in
#: the branch stream cross it within a few hundred steps.
FOCUS_STAT_THRESHOLD = 16.0

_MASK64 = (1 << 64) - 1
#: splitmix64 / Fibonacci-hashing constants — deterministic across
#: processes and runs, unlike Python's salted ``hash()``.
_MIX_MULT = 0x9E3779B97F4A7C15
_MIX_ADD = 0xD1B54A32D192ED03


def hash_sign(element: int) -> float:
    """Deterministic ±1 hash of a profile element (its top mixed bit)."""
    mixed = (element * _MIX_MULT + _MIX_ADD) & _MASK64
    return 1.0 if mixed >> 63 else -1.0


class FocusEngine(DecisionEngine):
    """Two-sided FOCuS0 over the hashed branch-frequency stream.

    Configuration mapping (see :class:`~repro.core.config.DetectorConfig`):
    ``cw_size`` is the warm-up length in elements (the baseline
    estimation prefix, re-run after every detection), ``skip_factor``
    the elements per step, and ``stat_threshold`` the decision bar
    (default :data:`FOCUS_STAT_THRESHOLD`).  Window-policy fields are
    ignored — there is no window buffer at all; per-step state is the
    cumulative sum and the two pruned candidate hulls.
    """

    family = "focus"

    def __init__(self, config: DetectorConfig, observer=None, metrics=None) -> None:
        super().__init__(config, observer=observer, metrics=metrics)
        self.stat_threshold = (
            config.stat_threshold
            if config.stat_threshold is not None
            else FOCUS_STAT_THRESHOLD
        )
        #: Warm-up steps per baseline estimate (>= 2 so variance exists).
        self._warmup_steps = max(2, config.cw_size // config.skip_factor)
        self._sign_cache: Dict[int, float] = {}
        self._reset_baseline()

    # -- baseline estimation ---------------------------------------------------

    def _reset_baseline(self) -> None:
        """Forget everything: new warm-up, empty candidate hulls."""
        self._warmup_left = self._warmup_steps
        # Welford accumulator over the warm-up step values.
        self._base_n = 0
        self._base_mean = 0.0
        self._base_m2 = 0.0
        # Standardized pre-change parameters (set when warm-up ends).
        self._mu: Optional[float] = None
        self._sigma: Optional[float] = None
        # Cumulative-sum path and the two candidate hulls.  Each hull
        # entry is a (t, T) vertex of the cusum path; (0, 0.0) is the
        # "change immediately after the baseline" candidate.
        self._t = 0
        self._cum = 0.0
        self._pos: List[Tuple[int, float]] = [(0, 0.0)]
        self._neg: List[Tuple[int, float]] = [(0, 0.0)]

    def _warmup_observe(self, value: float) -> None:
        self._base_n += 1
        delta = value - self._base_mean
        self._base_mean += delta / self._base_n
        self._base_m2 += delta * (value - self._base_mean)
        self._warmup_left -= 1
        if self._warmup_left == 0:
            self._mu = self._base_mean
            variance = self._base_m2 / (self._base_n - 1)
            sigma = variance ** 0.5
            # A perfectly constant warm-up (e.g. a single repeated
            # element) gives sigma 0; unit scale keeps z finite and
            # makes any later deviation register at full strength.
            self._sigma = sigma if sigma > 0.0 else 1.0

    # -- the FOCuS statistic ---------------------------------------------------

    def _statistic(self, t_new: int, cum_new: float) -> float:
        """Max CUSUM statistic over the pruned candidate change times."""
        best = 0.0
        for t_i, cum_i in self._pos:  # upward mean shifts
            gain = cum_new - cum_i
            if gain > 0.0:
                value = gain * gain / (2.0 * (t_new - t_i))
                if value > best:
                    best = value
        for t_i, cum_i in self._neg:  # downward mean shifts
            gain = cum_new - cum_i
            if gain < 0.0:
                value = gain * gain / (2.0 * (t_new - t_i))
                if value > best:
                    best = value
        return best

    @staticmethod
    def _push_hull(hull: List[Tuple[int, float]], t: int, cum: float, lower: bool) -> None:
        """Append (t, cum), pruning dominated candidates (FOCuS lemma 1).

        ``lower`` keeps the lower convex hull of the cusum path (the
        up-shift candidates); ``False`` keeps the upper hull (the
        down-shift candidates).  A vertex inside the hull can never
        maximize the statistic for any future observation, so popping
        it is exact pruning, not an approximation.
        """
        while len(hull) >= 2:
            t1, c1 = hull[-2]
            t2, c2 = hull[-1]
            # slope(p1→p2) vs slope(p2→new), cross-multiplied (exact in
            # floats up to the shared scale; both denominators > 0).
            lhs = (c2 - c1) * (t - t2)
            rhs = (cum - c2) * (t2 - t1)
            if (lhs >= rhs) if lower else (lhs <= rhs):
                hull.pop()
            else:
                break
        hull.append((t, cum))

    # -- the per-step contract -------------------------------------------------

    def step(self, elements: Sequence[int]) -> PhaseDecision:
        group_len = len(elements)
        self._consumed += group_len
        cache = self._sign_cache
        total = 0.0
        for element in elements:
            sign = cache.get(element)
            if sign is None:
                sign = hash_sign(element)
                cache[element] = sign
            total += sign
        value = total / group_len

        if self._warmup_left > 0:
            self._warmup_observe(value)
            # Warming up: no statistic yet, stream stays in transition
            # (mirrors the windowed grid's unfilled-window prefix).
            return PhaseDecision(self.state, None)

        z = (value - self._mu) / self._sigma
        t_new = self._t + 1
        cum_new = self._cum + z
        statistic = self._statistic(t_new, cum_new)

        observer = self._observer
        if observer is not None:
            step = self._consumed
            observer.emit(
                {
                    "ev": "similarity",
                    "step": step,
                    "value": statistic,
                    "cw": 0,
                    "tw": 0,
                }
            )
            observer.emit(
                {
                    "ev": "decision",
                    "step": step,
                    "state": "P" if statistic < self.stat_threshold else "T",
                    "value": statistic,
                    "bar": self.stat_threshold,
                }
            )

        entered = False
        closed = None
        if statistic >= self.stat_threshold:
            # Changepoint: close the phase at the step boundary, drop
            # the old baseline, and re-estimate from here on — the
            # current group is the new baseline's first observation.
            if self.state.is_phase():
                closed = self._close(self._consumed - group_len)
                self._phase_stats_clear()
            self.state = PhaseState.TRANSITION
            self._reset_baseline()
            self._warmup_observe(value)
        else:
            self._t = t_new
            self._cum = cum_new
            self._push_hull(self._pos, t_new, cum_new, lower=True)
            self._push_hull(self._neg, t_new, cum_new, lower=False)
            if not self.state.is_phase():
                start = self._consumed - group_len
                self.tracker.enter(self._consumed, start, start)
                self._phase_stats_reset(statistic)
                entered = True
            else:
                self._phase_stats_update(statistic)
            self.state = PhaseState.PHASE
        return PhaseDecision(self.state, statistic, entered, closed)

    # -- checkpointing ---------------------------------------------------------

    def _engine_state(self) -> Dict[str, object]:
        return {
            "warmup_left": self._warmup_left,
            "baseline": {
                "n": self._base_n,
                "mean": self._base_mean,
                "m2": self._base_m2,
            },
            "mu": self._mu,
            "sigma": self._sigma,
            "t": self._t,
            "cum": self._cum,
            "pos": [[t, cum] for t, cum in self._pos],
            "neg": [[t, cum] for t, cum in self._neg],
        }

    def _restore_engine_state(self, payload: Dict[str, object]) -> None:
        self._warmup_left = int(payload["warmup_left"])
        baseline: Dict[str, object] = payload["baseline"]  # type: ignore[assignment]
        self._base_n = int(baseline["n"])
        self._base_mean = float(baseline["mean"])
        self._base_m2 = float(baseline["m2"])
        mu = payload["mu"]
        sigma = payload["sigma"]
        self._mu = None if mu is None else float(mu)
        self._sigma = None if sigma is None else float(sigma)
        self._t = int(payload["t"])
        self._cum = float(payload["cum"])
        self._pos = [(int(t), float(cum)) for t, cum in payload["pos"]]
        self._neg = [(int(t), float(cum)) for t, cum in payload["neg"]]
