"""Lu et al. (JILP 2004): the average-PC interval detector.

Their dynamic binary optimizer samples the PC and compares the average
PC address of the most recent 4K samples against an interval built from
the mean and standard deviation of the previous seven 4K windows.  If
the new average falls sufficiently outside that interval for two
consecutive windows, a phase has ended.

We apply it to the branch trace by treating each profile element's
*site* (method id + offset) as the sampled address — the same
information their PC samples carry.  As the paper notes, this algorithm
fits the framework too: the "model" computes window averages and the
"analyzer" does the interval-bound test; we implement it standalone so
its window bookkeeping stays faithful to the original description.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List

import numpy as np

from repro.profiles.trace import BranchTrace

#: Their sample-window size (4K samples).
LU_WINDOW = 4_096
#: Number of previous windows whose statistics form the interval.
LU_HISTORY = 7
#: Interval half-width in standard deviations.
LU_SIGMA = 2.0
#: Consecutive out-of-interval windows required to end a phase.
LU_CONSECUTIVE = 2


@dataclass
class LuDynamoResult:
    """Per-element states plus per-window averages (for inspection)."""

    states: np.ndarray
    window_averages: List[float]


class LuDynamoDetector:
    """Streaming implementation of the Lu et al. detector."""

    def __init__(
        self,
        window_size: int = LU_WINDOW,
        history: int = LU_HISTORY,
        sigma: float = LU_SIGMA,
        consecutive: int = LU_CONSECUTIVE,
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if history < 2:
            raise ValueError("history must be at least 2")
        self.window_size = window_size
        self.history = history
        self.sigma = sigma
        self.consecutive = consecutive
        self._averages: Deque[float] = deque(maxlen=history)
        self._outside_streak = 0

    def process_window(self, average: float) -> bool:
        """Feed one window average; returns True if still in phase."""
        if len(self._averages) < self.history:
            self._averages.append(average)
            return False  # warming up: treat as transition
        mean = sum(self._averages) / len(self._averages)
        variance = sum((a - mean) ** 2 for a in self._averages) / len(self._averages)
        stddev = math.sqrt(variance)
        # Degenerate history (identical averages): any change is "outside".
        outside = abs(average - mean) > self.sigma * stddev if stddev else average != mean
        if outside:
            self._outside_streak += 1
        else:
            self._outside_streak = 0
        if self._outside_streak >= self.consecutive:
            # Phase ended: restart history from the new behavior.
            self._averages.clear()
            self._averages.append(average)
            self._outside_streak = 0
            return False
        self._averages.append(average)
        return True

    def run(self, trace: BranchTrace) -> LuDynamoResult:
        """Run over a whole trace; one state per element."""
        data = trace.array
        total = int(data.size)
        # Strip the taken bit: the sampled "address" is the branch site.
        sites = (data >> np.int64(1)).astype(np.float64)
        states = np.zeros(total, dtype=bool)
        averages: List[float] = []
        for start in range(0, total, self.window_size):
            window = sites[start : start + self.window_size]
            average = float(window.mean())
            averages.append(average)
            in_phase = self.process_window(average)
            if in_phase:
                states[start : start + window.size] = True
        return LuDynamoResult(states=states, window_averages=averages)


def run_lu_dynamo(trace: BranchTrace, window_size: int = LU_WINDOW, **kwargs) -> LuDynamoResult:
    """Convenience one-shot run of the Lu et al. detector."""
    return LuDynamoDetector(window_size=window_size, **kwargs).run(trace)
