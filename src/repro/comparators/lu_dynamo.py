"""Lu et al. (JILP 2004): the average-PC interval detector.

Their dynamic binary optimizer samples the PC and compares the average
PC address of the most recent 4K samples against an interval built from
the mean and standard deviation of the previous seven 4K windows.  If
the new average falls sufficiently outside that interval for two
consecutive windows, a phase has ended.

We apply it to the branch trace by treating each profile element's
*site* (method id + offset) as the sampled address — the same
information their PC samples carry.  As the paper notes, this algorithm
fits the framework too: the "model" computes window averages and the
"analyzer" does the interval-bound test; we implement it standalone so
its window bookkeeping stays faithful to the original description.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.decision import DecisionEngine, PhaseDecision
from repro.core.state import PhaseState
from repro.profiles.trace import BranchTrace

#: Their sample-window size (4K samples).
LU_WINDOW = 4_096
#: Number of previous windows whose statistics form the interval.
LU_HISTORY = 7
#: Interval half-width in standard deviations.
LU_SIGMA = 2.0
#: Consecutive out-of-interval windows required to end a phase.
LU_CONSECUTIVE = 2


@dataclass
class LuDynamoResult:
    """Per-element states plus per-window averages (for inspection)."""

    states: np.ndarray
    window_averages: List[float]


class LuDynamoDetector:
    """Streaming implementation of the Lu et al. detector."""

    def __init__(
        self,
        window_size: int = LU_WINDOW,
        history: int = LU_HISTORY,
        sigma: float = LU_SIGMA,
        consecutive: int = LU_CONSECUTIVE,
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if history < 2:
            raise ValueError("history must be at least 2")
        self.window_size = window_size
        self.history = history
        self.sigma = sigma
        self.consecutive = consecutive
        self._averages: Deque[float] = deque(maxlen=history)
        self._outside_streak = 0

    def process_window(self, average: float) -> bool:
        """Feed one window average; returns True if still in phase."""
        if len(self._averages) < self.history:
            self._averages.append(average)
            return False  # warming up: treat as transition
        mean = sum(self._averages) / len(self._averages)
        variance = sum((a - mean) ** 2 for a in self._averages) / len(self._averages)
        stddev = math.sqrt(variance)
        # Degenerate history (identical averages): any change is "outside".
        outside = abs(average - mean) > self.sigma * stddev if stddev else average != mean
        if outside:
            self._outside_streak += 1
        else:
            self._outside_streak = 0
        if self._outside_streak >= self.consecutive:
            # Phase ended: restart history from the new behavior.
            self._averages.clear()
            self._averages.append(average)
            self._outside_streak = 0
            return False
        self._averages.append(average)
        return True

    def run(self, trace: BranchTrace) -> LuDynamoResult:
        """Run over a whole trace; one state per element."""
        data = trace.array
        total = int(data.size)
        # Strip the taken bit: the sampled "address" is the branch site.
        sites = (data >> np.int64(1)).astype(np.float64)
        states = np.zeros(total, dtype=bool)
        averages: List[float] = []
        for start in range(0, total, self.window_size):
            window = sites[start : start + self.window_size]
            average = float(window.mean())
            averages.append(average)
            in_phase = self.process_window(average)
            if in_phase:
                states[start : start + window.size] = True
        return LuDynamoResult(states=states, window_averages=averages)


def run_lu_dynamo(trace: BranchTrace, window_size: int = LU_WINDOW, **kwargs) -> LuDynamoResult:
    """Convenience one-shot run of the Lu et al. detector."""
    return LuDynamoDetector(window_size=window_size, **kwargs).run(trace)


class LuDynamoEngine(DecisionEngine):
    """The Lu et al. interval test as a :class:`DecisionEngine`.

    An *online projection* of :class:`LuDynamoDetector`:
    ``config.cw_size`` is the sample window, each full window's average
    site address is tested against the mean ± sigma·stddev interval of
    the previous ``LU_HISTORY`` windows, and the resulting in-phase
    flag colors elements going forward (one-window lag versus the batch
    :func:`run_lu_dynamo`, which colors each window retroactively).

    The decision statistic is the deviation in stddev units, so **low**
    means stable; ``stat_threshold`` overrides the :data:`LU_SIGMA`
    interval half-width.
    """

    family = "lu_dynamo"

    def __init__(self, config, observer=None, metrics=None) -> None:
        super().__init__(config, observer=observer, metrics=metrics)
        bar = config.stat_threshold
        self.stat_threshold = LU_SIGMA if bar is None else bar
        self._window = config.cw_size
        self._buffer: List[int] = []
        self._averages: Deque[float] = deque(maxlen=LU_HISTORY)
        self._outside_streak = 0
        self._in_phase = False

    def _process_average(self, average: float) -> Optional[float]:
        """The interval test of :meth:`LuDynamoDetector.process_window`,
        returning the deviation statistic (None while history fills)."""
        averages = self._averages
        if len(averages) < LU_HISTORY:
            averages.append(average)
            self._in_phase = False
            return None
        mean = sum(averages) / len(averages)
        variance = sum((a - mean) ** 2 for a in averages) / len(averages)
        stddev = math.sqrt(variance)
        if stddev:
            deviation = abs(average - mean) / stddev
            outside = deviation > self.stat_threshold
        else:
            outside = average != mean
            deviation = 0.0 if not outside else self.stat_threshold + 1.0
        if outside:
            self._outside_streak += 1
        else:
            self._outside_streak = 0
        if self._outside_streak >= LU_CONSECUTIVE:
            averages.clear()
            averages.append(average)
            self._outside_streak = 0
            self._in_phase = False
        else:
            averages.append(average)
            self._in_phase = True
        return deviation

    def step(self, elements) -> "PhaseDecision":
        group_len = len(elements)
        self._consumed += group_len
        self._buffer.extend(elements)
        statistic: Optional[float] = None
        window = self._window
        while len(self._buffer) >= window:
            chunk = self._buffer[:window]
            del self._buffer[:window]
            sites = np.asarray(chunk, dtype=np.int64) >> np.int64(1)
            average = float(sites.astype(np.float64).mean())
            deviation = self._process_average(average)
            if deviation is not None:
                statistic = deviation
                observer = self._observer
                if observer is not None:
                    step = self._consumed
                    observer.emit(
                        {
                            "ev": "similarity",
                            "step": step,
                            "value": deviation,
                            "cw": 0,
                            "tw": 0,
                        }
                    )
                    observer.emit(
                        {
                            "ev": "decision",
                            "step": step,
                            "state": "P" if self._in_phase else "T",
                            "value": deviation,
                            "bar": self.stat_threshold,
                        }
                    )
        entered = False
        closed = None
        if self._in_phase:
            if not self.state.is_phase():
                start = self._consumed - group_len
                self.tracker.enter(self._consumed, start, start)
                self._phase_stats_reset(statistic if statistic is not None else 0.0)
                entered = True
            elif statistic is not None:
                self._phase_stats_update(statistic)
            self.state = PhaseState.PHASE
        else:
            if self.state.is_phase():
                closed = self._close(self._consumed - group_len)
                self._phase_stats_clear()
            self.state = PhaseState.TRANSITION
        return PhaseDecision(self.state, statistic, entered, closed)

    def _engine_state(self) -> Dict[str, object]:
        return {
            "buffer": list(self._buffer),
            "averages": list(self._averages),
            "streak": self._outside_streak,
            "in_phase": self._in_phase,
        }

    def _restore_engine_state(self, payload: Dict[str, object]) -> None:
        self._buffer = [int(element) for element in payload["buffer"]]
        self._averages = deque(
            (float(a) for a in payload["averages"]), maxlen=LU_HISTORY
        )
        self._outside_streak = int(payload["streak"])
        self._in_phase = bool(payload["in_phase"])
